"""Greedy minimizer for failing fuzz programs.

Given a program whose oracle verdict contains discrepancies, the
shrinker repeatedly tries structure-reducing edits — deleting body and
init statements, flattening ``If`` guards into their then-blocks, and
reducing integer constants — keeping an edit only when the *same
failure signature* (the set of ``(kind, backend)`` discrepancy pairs,
or any subset of it) still reproduces.  Every accepted candidate is
re-validated by a bounded sequential ground-truth run first, so a
shrink step can never smuggle in a non-terminating loop.

The result is the smallest program this greedy pass can reach, ready
to be frozen into the regression corpus
(:func:`repro.fuzz.corpus.entry_from_program`) and rendered as a
standalone reproduction script (:func:`render_repro_script`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.errors import OvershootLimit
from repro.ir.functions import FunctionTable
from repro.ir.interp import SequentialInterp
from repro.ir.nodes import (
    ArrayAssign,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    ExprStmt,
    For,
    If,
    Loop,
    Next,
    Stmt,
    UnaryOp,
)
from repro.runtime.costs import FREE

from repro.fuzz.generator import SENTINEL, GeneratedProgram
from repro.fuzz.oracle import OracleVerdict

__all__ = ["ShrinkResult", "shrink_program", "render_repro_script"]

#: Constants the reducer leaves alone: collapsing them is either
#: meaningless (0/±1 are already minimal) or changes the program's
#: *classification* rather than its size (the RV sentinel).
_KEEP = frozenset({0, 1, -1, SENTINEL})


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    program: GeneratedProgram        #: the minimized program
    verdict: OracleVerdict           #: its (still-failing) verdict
    signature: Tuple[Tuple[str, str], ...]  #: preserved (kind, backend)s
    steps: int                       #: accepted reductions
    tried: int                       #: candidate oracle runs spent


def _signature(v: OracleVerdict) -> FrozenSet[Tuple[str, str]]:
    return frozenset((d.kind, d.backend) for d in v.discrepancies)


# -- IR rewriting ---------------------------------------------------------

def _map_expr(e: Expr, fc: Callable[[Const], Expr]) -> Expr:
    if isinstance(e, Const):
        return fc(e)
    if isinstance(e, BinOp):
        return BinOp(e.op, _map_expr(e.left, fc), _map_expr(e.right, fc))
    if isinstance(e, UnaryOp):
        return UnaryOp(e.op, _map_expr(e.operand, fc))
    if isinstance(e, ArrayRef):
        return ArrayRef(e.array, _map_expr(e.index, fc))
    if isinstance(e, Next):
        return Next(e.list_name, _map_expr(e.ptr, fc))
    if isinstance(e, Call):
        return Call(e.fn, tuple(_map_expr(a, fc) for a in e.args))
    return e


def _map_stmt(s: Stmt, fc: Callable[[Const], Expr]) -> Stmt:
    if isinstance(s, Assign):
        return Assign(s.name, _map_expr(s.expr, fc))
    if isinstance(s, ArrayAssign):
        return ArrayAssign(s.array, _map_expr(s.index, fc),
                           _map_expr(s.expr, fc))
    if isinstance(s, ExprStmt):
        return ExprStmt(_map_expr(s.expr, fc))
    if isinstance(s, If):
        return If(_map_expr(s.cond, fc),
                  tuple(_map_stmt(t, fc) for t in s.then),
                  tuple(_map_stmt(t, fc) for t in s.orelse))
    if isinstance(s, For):
        return For(s.var, _map_expr(s.lo, fc), _map_expr(s.hi, fc),
                   tuple(_map_stmt(t, fc) for t in s.body))
    return s


def _const_values(loop: Loop) -> List[int]:
    """Integer constants at each site, in deterministic visit order."""
    seen: List[int] = []

    def record(c: Const) -> Expr:
        if isinstance(c.value, int) and not isinstance(c.value, bool):
            seen.append(c.value)
        return c

    _map_expr(loop.cond, record)
    for s in (*loop.init, *loop.body):
        _map_stmt(s, record)
    return seen


def _with_const(loop: Loop, site: int, value: int) -> Loop:
    """The loop with integer-constant site ``site`` replaced."""
    counter = {"i": -1}

    def edit(c: Const) -> Expr:
        if isinstance(c.value, int) and not isinstance(c.value, bool):
            counter["i"] += 1
            if counter["i"] == site:
                return Const(value)
        return c

    cond = _map_expr(loop.cond, edit)
    init = tuple(_map_stmt(s, edit) for s in loop.init)
    body = tuple(_map_stmt(s, edit) for s in loop.body)
    return Loop(init, cond, body, name=loop.name)


def _structural_candidates(loop: Loop) -> List[Loop]:
    """Statement deletions and If-flattenings, biggest cuts first."""
    out: List[Loop] = []
    body = list(loop.body)
    for i in range(len(body)):
        out.append(Loop(loop.init, loop.cond,
                        body[:i] + body[i + 1:], name=loop.name))
    for i, s in enumerate(body):
        if isinstance(s, If):
            flat = body[:i] + list(s.then) + body[i + 1:]
            out.append(Loop(loop.init, loop.cond, flat, name=loop.name))
    init = list(loop.init)
    if len(init) > 1:
        for i in range(len(init)):
            out.append(Loop(init[:i] + init[i + 1:], loop.cond,
                            loop.body, name=loop.name))
    return out


def _const_candidates(loop: Loop) -> List[Loop]:
    out: List[Loop] = []
    for site, v in enumerate(_const_values(loop)):
        if v in _KEEP:
            continue
        targets = {v // 2}
        if v > 2:
            targets.add(2)
        targets.discard(v)
        for t in sorted(targets):
            out.append(_with_const(loop, site, t))
    return out


def _revalidate(prog: GeneratedProgram,
                loop: Loop) -> Optional[GeneratedProgram]:
    """Ground-truth a candidate loop; None if it breaks the u-contract.

    A candidate is only usable when it still terminates — or raises —
    *within the program's declared bound* and, for loop-top exits,
    strictly before it: the DOALL skeleton discovers termination by
    observing the first failing terminator test, so an edit that
    pushes the exit to (or past) iteration ``u`` would manufacture a
    bound-violation artifact instead of shrinking the original
    failure.  Ground-truthing with ``max_iters=u`` enforces the same
    contract for raising programs: an edit that moves the faulting
    iteration past ``u`` (where no parallel run ever executes it) now
    trips :class:`~repro.errors.OvershootLimit` and is rejected,
    instead of surviving shrinking only to fail replay with a
    bound-violation error (corpus near-miss found while seeding
    fault-injection entries).
    """
    store = prog.make_store()
    try:
        res = SequentialInterp(loop, FunctionTable(), FREE).run(
            store, max_iters=prog.u)
    except OvershootLimit:
        return None
    except Exception as exc:
        return replace(prog, loop=loop, raises=type(exc).__name__,
                       n_iters=0)
    if res.n_iters >= prog.u + (1 if res.exited_in_body else 0):
        return None
    return replace(prog, loop=loop, raises=None, n_iters=res.n_iters)


def shrink_program(
    prog: GeneratedProgram,
    verdict: OracleVerdict,
    check: Callable[[GeneratedProgram], OracleVerdict],
    *,
    max_tries: int = 120,
) -> ShrinkResult:
    """Greedily minimize ``prog`` while its failure keeps reproducing.

    Parameters
    ----------
    prog / verdict:
        The failing program and the oracle verdict that flagged it.
    check:
        Re-runs the oracle on a candidate under the *same*
        configuration that produced ``verdict`` (the campaign closes
        over backends / workers / fault plan).
    max_tries:
        Hard cap on candidate oracle runs — each one may involve real
        process pools, so the budget is deliberately modest.

    Returns
    -------
    ShrinkResult
        The smallest reproducer found (possibly the original program,
        when nothing could be cut).
    """
    want = _signature(verdict)
    best, best_verdict = prog, verdict
    steps = tried = 0
    progress = True
    while progress and tried < max_tries:
        progress = False
        candidates = (_structural_candidates(best.loop)
                      + _const_candidates(best.loop))
        for loop in candidates:
            if tried >= max_tries:
                break
            cand = _revalidate(best, loop)
            if cand is None:
                continue
            tried += 1
            v = check(cand)
            if v.discrepancies and _signature(v) <= want:
                best, best_verdict = cand, v
                steps += 1
                progress = True
                break   # restart candidate enumeration on the smaller loop
    return ShrinkResult(program=best, verdict=best_verdict,
                        signature=tuple(sorted(want)), steps=steps,
                        tried=tried)


def render_repro_script(entry_obj: dict) -> str:
    """A standalone script reproducing one corpus entry.

    ``entry_obj`` is the JSON dict form of a
    :class:`~repro.fuzz.corpus.CorpusEntry`
    (:func:`~repro.fuzz.corpus.entry_to_obj`).  The script embeds the
    entry verbatim, replays it under its pinned configuration, prints
    any discrepancies, and exits nonzero on failure — suitable for
    attaching to a bug report or CI artifact.
    """
    blob = json.dumps(entry_obj, indent=1, sort_keys=True)
    return f'''#!/usr/bin/env python
"""Standalone reproduction for fuzz finding {entry_obj["name"]!r}.

Run with the repository's ``src/`` on PYTHONPATH:

    PYTHONPATH=src python {entry_obj["name"]}.py
"""
import sys

from repro.fuzz.corpus import entry_from_obj, replay_entry

ENTRY = {blob}

verdict = replay_entry(entry_from_obj(ENTRY))
for d in verdict.discrepancies:
    print(f"{{d.kind}} [{{d.backend}}/{{d.scheme}}]: {{d.detail}}")
print(f"checks={{verdict.checks}} "
      f"discrepancies={{len(verdict.discrepancies)}}")
sys.exit(1 if verdict.discrepancies else 0)
'''
