"""Compiler analyses: recurrences, terminators, dependences, taxonomy.

The entry point most callers want is
:func:`repro.analysis.loopinfo.analyze_loop`, which runs the whole
pipeline and returns a :class:`~repro.analysis.loopinfo.LoopInfo`.
"""

from repro.analysis.ddg import DDG, build_ddg
from repro.analysis.defuse import AccessRef, Effects, block_effects, stmt_effects
from repro.analysis.dependence import (
    Dependence,
    DependenceReport,
    DepKind,
    Verdict,
    analyze_dependences,
    pair_dependence,
)
from repro.analysis.loopinfo import LoopInfo, analyze_loop
from repro.analysis.normalize import normalize_loop, substitute_var
from repro.analysis.privatization import (
    PrivInfo,
    PrivStatus,
    analyze_privatization,
    scalar_privatization,
)
from repro.analysis.recurrence import (
    RecKind,
    Recurrence,
    affine_in,
    constant_of,
    find_recurrences,
)
from repro.analysis.scc import condensation, tarjan_scc, topological_order
from repro.analysis.subscript import (
    AffineSubscript,
    SubscriptInfo,
    analyze_subscripts,
    normalize_to_iteration,
)
from repro.analysis.taxonomy import (
    TAXONOMY_TABLE,
    DispatcherClass,
    ParallelKind,
    TaxonomyCell,
    classify_cell,
)
from repro.analysis.terminator import TermClass, TerminatorInfo, classify_terminator

__all__ = [
    "DDG", "build_ddg",
    "AccessRef", "Effects", "block_effects", "stmt_effects",
    "Dependence", "DependenceReport", "DepKind", "Verdict",
    "analyze_dependences", "pair_dependence",
    "LoopInfo", "analyze_loop",
    "normalize_loop", "substitute_var",
    "PrivInfo", "PrivStatus", "analyze_privatization", "scalar_privatization",
    "RecKind", "Recurrence", "affine_in", "constant_of", "find_recurrences",
    "condensation", "tarjan_scc", "topological_order",
    "AffineSubscript", "SubscriptInfo", "analyze_subscripts",
    "normalize_to_iteration",
    "TAXONOMY_TABLE", "DispatcherClass", "ParallelKind", "TaxonomyCell",
    "classify_cell",
    "TermClass", "TerminatorInfo", "classify_terminator",
]
