"""Batch execution of a lowered kernel: the whole loop as NumPy ops.

:func:`run_kernel` replays a :class:`~repro.kernels.lowering.LoweredKernel`
as five phases, each a ``kernel.*`` wall-clock span:

``kernel.lower``
    Cached classification (:mod:`repro.kernels.cache`).
``kernel.dispatch``
    Iteration count plus the dispatcher value vector — closed form
    for integer inductions under a threshold bound, exact float
    accumulation for float steps, a Python-exact walk cross-checked
    against a ``cumprod``/``cumsum`` prefix scan for affine
    recurrences, chunked vectorized condition search otherwise.
``kernel.body``
    Each remainder statement evaluated once over the whole iteration
    range; array writes are *staged*, never applied in place.
``kernel.pd``
    When the plan is speculative: shadow stamps from the staged index
    vectors (:mod:`repro.kernels.vector_pd`) fed to the interpreted
    path's own :func:`~repro.speculation.pdtest.analyze_pd`.
``kernel.commit``
    Scatter the staged writes and publish final scalars.

Exactness contract
------------------
The committed store must be *bit-identical* to the sequential
interpreter's — including which exception would have been raised.  Any
construct or value the batch cannot reproduce exactly raises
:class:`~repro.errors.KernelFallback` **before the store is touched**:
every dynamic hazard — out-of-bounds subscripts, zero divisors,
duplicate write indices, int64 magnitude (Python ints are unbounded,
``np.int64`` wraps), int→float promotion past 2**53 — is checked on
the full batch first.  The caller then reruns the loop on the
interpreted path, which reproduces the sequential semantics (value or
exception) by construction.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.loopinfo import LoopInfo
from repro.analysis.recurrence import RecKind
from repro.errors import KernelFallback
from repro.executors.base import ParallelResult
from repro.ir.functions import FunctionTable
from repro.ir.interp import EvalContext, compile_stmt
from repro.ir.nodes import (
    ArrayAssign,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    ExprStmt,
    UnaryOp,
    Var,
)
from repro.ir.store import Scalar, Store
from repro.kernels.cache import kernel_cache
from repro.kernels.lowering import LoweredKernel
from repro.kernels.vector_pd import vectorized_pd_shadows
from repro.obs import names as _n
from repro.obs.phases import get_profiler
from repro.obs.tracer import get_tracer
from repro.runtime.costs import FREE
from repro.runtime.machine import Machine
from repro.speculation.pdtest import analyze_pd

__all__ = ["run_kernel", "INT_LIMIT", "FLOAT_EXACT_INT"]

#: Magnitude bound for intermediate integers.  Beyond it an ``np.int64``
#: op could wrap where Python's unbounded ints would not; the batch
#: falls back instead of risking a silent difference.
INT_LIMIT = 1 << 62

#: Largest magnitude at which every integer is exactly representable as
#: a float64.  Mixed int/float arithmetic (NumPy promotes to float64)
#: is only admitted below it.
FLOAT_EXACT_INT = 1 << 53

#: Iteration-count search cap when the loop gives no usable upper
#: bound: ~4M iterations, far past any workload in the repo.
_DEFAULT_CAP = 1 << 22

#: Chunk length for the vectorized condition search.
_SEARCH_CHUNK = 4096

#: Cap on the Python-exact affine walk (the walk is O(n) scalar work;
#: past this the prefix-scan vector no longer pays for itself).
_AFFINE_WALK_CAP = 1 << 16


def _fb(reason: str) -> KernelFallback:
    return KernelFallback(reason)


def _is_int(v: Any) -> bool:
    return isinstance(v, (bool, int, np.bool_, np.integer)) or (
        isinstance(v, np.ndarray) and v.dtype.kind in "bi")


def _is_float(v: Any) -> bool:
    return isinstance(v, (float, np.floating)) or (
        isinstance(v, np.ndarray) and v.dtype.kind == "f")


def _amax(v: Any) -> int:
    """Largest absolute value in ``v`` (exact for int64 arrays)."""
    if isinstance(v, np.ndarray):
        if v.size == 0:
            return 0
        return max(abs(int(v.max())), abs(int(v.min())))
    return abs(int(v))


def _fmax(v: Any) -> float:
    if isinstance(v, np.ndarray):
        if v.size == 0:
            return 0.0
        return float(np.max(np.abs(v)))
    return abs(float(v))


def _py_num(v: Any) -> Any:
    """Normalize a NumPy scalar to its Python counterpart."""
    if isinstance(v, np.generic):
        return v.item()
    return v


# ---------------------------------------------------------------------------
# Exact scalar evaluation (Python semantics) for cond / update / limits
# ---------------------------------------------------------------------------

def _eval_py(e: Expr, env: Callable[[str], Any]) -> Any:
    """Evaluate a scalar expression with exact Python arithmetic.

    ``env`` resolves variable names; only the node types the lowering
    pass admits in conditions and init/update expressions appear here.
    """
    if isinstance(e, Const):
        return e.value
    if isinstance(e, Var):
        return env(e.name)
    if isinstance(e, UnaryOp):
        v = _eval_py(e.operand, env)
        if e.op == "-":
            return -v
        if e.op == "abs":
            return abs(v)
        if e.op == "not":
            return not v
        raise _fb(f"scalar-unary:{e.op}")
    if isinstance(e, BinOp):
        if e.op == "and":
            return bool(_eval_py(e.left, env)) and bool(_eval_py(e.right, env))
        if e.op == "or":
            return bool(_eval_py(e.left, env)) or bool(_eval_py(e.right, env))
        left = _eval_py(e.left, env)
        right = _eval_py(e.right, env)
        op = e.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "//":
            return left // right
        if op == "%":
            return left % right
        if op == "**":
            return left ** right
        if op == "min":
            return min(left, right)
        if op == "max":
            return max(left, right)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise _fb(f"scalar-op:{op}")
    raise _fb(f"scalar-expr:{type(e).__name__}")


def _literal_step(update: Expr, var: str) -> Optional[Any]:
    """The literal constant ``c`` when ``update`` is exactly ``var + c``,
    ``c + var``, or ``var - c`` — the only shapes whose float
    accumulation order the batch can replay bit-exactly."""
    if not isinstance(update, BinOp):
        return None
    left_is_var = isinstance(update.left, Var) and update.left.name == var
    right_is_var = isinstance(update.right, Var) and update.right.name == var
    if update.op == "+" and left_is_var and isinstance(update.right, Const):
        return update.right.value
    if update.op == "+" and right_is_var and isinstance(update.left, Const):
        return update.left.value
    if update.op == "-" and left_is_var and isinstance(update.right, Const):
        return -update.right.value
    return None


# ---------------------------------------------------------------------------
# Dispatcher vector construction
# ---------------------------------------------------------------------------

class _Dispatch:
    """Iteration count plus the body-entry dispatcher value vector."""

    __slots__ = ("n", "values", "d_final", "method")

    def __init__(self, n: int, values: Optional[np.ndarray],
                 d_final: Any, method: str) -> None:
        self.n = n
        self.values = values
        self.d_final = d_final
        self.method = method


def _closed_form_count(d0: int, step: int, op: str, limit: int) -> Optional[int]:
    """Exact iteration count for ``d OP limit`` with int induction, or
    ``None`` when the step direction cannot cross the threshold (the
    loop would not terminate — let the chunked search hit its cap)."""
    if op == "<" and step > 0:
        return (limit - 1 - d0) // step + 1 if d0 < limit else 0
    if op == "<=" and step > 0:
        return (limit - d0) // step + 1 if d0 <= limit else 0
    if op == ">" and step < 0:
        return (limit + 1 - d0) // step + 1 if d0 > limit else 0
    if op == ">=" and step < 0:
        return (limit - d0) // step + 1 if d0 >= limit else 0
    return None


def _induction_values(d0: Any, step: Any, n: int) -> np.ndarray:
    """Body-entry values ``d0, d0+step, …`` (n of them), exactly as the
    sequential fold produces them."""
    if isinstance(d0, int) and isinstance(step, int):
        return d0 + step * np.arange(n, dtype=np.int64)
    buf = np.empty(n, dtype=np.float64)
    buf[0] = d0
    if n > 1:
        buf[1:] = step
    return np.add.accumulate(buf)


def _count_by_search(kernel: LoweredKernel, d0: Any, step: Any,
                     scalar_env: Callable[[str], Any],
                     batch_cond: Callable[[np.ndarray], np.ndarray],
                     cap: int) -> int:
    """First ``k`` with ``cond(d_k)`` false, by chunked vectorized
    evaluation of the condition over candidate dispatcher values."""
    if not bool(_eval_py(kernel.cond, _chain_env(scalar_env, {
            kernel.dispatcher.var: d0}))):
        return 0
    n = 0
    last = d0
    int_path = isinstance(d0, int) and isinstance(step, int)
    while n < cap:
        chunk = min(_SEARCH_CHUNK, cap - n)
        if int_path:
            # Bound the chunk's extremes in exact Python arithmetic
            # *before* building the int64 vector, which would wrap.
            if max(abs(last + step), abs(last + step * chunk)) >= INT_LIMIT:
                raise _fb("dispatcher-overflow")
            cand = last + step * np.arange(1, chunk + 1, dtype=np.int64)
        else:
            buf = np.empty(chunk + 1, dtype=np.float64)
            buf[0] = last
            buf[1:] = step
            cand = np.add.accumulate(buf)[1:]
        alive = np.asarray(batch_cond(cand), dtype=bool)
        stop = np.flatnonzero(~alive)
        if stop.size:
            return n + 1 + int(stop[0])
        n += chunk
        last = _py_num(cand[-1])
        if not int_path:
            last = float(last)
        else:
            last = int(last)
    raise _fb("no-termination-in-cap")


def _chain_env(base: Callable[[str], Any],
               extra: Dict[str, Any]) -> Callable[[str], Any]:
    def lookup(name: str) -> Any:
        if name in extra:
            return extra[name]
        return base(name)
    return lookup


def _affine_dispatch(kernel: LoweredKernel, d0: Any,
                     scalar_env: Callable[[str], Any],
                     cap: int) -> _Dispatch:
    """Affine recurrence ``d ← a·d + b``: Python-exact walk for the
    count, then a ``cumprod``/``cumsum`` prefix scan for the vector,
    cross-checked against the walked values (used only when equal, so
    the scan never weakens exactness)."""
    disp = kernel.dispatcher
    var = disp.var
    walk_cap = min(cap, _AFFINE_WALK_CAP)
    values: List[Any] = []
    d = d0
    while bool(_eval_py(kernel.cond, _chain_env(scalar_env, {var: d}))):
        values.append(d)
        if len(values) > walk_cap:
            raise _fb("affine-walk-cap")
        d = _eval_py(kernel.update, _chain_env(scalar_env, {var: d}))
        if isinstance(d, int) and abs(d) >= INT_LIMIT:
            raise _fb("dispatcher-overflow")
    n = len(values)
    if n == 0:
        return _Dispatch(0, None, d0, "affine-walk")
    all_int = all(isinstance(v, int) for v in values)
    walked = np.asarray(values,
                        dtype=np.int64 if all_int else np.float64)
    # Prefix-scan form: d_k = a^k·d0 + b·Σ_{j<k} a^j.  Computed in
    # float64 and only trusted when it matches the walk exactly.
    method = "affine-walk"
    a, b = disp.mul, disp.add
    if a is not None and b is not None and n > 1:
        powers = np.cumprod(np.full(n - 1, float(a)))
        apow = np.concatenate(([1.0], powers))
        if float(a) == 1.0:
            geo = np.arange(n, dtype=np.float64)
        else:
            geo = (apow - 1.0) / (float(a) - 1.0)
        scanned = apow * float(d0) + float(b) * geo
        if all_int:
            if np.all(np.abs(scanned) < FLOAT_EXACT_INT) and \
                    np.array_equal(scanned.astype(np.int64), walked):
                walked = scanned.astype(np.int64)
                method = "affine-scan"
        elif np.array_equal(scanned, walked):
            walked = scanned
            method = "affine-scan"
    return _Dispatch(n, walked, d, method)


def _build_dispatch(kernel: LoweredKernel, d0: Any,
                    scalar_env: Callable[[str], Any],
                    batch_cond: Callable[[np.ndarray], np.ndarray],
                    u: Optional[int]) -> _Dispatch:
    disp = kernel.dispatcher
    d0 = _py_num(d0)
    if isinstance(d0, bool):
        d0 = int(d0)
    if not isinstance(d0, (int, float)):
        raise _fb("dispatcher-init-type")
    cap = max(2 * u + 64, _SEARCH_CHUNK) if u else _DEFAULT_CAP

    if disp.kind is RecKind.AFFINE:
        return _affine_dispatch(kernel, d0, scalar_env, cap)

    # Induction: the true typed step is one exact update application.
    d1 = _eval_py(kernel.update, _chain_env(scalar_env, {disp.var: d0}))
    d1 = _py_num(d1)
    if isinstance(d1, bool):
        d1 = int(d1)
    if isinstance(d0, int) and isinstance(d1, int):
        step: Any = d1 - d0
    elif isinstance(d1, float):
        # Float fold order is only replayable for a literal-step
        # update (``v ± c``): any other shape re-associates.
        step = _literal_step(kernel.update, disp.var)
        if step is None:
            raise _fb("float-step-shape")
        d0 = float(d0)
        step = float(step)
        if d1 != d0 + step:
            raise _fb("float-step-shape")
    else:
        raise _fb("dispatcher-init-type")
    if step == 0:
        raise _fb("zero-step")

    n: Optional[int] = None
    method = "search"
    if isinstance(step, int) and kernel.simple_bound is not None:
        op, limit_expr = kernel.simple_bound
        limit = _py_num(_eval_py(limit_expr, scalar_env))
        if isinstance(limit, bool):
            limit = int(limit)
        if isinstance(limit, int):
            n = _closed_form_count(d0, step, op, limit)
            if n is not None:
                method = "closed-form"
    if n is None:
        n = _count_by_search(kernel, d0, step, scalar_env, batch_cond, cap)
    if n > max(cap, _DEFAULT_CAP):
        # Exact but enormous: the value vector would not fit sanely.
        raise _fb("iteration-cap")
    if isinstance(step, int) and n:
        if max(_amax(d0 + step * (n - 1)), _amax(d0)) + _amax(step) \
                >= INT_LIMIT:
            raise _fb("dispatcher-overflow")
    values = _induction_values(d0, step, n) if n else None
    if n:
        d_final = _py_num(values[-1]) + step if isinstance(step, int) \
            else _eval_py(kernel.update,
                          _chain_env(scalar_env,
                                     {disp.var: _py_num(values[-1])}))
    else:
        d_final = d0
    return _Dispatch(n, values, d_final, method)


# ---------------------------------------------------------------------------
# Batched body evaluation
# ---------------------------------------------------------------------------

class _Batch:
    """Evaluates remainder statements over the whole iteration range.

    Array writes are staged on the instance; nothing touches the store
    until :func:`run_kernel`'s commit phase, so a fallback raised here
    leaves the program state untouched.
    """

    def __init__(self, n: int, disp_var: str, d: np.ndarray,
                 scalar_env: Callable[[str], Any], store: Store,
                 funcs: FunctionTable, kernel: LoweredKernel) -> None:
        self.n = n
        self.disp_var = disp_var
        self.d = d
        self.scalar_env = scalar_env
        self.store = store
        self.funcs = funcs
        self.kernel = kernel
        self.temps: Dict[str, Any] = {}
        self.staged: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self.exposed_reads: Dict[str, List[np.ndarray]] = {}

    # -- statement dispatch --------------------------------------------------
    def run(self) -> None:
        for _orig, stmt in self.kernel.stmts:
            if isinstance(stmt, Assign):
                self.temps[stmt.name] = self.eval(stmt.expr)
            elif isinstance(stmt, ArrayAssign):
                self._stage_write(stmt)
            elif isinstance(stmt, ExprStmt):
                self.eval(stmt.expr)
            else:  # pragma: no cover - lowering rejects other shapes
                raise _fb(f"stmt:{type(stmt).__name__}")

    # -- value helpers -------------------------------------------------------
    def _vec(self, v: Any) -> np.ndarray:
        """Broadcast a scalar-or-vector value to the full batch."""
        arr = np.asarray(v)
        if arr.dtype.kind not in "bif":
            raise _fb("value-dtype")
        if arr.ndim == 0:
            return np.broadcast_to(arr, (self.n,))
        return arr

    def _index_vector(self, e: Expr, array: str, size: int,
                      what: str) -> np.ndarray:
        iv = self._vec(self.eval(e))
        if iv.dtype.kind == "f":
            if not np.all(np.isfinite(iv)):
                raise _fb(f"index-nonfinite:{array}")
            iv = np.trunc(iv).astype(np.int64)
        elif iv.dtype.kind == "b":
            iv = iv.astype(np.int64)
        elif iv.dtype.kind != "i":
            raise _fb(f"index-type:{array}")
        else:
            iv = iv.astype(np.int64, copy=False)
        if iv.size and (int(iv.min()) < 0 or int(iv.max()) >= size):
            raise _fb(f"oob-{what}:{array}")
        return iv

    # -- reads ---------------------------------------------------------------
    def _read_array(self, e: ArrayRef) -> Any:
        arr = self.store[e.array]
        if not isinstance(arr, np.ndarray):
            raise _fb(f"non-array:{e.array}")
        if arr.ndim != 1:
            raise _fb(f"ndim:{e.array}")
        idx = self._index_vector(e.index, e.array, arr.shape[0], "read")
        staged = self.staged.get(e.array)
        if staged is not None:
            # Lowering guarantees the read uses the same index
            # expression as the write, so the staged value vector *is*
            # this read's value, position for position.
            _sidx, sval = staged
            return self._vec(sval).copy()
        if e.array in self.kernel.written_arrays and self.kernel.needs_pd:
            self.exposed_reads.setdefault(e.array, []).append(idx)
        return arr[idx]

    # -- writes --------------------------------------------------------------
    def _stage_write(self, stmt: ArrayAssign) -> None:
        arr = self.store[stmt.array]
        if not isinstance(arr, np.ndarray):
            raise _fb(f"non-array:{stmt.array}")
        if arr.ndim != 1:
            raise _fb(f"ndim:{stmt.array}")
        idx = self._index_vector(stmt.index, stmt.array, arr.shape[0],
                                 "write")
        val = self.eval(stmt.expr)
        if np.unique(idx).size != self.n:
            # Two iterations hit the same element: the batch cannot
            # order them, and an output dependence means the loop was
            # at best privatizable — the interpreted path decides.
            raise _fb(f"write-collision:{stmt.array}")
        vv = self._vec(val)
        if arr.dtype.kind in "iu":
            if vv.dtype.kind == "f":
                if not np.all(np.isfinite(vv)):
                    raise _fb(f"nonfinite-write:{stmt.array}")
                if float(np.max(np.abs(vv))) >= float(INT_LIMIT):
                    raise _fb(f"overflow-write:{stmt.array}")
            elif vv.dtype.kind in "bi" and vv.size and \
                    _amax(vv) >= INT_LIMIT:
                raise _fb(f"overflow-write:{stmt.array}")
        self.staged[stmt.array] = (idx, vv)

    # -- expression evaluation ----------------------------------------------
    def eval(self, e: Expr) -> Any:
        if isinstance(e, Const):
            return e.value
        if isinstance(e, Var):
            if e.name == self.disp_var:
                return self.d
            if e.name in self.temps:
                return self.temps[e.name]
            v = _py_num(self.scalar_env(e.name))
            if not isinstance(v, Scalar):
                raise _fb(f"non-scalar-var:{e.name}")
            return v
        if isinstance(e, ArrayRef):
            return self._read_array(e)
        if isinstance(e, Call):
            return self._call(e)
        if isinstance(e, UnaryOp):
            return self._unary(e)
        if isinstance(e, BinOp):
            return self._binop(e)
        raise _fb(f"expr:{type(e).__name__}")

    def _call(self, e: Call) -> Any:
        intr = self.funcs[e.fn]
        args = [self._vec(self.eval(a)) for a in e.args]
        out = intr.vector_impl(self.store, *args)
        out = np.asarray(out)
        if out.shape != (self.n,):
            raise _fb(f"vector-impl-shape:{e.fn}")
        return out

    def _unary(self, e: UnaryOp) -> Any:
        v = self.eval(e.operand)
        if e.op == "-":
            if _is_int(v) and _amax(v) >= INT_LIMIT:
                raise _fb("int-overflow")
            return np.negative(v) if isinstance(v, np.ndarray) else -v
        if e.op == "abs":
            if _is_int(v) and _amax(v) >= INT_LIMIT:
                raise _fb("int-overflow")
            return np.abs(v) if isinstance(v, np.ndarray) else abs(v)
        if e.op == "not":
            return ~self._as_bool(v) if isinstance(v, np.ndarray) \
                else (not v)
        raise _fb(f"unary:{e.op}")

    @staticmethod
    def _as_bool(v: Any) -> Any:
        if isinstance(v, np.ndarray):
            return v if v.dtype.kind == "b" else v.astype(bool)
        return bool(v)

    def _guard_pair(self, op: str, left: Any, right: Any) -> None:
        """Reject value ranges where NumPy and Python arithmetic could
        diverge (int64 wrap, inexact int→float promotion)."""
        li, ri = _is_int(left), _is_int(right)
        lf, rf = _is_float(left), _is_float(right)
        if not (li or lf) or not (ri or rf):
            raise _fb(f"operand-type:{op}")
        if li and ri:
            if op in ("+", "-"):
                if _amax(left) + _amax(right) >= INT_LIMIT:
                    raise _fb("int-overflow")
            elif op == "*":
                if _amax(left) * _amax(right) >= INT_LIMIT:
                    raise _fb("int-overflow")
            elif op == "/":
                if max(_amax(left), _amax(right)) >= FLOAT_EXACT_INT:
                    raise _fb("int-div-precision")
        elif li or ri:
            # Mixed: NumPy promotes the int side to float64.
            big = _amax(left) if li else _amax(right)
            if big >= FLOAT_EXACT_INT:
                raise _fb("int-float-precision")

    def _check_divisor(self, right: Any) -> None:
        if isinstance(right, np.ndarray):
            if bool(np.any(right == 0)):
                raise _fb("div-zero")
        elif right == 0:
            raise _fb("div-zero")

    def _binop(self, e: BinOp) -> Any:
        op = e.op
        if op in ("and", "or"):
            left = self._as_bool(self.eval(e.left))
            right = self._as_bool(self.eval(e.right))
            # Both operand sets are pure and raise-free by the time
            # they pass the batch guards, so eager & / | matches the
            # interpreter's short-circuit results.
            return (left & right) if op == "and" else (left | right)
        left = self.eval(e.left)
        right = self.eval(e.right)
        if op in ("//", "%", "/"):
            self._check_divisor(right)
        if op == "**":  # pragma: no cover - lowering rejects pow
            raise _fb("pow")
        self._guard_pair(op, left, right)
        try:
            if op == "min":
                return np.minimum(left, right)
            if op == "max":
                return np.maximum(left, right)
            return _NP_BIN[op](left, right)
        except (OverflowError, TypeError) as exc:
            # A Python-int constant outside int64 range (or similar):
            # NumPy cannot represent it, the interpreter can.
            raise _fb(f"numpy-op:{op}") from exc


_NP_BIN: Dict[str, Callable[[Any, Any], Any]] = {
    "+": np.add, "-": np.subtract, "*": np.multiply,
    "/": np.true_divide, "//": np.floor_divide, "%": np.mod,
    "==": np.equal, "!=": np.not_equal,
    "<": np.less, "<=": np.less_equal,
    ">": np.greater, ">=": np.greater_equal,
}


# ---------------------------------------------------------------------------
# The entry point
# ---------------------------------------------------------------------------

def run_kernel(info: LoopInfo, store: Store, funcs: FunctionTable, *,
               backend: str = "kernel", workers: int = 2,
               machine: Optional[Machine] = None,
               u: Optional[int] = None,
               plan_scheme: Optional[str] = None) -> ParallelResult:
    """Execute ``info``'s loop as one vectorized batch.

    Either commits a store bit-identical to the sequential
    interpreter's and returns a :class:`ParallelResult` with
    ``stats["backend"] == "kernel"``, or raises
    :class:`~repro.errors.KernelFallback` with the store untouched.

    Parameters mirror the executor entry points: ``machine`` feeds the
    PD verdict's virtual-time accounting, ``u`` (when known) bounds the
    iteration-count search, ``plan_scheme`` labels the result scheme as
    ``kernel[<scheme>]``.
    """
    prof = get_profiler()
    tracer = get_tracer()
    cache = kernel_cache()
    t0 = time.perf_counter_ns()

    with prof.phase("kernel.lower", loop=info.loop.name):
        pre = cache.stats()
        kernel = cache.lower(info, funcs)   # may raise KernelFallback
        cache_hit = cache.stats()["hits"] > pre["hits"]
    if cache_hit:
        tracer.count(_n.M_KERNEL_CACHE_HITS)
    else:
        tracer.count(_n.M_KERNEL_CACHE_MISSES)

    # Init runs with an overlay local dict: scalar assignments land
    # there (published only on success), while reads fall through to
    # the store with the interpreter's own semantics.
    overlay: Dict[str, Any] = {}
    ctx = EvalContext(store, funcs, FREE, local=overlay)
    for stmt in info.loop.init:
        compile_stmt(stmt, FREE)(ctx)

    def scalar_env(name: str) -> Any:
        if name in overlay:
            return overlay[name]
        v = store[name]
        if not isinstance(v, Scalar):
            raise _fb(f"non-scalar-var:{name}")
        return v

    disp = kernel.dispatcher
    t_lower_end = time.perf_counter_ns()

    with prof.phase("kernel.dispatch", loop=info.loop.name):
        d0 = scalar_env(disp.var)

        def batch_cond(cand: np.ndarray) -> np.ndarray:
            probe = _Batch(len(cand), disp.var, cand, scalar_env,
                           store, funcs, kernel)
            return probe._vec(probe._as_bool(probe.eval(kernel.cond)))
        dispatch = _build_dispatch(kernel, _py_num(d0), scalar_env,
                                   batch_cond, u)
    n = dispatch.n
    t_dispatch_end = time.perf_counter_ns()

    pd_result = None
    if n:
        with prof.phase("kernel.body", loop=info.loop.name, iters=n):
            batch = _Batch(n, disp.var, dispatch.values, scalar_env,
                           store, funcs, kernel)
            batch.run()
        t_body_end = time.perf_counter_ns()

        if kernel.needs_pd:
            with prof.phase("kernel.pd", loop=info.loop.name):
                sizes = {name: int(store[name].shape[0])
                         for name in kernel.written_arrays}
                shadows = vectorized_pd_shadows(
                    sizes,
                    {name: batch.staged[name][0]
                     for name in batch.staged},
                    batch.exposed_reads)
                mach = machine or Machine(max(2, int(workers)))
                pd_result = analyze_pd(shadows, mach)
            if not pd_result.valid_as_is:
                # Cross-iteration dependence (or privatization need)
                # detected before any mutation: the interpreted
                # speculative path owns this loop.
                raise _fb("pd-failed")

        with prof.phase("kernel.commit", loop=info.loop.name):
            for name, (idx, val) in batch.staged.items():
                store[name][idx] = val
            for name, value in overlay.items():
                if name != disp.var:
                    store[name] = _py_num(value)
            for name in kernel.body_scalars:
                v = batch.temps[name]
                if isinstance(v, np.ndarray):
                    store[name] = v[-1].item()
                else:
                    store[name] = _py_num(v)
            store[disp.var] = _py_num(dispatch.d_final)
    else:
        t_body_end = t_dispatch_end
        with prof.phase("kernel.commit", loop=info.loop.name):
            for name, value in overlay.items():
                if name != disp.var:
                    store[name] = _py_num(value)
            store[disp.var] = _py_num(dispatch.d_final)
    t_end = time.perf_counter_ns()

    tracer.count(_n.M_KERNEL_RUNS)
    tracer.count(_n.M_KERNEL_ITERS, n)
    tracer.event(_n.EV_KERNEL_RUN, 0, loop=info.loop.name, iters=n,
                 method=dispatch.method,
                 cache="hit" if cache_hit else "miss",
                 pd=kernel.needs_pd)

    scheme = f"kernel[{plan_scheme}]" if plan_scheme else "kernel"
    stats = {
        "backend": "kernel",
        "requested_backend": backend,
        "u": n,
        "kernels": {
            "engaged": True,
            "method": dispatch.method,
            "cache": "hit" if cache_hit else "miss",
            "pd": kernel.needs_pd,
            "signature": kernel.signature,
        },
    }
    return ParallelResult(
        scheme=scheme,
        n_iters=n,
        exited_in_body=False,
        t_par=max(0, t_end - t0),
        makespan=max(0, t_body_end - t_dispatch_end),
        t_before=max(0, t_dispatch_end - t0),
        t_after=max(0, t_end - t_body_end),
        executed=n,
        pd=pd_result,
        stats=stats,
        wall_s=(t_end - t0) / 1e9,
    )
