"""Arena lease lifecycle: reuse, TTL revocation, idempotent teardown."""

from __future__ import annotations

import numpy as np

from repro.errors import PoolClosed
from repro.ir.store import Store
from repro.runtime.shm import attach_store
from repro.service.arenas import Arena, ArenaConfig, _size_class


def _store(n=64):
    st = Store()
    st["a"] = np.arange(n, dtype=np.int64)
    st["x"] = 7
    return st


def test_size_class_is_next_power_of_two():
    assert _size_class(1, 4096) == 4096
    assert _size_class(4096, 4096) == 4096
    assert _size_class(4097, 4096) == 8192
    assert _size_class(100_000, 4096) == 131072


def test_lease_export_attach_roundtrip():
    arena = Arena()
    try:
        lease = arena.lease(_store())
        assert lease.valid()
        attached = attach_store(lease.spec)
        assert list(attached.store["a"][:4]) == [0, 1, 2, 3]
        attached.close()
        lease.release()
        assert not lease.valid()
    finally:
        arena.close()


def test_segments_are_reused_across_leases():
    arena = Arena()
    try:
        lease1 = arena.lease(_store())
        lease1.release()
        lease2 = arena.lease(_store())
        lease2.release()
        stats = arena.stats()
        assert stats["reused"] >= 1
        # a released lease's segments are pooled, not destroyed
        assert stats["pooled"] >= 1
    finally:
        arena.close()


def test_sweep_revokes_expired_leases_idempotently():
    arena = Arena()
    try:
        lease = arena.lease(_store(), ttl_s=0.0)
        assert arena.sweep() == 1
        assert lease.revoked and not lease.valid()
        assert arena.sweep() == 0        # idempotent
        assert arena.stats()["expired"] == 1
    finally:
        arena.close()


def test_renew_extends_ttl():
    arena = Arena()
    try:
        lease = arena.lease(_store(), ttl_s=0.0)
        assert lease.renew(ttl_s=60.0)
        assert arena.sweep() == 0
        assert lease.valid()
        lease.release()
        assert not lease.renew()         # gone leases stay gone
    finally:
        arena.close()


def test_release_is_idempotent():
    arena = Arena()
    try:
        lease = arena.lease(_store())
        lease.release()
        lease.release()
        assert arena.stats()["leases"] == 0
    finally:
        arena.close()


def test_max_segments_bounds_the_free_pool():
    arena = Arena(ArenaConfig(max_segments=1))
    try:
        lease = arena.lease(_store())
        n_segments = len(lease.segments)
        assert n_segments >= 1
        lease.release()
        assert arena.stats()["pooled"] <= 1
    finally:
        arena.close()


def test_close_is_idempotent_and_closes_new_leases():
    arena = Arena()
    lease = arena.lease(_store())
    arena.close()
    arena.close()
    assert lease.revoked
    try:
        arena.lease(_store())
    except PoolClosed:
        pass
    else:
        raise AssertionError("lease after close must raise PoolClosed")
