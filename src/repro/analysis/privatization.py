"""Privatization analysis (paper Section 5, "Privatization Criterion").

    A shared array ``A`` referenced in a loop ``L`` can be privatized
    if and only if every read access to an element of ``A`` is
    preceded by a write access to that same element of ``A`` within
    the same iteration of ``L``.

Privatization removes anti and output (memory-related) dependences by
giving each processor a private copy.  This module implements a
conservative *static* version of the criterion (syntactic index
equality along all paths); the *dynamic* version — tracked per-element
in shadow arrays — lives in the PD test
(:mod:`repro.speculation.pdtest`).

It also classifies the copy-in / copy-out needs the paper describes:
a variable read before any write needs copy-in; a privatized variable
live after the loop needs last-value copy-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.analysis.defuse import block_effects, stmt_effects
from repro.ir.functions import FunctionTable
from repro.ir.nodes import Expr, For, If, Loop, Stmt

__all__ = ["PrivStatus", "PrivInfo", "analyze_privatization",
           "scalar_privatization"]


class PrivStatus(Enum):
    """Outcome of the privatization criterion for one variable."""

    PRIVATIZABLE = "privatizable"         #: criterion holds as stated
    NEEDS_COPY_IN = "needs-copy-in"       #: read-first of outside value
    NOT_PRIVATIZABLE = "not-privatizable"  #: cannot decide / fails


@dataclass(frozen=True)
class PrivInfo:
    """Privatization verdicts for a loop body.

    Attributes
    ----------
    arrays:
        Per-array status for every array referenced in the remainder.
    scalars:
        Per-scalar status for remainder scalars (excluding the
        dispatcher).
    live_out_unknown:
        Names whose liveness after the loop is unknown — privatizing
        them requires the time-stamped copy-out trail of Section 5.
    """

    arrays: Dict[str, PrivStatus]
    scalars: Dict[str, PrivStatus]
    live_out_unknown: FrozenSet[str]


def _array_read_write_order(
    body: Sequence[Stmt],
    array: str,
    funcs: Optional[FunctionTable],
) -> PrivStatus:
    """Apply the criterion syntactically to one array.

    Conservative walk in execution order: a read is "covered" only if
    an unconditional earlier write in the same iteration uses a
    *structurally identical* index expression.  Conditional writes
    cover reads only within the same branch.
    """

    def scan(stmts: Sequence[Stmt], written: Set[Expr]) -> Optional[PrivStatus]:
        for s in stmts:
            if isinstance(s, If):
                # Branches see a copy of the covered set; writes inside
                # a branch do not cover reads after the If.
                for blk in (s.then, s.orelse):
                    bad = scan(blk, set(written))
                    if bad is not None:
                        return bad
                continue
            if isinstance(s, For):
                bad = scan(s.body, set(written))
                if bad is not None:
                    return bad
                continue
            eff = stmt_effects(s, funcs)
            if eff.opaque and array in (eff.array_reads | eff.array_writes):
                return PrivStatus.NOT_PRIVATIZABLE
            for acc in eff.accesses:
                if acc.array != array:
                    continue
                if acc.is_write:
                    written.add(acc.index)
                elif acc.index not in written:
                    return PrivStatus.NEEDS_COPY_IN
        return None

    bad = scan(body, set())
    return bad if bad is not None else PrivStatus.PRIVATIZABLE


def analyze_privatization(
    loop: Loop,
    funcs: Optional[FunctionTable] = None,
    *,
    remainder_stmts: Optional[Sequence[int]] = None,
    dispatcher_var: Optional[str] = None,
) -> PrivInfo:
    """Run the privatization criterion over a loop's remainder."""
    body = (list(loop.body) if remainder_stmts is None
            else [loop.body[i] for i in remainder_stmts])
    eff = block_effects(body, funcs)
    arrays: Dict[str, PrivStatus] = {}
    for a in sorted(eff.array_reads | eff.array_writes):
        if a not in eff.array_writes:
            # Read-only arrays need no privatization at all; report
            # them privatizable trivially (no copies needed).
            arrays[a] = PrivStatus.PRIVATIZABLE
        else:
            arrays[a] = _array_read_write_order(body, a, funcs)
    scalars = scalar_privatization(body, funcs,
                                   dispatcher_var=dispatcher_var)
    live_unknown = frozenset(
        n for n, st in {**arrays, **scalars}.items()
        if st is PrivStatus.PRIVATIZABLE)
    return PrivInfo(arrays, scalars, live_unknown)


def scalar_privatization(
    body: Sequence[Stmt],
    funcs: Optional[FunctionTable] = None,
    *,
    dispatcher_var: Optional[str] = None,
) -> Dict[str, PrivStatus]:
    """Classify remainder scalars by the write-before-read criterion.

    The dispatcher variable is excluded: it is loop-carried by design
    and handled by the dispatcher machinery, not privatization.
    """
    out: Dict[str, PrivStatus] = {}
    eff = block_effects(body, funcs)
    candidates = eff.scalar_writes - ({dispatcher_var} if dispatcher_var
                                      else set())
    for v in sorted(candidates):
        written = False
        verdict: Optional[PrivStatus] = None

        def scan(stmts: Sequence[Stmt], written_in: bool) -> Tuple[bool, Optional[PrivStatus]]:
            w = written_in
            for s in stmts:
                if isinstance(s, If):
                    wt, vt = scan(s.then, w)
                    we, ve = scan(s.orelse, w)
                    if vt is not None:
                        return w, vt
                    if ve is not None:
                        return w, ve
                    # Covered only if both branches wrote it.
                    w = w or (wt and we)
                    continue
                if isinstance(s, For):
                    _, vf = scan(s.body, w)
                    if vf is not None:
                        return w, vf
                    continue
                e = stmt_effects(s, funcs)
                if v in e.scalar_reads and not w:
                    return w, PrivStatus.NEEDS_COPY_IN
                if v in e.scalar_writes:
                    w = True
            return w, None

        written, verdict = scan(body, False)
        out[v] = verdict if verdict is not None else PrivStatus.PRIVATIZABLE
    return out
