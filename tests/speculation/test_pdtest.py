"""Unit + property tests for the PD test (shadow arrays + analysis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import EvalContext, FunctionTable, Store
from repro.runtime import UNIT, Machine
from repro.speculation import HashShadowArrays, ShadowArrays, analyze_pd


def replay(shadow, store, accesses):
    """Drive the shadow with (iteration, op, idx) triples on array A."""
    current = None
    ctx = None
    for it, op, idx in accesses:
        if it != current:
            shadow.begin_iteration(it)
            current = it
        ctx = EvalContext(store, FunctionTable(), UNIT, mem=shadow,
                          iteration=it)
        if op == "r":
            ctx.read("A", idx)
        else:
            ctx.write("A", idx, 1)
    return shadow


def fresh(n=16, sparse=False):
    store = Store({"A": np.zeros(n, dtype=np.int64)})
    cls = HashShadowArrays if sparse else ShadowArrays
    return store, cls(store, ["A"])


def run_pd(accesses, *, sparse=False, last_valid=None, p=4):
    store, shadow = fresh(sparse=sparse)
    replay(shadow, store, accesses)
    if sparse:
        shadow = shadow.densify()
    return analyze_pd(shadow, Machine(p), last_valid=last_valid)


class TestPDVerdicts:
    def test_disjoint_writes_pass(self):
        res = run_pd([(1, "w", 1), (2, "w", 2), (3, "w", 3)])
        assert res.valid_as_is and res.valid_privatized

    def test_output_dependence_fails(self):
        res = run_pd([(1, "w", 5), (2, "w", 5)])
        assert not res.valid_as_is
        assert res.output_dep_elements == 1
        # privatization removes output deps
        assert res.valid_privatized

    def test_flow_dependence_fails_both(self):
        # iteration 1 writes, iteration 3 reads (exposed)
        res = run_pd([(1, "w", 5), (3, "r", 5)])
        assert not res.valid_as_is
        assert not res.valid_privatized

    def test_anti_dependence_fails_as_is_but_priv_ok(self):
        # read at iteration 1, write at iteration 3: sequential read
        # sees the pre-loop value; privatized execution also does.
        res = run_pd([(1, "r", 5), (3, "w", 5)])
        assert not res.valid_as_is
        assert res.valid_privatized

    def test_covered_read_is_fine(self):
        # same iteration: write then read -> not exposed
        res = run_pd([(1, "w", 5), (1, "r", 5), (2, "w", 6)])
        assert res.valid_as_is

    def test_read_before_write_same_iteration_exposed(self):
        # within one iteration, read first: exposed, but no other
        # iteration writes it -> still valid
        res = run_pd([(1, "r", 5), (1, "w", 5)])
        assert res.valid_as_is

    def test_read_only_sharing_fine(self):
        res = run_pd([(1, "r", 5), (2, "r", 5), (3, "r", 5)])
        assert res.valid_as_is

    def test_three_writers(self):
        res = run_pd([(1, "w", 5), (2, "w", 5), (3, "w", 5)])
        assert res.output_dep_elements == 1


class TestTimestampedMarks:
    def test_overshot_marks_ignored(self):
        # the conflicting write belongs to an overshot iteration
        res = run_pd([(1, "w", 5), (9, "w", 5)], last_valid=4)
        assert res.valid_as_is

    def test_valid_conflict_still_fails(self):
        res = run_pd([(1, "w", 5), (3, "w", 5)], last_valid=4)
        assert not res.valid_as_is

    def test_overshot_exposed_read_ignored(self):
        res = run_pd([(1, "w", 5), (9, "r", 5)], last_valid=4)
        assert res.valid_as_is

    def test_two_smallest_tracked(self):
        # writes at 9, 2, 5: cut at 4 keeps only iteration 2 -> valid;
        # cut at 6 keeps 2 and 5 -> output dep.
        acc = [(9, "w", 5), (2, "w", 5), (5, "w", 5)]
        assert run_pd(acc, last_valid=4).valid_as_is
        assert not run_pd(acc, last_valid=6).valid_as_is


class TestPerArray:
    def test_per_array_breakdown(self):
        store = Store({"A": np.zeros(8, dtype=np.int64),
                       "B": np.zeros(8, dtype=np.int64)})
        sh = ShadowArrays(store, ["A", "B"])
        ctx1 = EvalContext(store, FunctionTable(), UNIT, mem=sh, iteration=1)
        sh.begin_iteration(1)
        ctx1.write("A", 0, 1)
        ctx2 = EvalContext(store, FunctionTable(), UNIT, mem=sh, iteration=2)
        sh.begin_iteration(2)
        ctx2.write("A", 0, 2)     # output dep on A
        ctx2.write("B", 1, 2)     # clean on B
        res = analyze_pd(sh, Machine(4))
        assert not res.array("A").valid_as_is
        assert res.array("B").valid_as_is
        assert res.valid_with_privatized(["A"])
        assert not res.valid_with_privatized([])

    def test_unknown_array_keyerror(self):
        store, sh = fresh()
        res = analyze_pd(sh, Machine(2))
        with pytest.raises(KeyError):
            res.array("nope")


class TestHashShadow:
    def test_sparse_words_much_smaller(self):
        store = Store({"A": np.zeros(10_000, dtype=np.int64)})
        sh = HashShadowArrays(store, ["A"])
        replay(sh, store, [(1, "w", 3), (2, "w", 500)])
        assert sh.words == 8  # 2 touched elements x 4 stamps
        dense = ShadowArrays(store, ["A"])
        assert dense.words == 40_000

    def test_densify_equivalent_verdict(self):
        acc = [(1, "w", 5), (2, "w", 5), (3, "r", 7), (1, "w", 7)]
        dense_res = run_pd(acc, sparse=False)
        sparse_res = run_pd(acc, sparse=True)
        assert dense_res.valid_as_is == sparse_res.valid_as_is
        assert dense_res.valid_privatized == sparse_res.valid_privatized


@st.composite
def access_patterns(draw):
    n_iters = draw(st.integers(1, 8))
    out = []
    for it in range(1, n_iters + 1):
        k = draw(st.integers(0, 5))
        for _ in range(k):
            op = draw(st.sampled_from(["r", "w"]))
            idx = draw(st.integers(0, 7))
            out.append((it, op, idx))
    return out


def refined_oracle(accesses):
    """Exact oracle mirroring the PD test's definition."""
    writes = {}
    exposed_reads = {}
    written_now = set()
    cur = None
    for it, op, idx in accesses:
        if it != cur:
            written_now = set()
            cur = it
        if op == "w":
            writes.setdefault(idx, set()).add(it)
            written_now.add(idx)
        elif idx not in written_now:
            exposed_reads.setdefault(idx, set()).add(it)
    for idx, ws in writes.items():
        if len(ws) > 1:
            return False
        for r in exposed_reads.get(idx, ()):
            if r not in ws:
                return False
    return True


@given(access_patterns())
@settings(max_examples=120, deadline=None)
def test_pd_verdict_matches_oracle(accesses):
    """Property: the PD test's as-is verdict equals the exact oracle."""
    res = run_pd(accesses)
    assert res.valid_as_is == refined_oracle(accesses)


@given(access_patterns())
@settings(max_examples=60, deadline=None)
def test_sparse_and_dense_agree(accesses):
    """Property: hash shadow and dense shadow give identical verdicts."""
    d = run_pd(accesses, sparse=False)
    s = run_pd(accesses, sparse=True)
    assert (d.valid_as_is, d.valid_privatized) \
        == (s.valid_as_is, s.valid_privatized)
