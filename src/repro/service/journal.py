"""Write-ahead job journal: durability for the worker-pool service.

PR 8's :class:`~repro.service.pool.WorkerPool` recovers *worker*
faults, but the pool process itself is a single point of failure —
SIGKILL the parent mid-strip and every queued and in-flight job
vanishes, along with the committed speculative prefix the PD test
already validated.  This module persists exactly the state the
paper's strip-mined execution (Sections 4/8) makes recoverable:

* an ``admitted`` record per job — the loop and store via
  :mod:`repro.ir.serialize`, scheme, deadline, and an idempotency
  key — appended (and fsync'd) *before* dispatch;
* a ``lease`` record naming the shm segments the job's arena lease
  pinned, so ``--resume`` can sweep the crashed generation's
  segments without double-releasing live ones;
* ``checkpoint`` records at strip boundaries — a serialized
  :class:`~repro.speculation.checkpoint.IntervalCheckpoint` of the
  committed prefix (PD-validated for speculative jobs), so replay
  restarts from ``next_iter``, not iteration 0;
* a terminal ``done`` (with the final store, for client-side
  idempotent resubmission) or ``failed`` record.

The journal is JSONL: one self-contained JSON object per line, so a
crash mid-append can tear at most the final line.  :meth:`scan`
tolerates torn records by skipping (and counting) undecodable lines.

Replay (:func:`resume_jobs`) completes every incomplete job and
verifies nothing twice: jobs whose checkpoint covers a committed
prefix resume from it — non-speculative jobs back on the pool via a
:class:`~repro.runtime.procs.ResumeState`, speculative jobs by the
sequential-continuation rule (a speculative prefix is only *valid*
up to the PD test's verdict, and the resume path refuses speculative
``ResumeState``\\ s for that reason, mirroring
``run_parallel_real``); jobs with no checkpoint rerun from scratch.

Intrinsic implementations are **not** serialized (the corpus-replay
restriction of :mod:`repro.ir.serialize`), so replaying a job whose
loop calls intrinsics needs a ``funcs_for`` resolver supplying the
matching :class:`~repro.ir.functions.FunctionTable`.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.loopinfo import analyze_loop
from repro.errors import IRError, PoolError
from repro.ir.functions import FunctionTable
from repro.ir.interp import IterationRunner, SequentialInterp
from repro.ir.serialize import (
    loop_from_obj,
    loop_to_obj,
    store_from_obj,
    store_to_obj,
)
from repro.ir.store import Store
from repro.obs import names as _ev
from repro.obs.tracer import get_tracer
from repro.runtime.costs import FREE
from repro.runtime.shm import release_segment
from repro.speculation.checkpoint import IntervalCheckpoint

__all__ = [
    "JobJournal",
    "JournalJob",
    "JournalScan",
    "ReplayOutcome",
    "default_job_key",
    "resume_jobs",
]


def default_job_key(loop, store: Store, scheme: str, *,
                    salt: str = "") -> str:
    """Deterministic idempotency key: content hash of (loop, store,
    scheme, salt).

    Identical submissions hash to the same key — that *is* the
    idempotency contract: a client resubmitting the same job after a
    reconnect dedups against the journal instead of executing twice.
    Pass a distinct ``salt`` to run intentionally identical jobs as
    separate journal entries.
    """
    blob = json.dumps(
        {"loop": loop_to_obj(loop), "store": store_to_obj(store),
         "scheme": scheme, "salt": salt},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


@dataclass
class JournalJob:
    """One job's folded journal state after a :meth:`JobJournal.scan`."""

    key: str
    spec: Dict                      #: the ``admitted`` record
    checkpoint: Optional[Dict] = None   #: latest checkpoint payload
    n_checkpoints: int = 0
    segments: Tuple[str, ...] = ()  #: shm names from ``lease`` records
    outcome: Optional[str] = None   #: ``done`` / ``failed`` / None
    result: Optional[Dict] = None   #: final store obj when done
    error: Optional[str] = None

    @property
    def incomplete(self) -> bool:
        """Admitted but never reached a terminal record."""
        return self.outcome is None


@dataclass
class JournalScan:
    """Every job keyed by id (admitted order) plus scan diagnostics."""

    jobs: Dict[str, JournalJob] = field(default_factory=dict)
    torn: int = 0                   #: undecodable lines skipped

    def incomplete(self) -> List[JournalJob]:
        """Jobs a crash left without a terminal record, admitted order."""
        return [j for j in self.jobs.values() if j.incomplete]


class JobJournal:
    """Append-only JSONL write-ahead log under one directory.

    Appends hold a lock, write one full line, flush, and ``fsync`` (by
    default), so a record is durable before the action it covers runs
    — the write-ahead discipline.  All record types carry ``t`` (type),
    ``job`` (idempotency key) and ``ts`` (wall clock).
    """

    FILENAME = "journal.jsonl"

    def __init__(self, directory: str, *, fsync: bool = True) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, self.FILENAME)
        self._fsync = bool(fsync)
        self._lock = threading.Lock()
        self._fh: Optional[io.TextIOWrapper] = None
        #: keys this handle has admitted (idempotency fast path); seeded
        #: from disk so reopening after a crash stays idempotent.
        self._admitted = {job.key for job in self.scan().jobs.values()}

    # -- low-level append ------------------------------------------------
    def _append(self, record: Dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())
        trc = get_tracer()
        if trc.enabled:
            trc.count(_ev.M_JOURNAL_RECORDS)
            trc.event(_ev.EV_JOURNAL_RECORD, 0,
                      kind=record["t"], job=record["job"])

    def close(self) -> None:
        """Close the append handle (reopened lazily on next append)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- record writers --------------------------------------------------
    def record_admitted(self, key: str, *, loop, store: Store,
                        scheme: str = "doall",
                        speculative: bool = False,
                        workers: Optional[int] = None,
                        u: Optional[int] = None,
                        strip: Optional[int] = None,
                        chunk: Optional[int] = None,
                        test_arrays: Tuple[str, ...] = (),
                        privatize: Tuple[str, ...] = (),
                        deadline_s: Optional[float] = None) -> bool:
        """Journal one admitted job before dispatch; returns ``False``
        (and writes nothing) when ``key`` was already admitted —
        resubmission is idempotent by construction."""
        with self._lock:
            if key in self._admitted:
                return False
            self._admitted.add(key)
        self._append({
            "t": "admitted", "job": key, "ts": time.time(),
            "loop": loop_to_obj(loop), "store": store_to_obj(store),
            "scheme": scheme, "speculative": bool(speculative),
            "workers": workers, "u": u, "strip": strip, "chunk": chunk,
            "test_arrays": list(test_arrays),
            "privatize": list(privatize),
            "deadline_s": deadline_s,
        })
        return True

    def record_lease(self, key: str, segments) -> None:
        """Name the shm segments a job's arena lease pinned, so the
        resume sweep can reclaim a crashed generation's segments."""
        self._append({"t": "lease", "job": key, "ts": time.time(),
                      "segments": [str(s) for s in segments]})

    def record_checkpoint(self, key: str,
                          ckpt: IntervalCheckpoint) -> None:
        """Persist a strip-boundary committed prefix."""
        self._append({"t": "checkpoint", "job": key, "ts": time.time(),
                      "ckpt": ckpt.to_obj()})
        trc = get_tracer()
        if trc.enabled:
            trc.count(_ev.M_JOURNAL_CHECKPOINTS)

    def record_done(self, key: str, store: Store) -> None:
        """Terminal success, with the final store for dedup replies."""
        self._append({"t": "done", "job": key, "ts": time.time(),
                      "store": store_to_obj(store)})

    def record_failed(self, key: str, error: str) -> None:
        """Terminal failure (the job will not be replayed)."""
        self._append({"t": "failed", "job": key, "ts": time.time(),
                      "error": str(error)})

    # -- scanning --------------------------------------------------------
    def scan(self) -> JournalScan:
        """Fold the log into per-job state, tolerating torn records.

        A SIGKILL can sever the final line mid-write; any line that
        fails to decode (or lacks the mandatory fields) is counted in
        ``torn`` and skipped — every *earlier* record was fsync'd
        whole, so this loses at most the last append.
        """
        out = JournalScan()
        if not os.path.exists(self.path):
            return out
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                    kind = rec["t"]
                    key = rec["job"]
                except (ValueError, TypeError, KeyError):
                    out.torn += 1
                    continue
                job = out.jobs.get(key)
                if kind == "admitted":
                    if job is None:
                        out.jobs[key] = JournalJob(key=key, spec=rec)
                    continue
                if job is None:        # torn away its admitted record
                    out.torn += 1
                    continue
                if kind == "lease":
                    job.segments = tuple(
                        dict.fromkeys(job.segments
                                      + tuple(rec.get("segments", ()))))
                elif kind == "checkpoint":
                    job.checkpoint = rec["ckpt"]
                    job.n_checkpoints += 1
                elif kind == "done":
                    job.outcome = "done"
                    job.result = rec.get("store")
                elif kind == "failed":
                    job.outcome = "failed"
                    job.error = rec.get("error")
                else:
                    out.torn += 1
        if out.torn:
            trc = get_tracer()
            if trc.enabled:
                trc.count(_ev.M_JOURNAL_TORN, out.torn)
        return out

    def result_for(self, key: str) -> Optional[Store]:
        """Final store of a ``done`` job, or ``None`` — the client's
        dedup lookup (no re-execution for a completed key)."""
        job = self.scan().jobs.get(key)
        if job is None or job.outcome != "done" or job.result is None:
            return None
        return store_from_obj(job.result)

    # -- crashed-generation shm sweep ------------------------------------
    def sweep_stale_segments(self,
                             scan: Optional[JournalScan] = None) -> int:
        """Unlink shm segments leased to incomplete jobs; returns the
        count reclaimed.

        Runs at ``--resume`` startup, *before* any new pool spawns.
        Release is idempotent (:func:`~repro.runtime.shm.release_segment`
        unregisters gone segments instead of raising), so a segment the
        dying pool already released — or one swept by an earlier resume
        attempt — is skipped silently rather than double-released.
        """
        state = scan if scan is not None else self.scan()
        swept = 0
        for job in state.incomplete():
            for name in job.segments:
                try:
                    seg = shared_memory.SharedMemory(name=name,
                                                     create=False)
                except FileNotFoundError:
                    continue            # already gone: idempotent no-op
                release_segment(seg, unlink=True)
                swept += 1
        trc = get_tracer()
        if trc.enabled and swept:
            trc.count(_ev.M_JOURNAL_SWEPT, swept)
        return swept


# -- replay ---------------------------------------------------------------

@dataclass(frozen=True)
class ReplayOutcome:
    """One replayed job: how it resumed and what it produced."""

    key: str
    loop: str
    scheme: str
    speculative: bool
    mode: str           #: pool-resume / sequential-continue / pool-fresh
    resumed_from: int   #: first re-executed iteration (1 = from scratch)
    store: Store        #: final store (also journaled as ``done``)
    wall_s: float


def _rebuild(job: JournalJob, funcs: FunctionTable):
    """Loop, analysis info, and pristine store from an admitted record."""
    loop = loop_from_obj(job.spec["loop"])
    store = store_from_obj(job.spec["store"])
    info = analyze_loop(loop, funcs)
    return loop, info, store


def _resume_state_from_checkpoint(ckpt: IntervalCheckpoint,
                                  post_init: Store, disp_var: str):
    """Diff the checkpoint boundary against the post-init store into
    the pseudo write-set / locals a pool ``ResumeState`` carries.

    ``run_parallel_real``'s resume path applies writes and locals to
    the freshly init'd store and re-derives the dispatcher value
    itself (closed form or replay walk), so the dispatcher scalar is
    deliberately excluded here.
    """
    from repro.runtime.procs import ResumeState

    boundary = post_init.copy()
    ckpt.restore(boundary)
    writes: Dict[Tuple[str, int], object] = {}
    for name in post_init.arrays():
        base = post_init[name]
        after = boundary[name]
        for idx in np.nonzero(after != base)[0]:
            writes[(name, int(idx))] = after[int(idx)]
    locals_ = {name: boundary[name] for name in boundary.scalars()
               if name != disp_var}
    return ResumeState(next_iter=ckpt.next_iter,
                       writes={1: writes} if writes else {},
                       locals=locals_)


def resume_jobs(journal: JobJournal, pool, *,
                funcs_for: Optional[Callable[[JournalJob],
                                             FunctionTable]] = None,
                sweep: bool = True) -> List[ReplayOutcome]:
    """Complete every incomplete journaled job after a crash.

    For each job admitted but not terminal, in admitted order:

    * with a committed checkpoint, **non-speculative** jobs resubmit
      to ``pool`` with a :class:`ResumeState` diffed from the
      checkpoint (the partial-restart rung's own mechanism), and
      **speculative** jobs restore the checkpoint and continue
      sequentially — their prefix is exactly as far as the PD test
      validated, and re-speculating past it cannot be resumed into
      (``run_parallel_real`` rejects speculative resumes);
    * with no checkpoint, the job reruns from scratch on the pool
      under its original scheme/speculation settings.

    Every completion is journaled ``done`` (or ``failed``), so a
    second ``--resume`` — or a client resubmitting the same key — is
    a no-op.  Returns one :class:`ReplayOutcome` per replayed job.
    """
    state = journal.scan()
    if sweep:
        journal.sweep_stale_segments(state)
    trc = get_tracer()
    outcomes: List[ReplayOutcome] = []
    for job in state.incomplete():
        funcs = funcs_for(job) if funcs_for is not None else FunctionTable()
        t0 = time.perf_counter()
        try:
            loop, info, store = _rebuild(job, funcs)
        except (IRError, KeyError, TypeError) as exc:
            journal.record_failed(job.key, f"rebuild: {exc}")
            continue
        spec = job.spec
        scheme = spec.get("scheme", "doall")
        speculative = bool(spec.get("speculative"))
        ckpt = (IntervalCheckpoint.from_obj(job.checkpoint)
                if job.checkpoint is not None else None)
        resumed_from = 1
        try:
            if ckpt is not None and ckpt.next_iter > 1 and speculative:
                # Sequential continuation from the PD-validated prefix:
                # run init, restore the boundary, finish exactly.
                runner = IterationRunner(
                    loop, funcs, FREE,
                    dispatcher_stmts=info.dispatcher_stmts)
                runner.run_init(runner.make_ctx(store))
                ckpt.restore(store)
                SequentialInterp(loop, funcs, FREE).run(
                    store, run_init=False)
                mode = "sequential-continue"
                resumed_from = ckpt.next_iter
            else:
                resume = None
                if ckpt is not None and ckpt.next_iter > 1:
                    post_init = store.copy()
                    runner = IterationRunner(
                        loop, funcs, FREE,
                        dispatcher_stmts=info.dispatcher_stmts)
                    runner.run_init(runner.make_ctx(post_init))
                    resume = _resume_state_from_checkpoint(
                        ckpt, post_init, info.dispatcher.var)
                    resumed_from = ckpt.next_iter
                mode = "pool-resume" if resume is not None else "pool-fresh"
                pool.submit(
                    info, store, funcs, scheme=scheme,
                    workers=spec.get("workers"),
                    chunk=spec.get("chunk"), u=spec.get("u"),
                    strip=spec.get("strip"),
                    speculative=speculative and resume is None,
                    test_arrays=tuple(spec.get("test_arrays", ())),
                    privatize=tuple(spec.get("privatize", ())),
                    deadline_s=spec.get("deadline_s"),
                    resume=resume, job_key=job.key)
        except (PoolError, IRError) as exc:
            journal.record_failed(job.key, f"replay: {exc}")
            continue
        wall = time.perf_counter() - t0
        # Pool submissions with job_key journal their own terminal
        # record; the sequential continuation journals here.
        if mode == "sequential-continue":
            journal.record_done(job.key, store)
        if trc.enabled:
            trc.count(_ev.M_POOL_RECOVERED)
            trc.count(_ev.M_JOURNAL_SALVAGED, resumed_from - 1)
            trc.event(_ev.EV_JOURNAL_REPLAY, 0, job=job.key,
                      mode=mode, resumed_from=resumed_from)
        outcomes.append(ReplayOutcome(
            key=job.key, loop=loop.name or "?", scheme=scheme,
            speculative=speculative, mode=mode,
            resumed_from=resumed_from, store=store, wall_s=wall))
    return outcomes
