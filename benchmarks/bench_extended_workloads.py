"""Extended-workload benches: the whole SPICE LOAD phase, the
multi-sweep MCSPARSE factorization, the alternating MA28 analyse
phase, and the machine-preset sensitivity sweep.

These go beyond the paper's single-loop measurements to the aggregate
numbers an adopter of the framework would actually observe.
"""

from benchmarks.conftest import run_once
from repro.runtime import PRESETS, Machine
from repro.workloads import (
    amdahl_application_speedup,
    load_phase_speedup,
    make_spice_load40,
    measure_speedup,
    run_factorization,
    run_ma28_analyze,
)


def test_spice_load_phase_and_amdahl(benchmark):
    """Capacitor + BJT + MOSFET loops plus the 40%-of-SPICE Amdahl
    projection the paper's remark implies."""
    def run():
        phase, per_loop = load_phase_speedup(Machine(8), n_total=900)
        return phase, per_loop

    phase, per_loop = run_once(benchmark, run)
    app = amdahl_application_speedup(phase)
    print("\nSPICE LOAD phase (all three device loops, General-3):")
    for kind, sp in per_loop.items():
        print(f"  {kind:10s}: {sp:.2f}x")
    print(f"  phase: {phase:.2f}x -> whole-SPICE (Amdahl, 40% in LOAD): "
          f"{app:.2f}x")
    benchmark.extra_info["phase"] = round(phase, 2)
    benchmark.extra_info["app"] = round(app, 3)
    assert per_loop["mosfet"] > per_loop["capacitor"]
    assert 1.2 < app < 1 / 0.6 + 1e-9


def test_mcsparse_factorization_aggregate(benchmark):
    def run():
        return {name: run_factorization(name, n_sweeps=10)
                for name in ("orsreg1", "saylr4")}

    results = run_once(benchmark, run)
    print("\nMulti-sweep MCSPARSE factorization (10 pivots):")
    for name, r in results.items():
        print(f"  {name:9s}: searched {r.candidates_searched:4d} "
              f"candidates, aggregate speedup {r.speedup:.2f}x")
        assert len(r.pivots) == 10
        assert len(set(r.pivots)) == 10
    benchmark.extra_info["speedups"] = {
        k: round(v.speedup, 2) for k, v in results.items()}
    assert results["orsreg1"].speedup > 1.5


def test_ma28_analyze_phase(benchmark):
    def run():
        return run_ma28_analyze("gematt11", n_steps=3)

    r = run_once(benchmark, run)
    print(f"\nMA28 analyse phase (3 steps x both scans): "
          f"speedup={r.speedup:.2f}x, pivots sequentially "
          f"consistent={r.consistent}")
    benchmark.extra_info["speedup"] = round(r.speedup, 2)
    assert r.consistent
    assert r.speedup > 2.5


def test_machine_preset_sensitivity(benchmark):
    """SPICE loop 40 / General-3 across the machine presets: hardware
    assists help, remote memory hurts the pointer chase the most."""
    def run():
        w = make_spice_load40(800)
        out = {}
        for name, factory in PRESETS.items():
            machine = factory(8) if name != "mpp" else factory(64)
            sp, _, ok = measure_speedup(
                w, w.method("General-3 (no locks)"), machine)
            out[name] = (machine.nprocs, sp, ok)
        return out

    rows = run_once(benchmark, run)
    print("\nSPICE loop 40 / General-3 across machine presets:")
    for name, (p, sp, ok) in rows.items():
        print(f"  {name:8s} (p={p:3d}): speedup={sp:6.2f} store_ok={ok}")
        assert ok
    benchmark.extra_info["speedups"] = {
        k: round(v[1], 2) for k, v in rows.items()}
    # NUMA memory costs hit the hop-bound walk hardest.
    assert rows["numa"][1] < rows["alliant"][1]
    # MPP scale: a general-recurrence loop is hop-bound, so speedup
    # saturates, but it must still beat the 8-processor runs.
    assert rows["mpp"][1] > rows["alliant"][1]
