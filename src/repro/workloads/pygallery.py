"""Real-Python paper workloads for the ``@parallelize`` decorator.

The Section-9 workloads exist twice in this repository: as hand-built
IR (:mod:`repro.workloads.zoo` and friends) and — here — as the plain
Python functions a paper reader would actually write.  Every function
in the gallery is in the frontend's liftable subset, so

    make_parallel(fn, backend=...)(*args)

must be **bit-identical** to calling ``fn`` directly, on every backend
(``tests/frontend/test_paper_workloads.py`` pins exactly that, across
``sim`` | ``threads`` | ``procs`` | ``pool``).

The shapes deliberately cover the paper's taxonomy end to end:

==================  ====================================================
workload             paper feature
==================  ====================================================
``jacobi``           RV convergence test on a reduction (``maxdelta >
                     EPS`` — the paper's canonical "WHILE loop that is
                     not a DO loop")
``list_chase``       general recurrence: linked-list pointer chase
                     (SPICE's device walk)
``ma28_pivot``       MA28-style sparse elimination step: indirect
                     permutation subscripts force the speculative /
                     PD-test path
``text_scan``        RV sentinel scan with an accumulator (string
                     search over a terminator-delimited buffer)
``running_sum``      associative accumulator feeding ``return`` —
                     provably-dependent remainder (DOACROSS on sim,
                     sequential demotion on real backends)
``bounded_double``   ``len()``-bound monotonic induction (DOALL row)
``scan_until``       ``while True`` + ``break`` (RV exit spelled the
                     way Python programmers actually spell it)
``fib_table``        tuple-assignment swap recurrence filling a table
==================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.structures.linkedlist import build_chain

__all__ = ["PyWorkload", "GALLERY", "gallery_by_name"]

EPS = 1e-3


# -- the functions (each one liftable, each one plain Python) ---------------

def jacobi(A, new, n, eps):
    """1-D Jacobi smoothing until the sweep's max delta converges."""
    maxdelta = eps + 1.0
    while maxdelta > eps:
        maxdelta = 0.0
        for i in range(1, n - 1):
            new[i] = 0.5 * (A[i - 1] + A[i + 1])
            delta = abs(new[i] - A[i])
            maxdelta = max(maxdelta, delta)
        for i in range(1, n - 1):
            A[i] = new[i]
    return maxdelta


def list_chase(lst, out, scale):
    """Linked-list walk writing a per-node value (SPICE device walk)."""
    p = lst.head
    while p != -1:
        out[p] = p * scale + 1
        p = lst.successor(p)


def ma28_pivot(A, B, piv, n):
    """MA28-style elimination step through a pivot permutation.

    The subscript ``piv[i]`` defeats static dependence analysis, so
    the planner speculates with the PD test — which passes, because
    ``piv`` is a permutation.
    """
    i = 0
    while i < n:
        A[piv[i]] = A[piv[i]] + B[i]
        i = i + 1


def text_scan(text, target):
    """Count occurrences of ``target`` up to the 0 terminator."""
    i = 0
    count = 0
    while text[i] != 0:
        if text[i] == target:
            count = count + 1
        i = i + 1
    return count


def running_sum(A, n):
    """Accumulate ``A[0:n]`` — the dependent-remainder reduction."""
    i = 0
    s = 0
    while i < n:
        s = s + A[i]
        i = i + 1
    return s


def bounded_double(A):
    """Double every element, bounded by ``len(A)`` at run time."""
    i = 0
    while i < len(A):
        A[i] = A[i] * 2
        i = i + 1


def scan_until(A, limit, c):
    """``while True`` + ``break``: add ``c`` to the first ``limit``."""
    i = 0
    while True:
        if i >= limit:
            break
        A[i] = A[i] + c
        i = i + 1
    return i


def fib_table(A, n, m):
    """Fill a table from a tuple-swap Fibonacci recurrence."""
    a = 0
    b = 1
    i = 0
    while i < n:
        A[i] = b % m
        a, b = b, a + b
        i = i + 1
    return b


# -- the gallery -------------------------------------------------------------

@dataclass(frozen=True)
class PyWorkload:
    """One gallery entry: a liftable function plus fresh-args factory."""

    name: str
    fn: Callable
    make_args: Callable[[], Tuple]   #: fresh, deterministic arguments
    feature: str                     #: the paper feature it exercises


def _jacobi_args() -> Tuple:
    rng = np.random.default_rng(11)
    n = 18
    A = rng.uniform(0.0, 8.0, size=n)
    return A, np.zeros(n), n, EPS


def _list_chase_args() -> Tuple:
    lst = build_chain(20, scramble=True, rng=np.random.default_rng(5))
    return lst, np.zeros(20, dtype=np.int64), 3


def _ma28_args() -> Tuple:
    rng = np.random.default_rng(17)
    n = 24
    A = rng.integers(0, 50, size=n).astype(np.int64)
    B = rng.integers(1, 9, size=n).astype(np.int64)
    piv = rng.permutation(n).astype(np.int64)
    return A, B, piv, n


def _text_scan_args() -> Tuple:
    rng = np.random.default_rng(23)
    text = rng.integers(1, 6, size=40).astype(np.int64)
    text[33] = 0   # terminator; slots past it stay readable
    return text, 4


def _running_sum_args() -> Tuple:
    rng = np.random.default_rng(29)
    return rng.integers(0, 40, size=26).astype(np.int64), 25


def _bounded_double_args() -> Tuple:
    return (np.arange(22, dtype=np.int64),)


def _scan_until_args() -> Tuple:
    rng = np.random.default_rng(31)
    return rng.integers(0, 30, size=24).astype(np.int64), 19, 7


def _fib_table_args() -> Tuple:
    return np.zeros(18, dtype=np.int64), 17, 97


GALLERY: Tuple[PyWorkload, ...] = (
    PyWorkload("jacobi", jacobi, _jacobi_args,
               "RV convergence test (maxdelta > EPS)"),
    PyWorkload("list_chase", list_chase, _list_chase_args,
               "general recurrence: linked-list chase"),
    PyWorkload("ma28_pivot", ma28_pivot, _ma28_args,
               "indirect permutation subscripts -> speculative + PD"),
    PyWorkload("text_scan", text_scan, _text_scan_args,
               "RV sentinel scan with an accumulator"),
    PyWorkload("running_sum", running_sum, _running_sum_args,
               "dependent-remainder reduction feeding return"),
    PyWorkload("bounded_double", bounded_double, _bounded_double_args,
               "len()-bound monotonic induction (DOALL)"),
    PyWorkload("scan_until", scan_until, _scan_until_args,
               "while True + break RV exit"),
    PyWorkload("fib_table", fib_table, _fib_table_args,
               "tuple-assignment swap recurrence"),
)


def gallery_by_name(name: str) -> PyWorkload:
    """Look up one gallery workload; raises ``KeyError`` when unknown."""
    for w in GALLERY:
        if w.name == name:
            return w
    raise KeyError(name)
