"""The pool chaos matrix: seeded faults against the *persistent* pool.

Where :func:`repro.runtime.supervisor.chaos_matrix` proves the
per-call backend recovers from injected faults, this matrix proves
the **service** does — and that the service *survives*: each cell
injects one fault kind into one scheme cell of the Table-1 zoo,
checks the final store bit-identically against an independent
sequential run, and then (the part a per-call matrix cannot test)
submits a clean probe job to the same pool to prove the generation
healed — dead workers reaped and respawned, no stale messages, no
leaked leases.

Fault kinds:

* ``crash`` — a worker ``os._exit``\\ s mid-job: the heartbeat
  monitor classifies the dead process, the attempt is cancelled, the
  dead slot is reaped/respawned (or the generation recycled), and the
  job retries on the next ladder rung;
* ``hang`` — a worker stalls past the liveness deadline: same
  recovery, released by the abort flag;
* ``lease-expiry`` — the job's arena lease is granted with TTL 0, so
  the sweeper revokes it at the first strip boundary
  (:class:`~repro.errors.LeaseExpired`): the strip's results are
  distrusted and the attempt retried under a fresh lease.

``repro chaos --pool`` renders the report; CI runs it in the
``pool-soak`` job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ir.interp import SequentialInterp
from repro.runtime.costs import FREE
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.supervisor import (
    CHAOS_SCHEMES,
    ChaosRow,
    ResiliencePolicy,
)
from repro.service.pool import PoolConfig, WorkerPool

__all__ = ["POOL_CHAOS_FAULTS", "PoolChaosReport", "pool_chaos_matrix"]

#: The pool-specific fault kinds (the remaining kinds of the per-call
#: matrix — barrier stalls, iteration faults — exercise machinery the
#: pool engine shares with the per-call backend, already covered by
#: ``repro chaos``).
POOL_CHAOS_FAULTS: Tuple[str, ...] = ("crash", "hang", "lease-expiry")


@dataclass(frozen=True)
class PoolChaosReport:
    """All pool chaos rows plus the service-health verdicts."""

    workers: int
    rows: Tuple[ChaosRow, ...]
    probe_ok: bool          #: clean post-matrix job succeeded
    pool_healthy: bool      #: full worker complement alive afterwards
    health: Dict           #: the final ``WorkerPool.health()`` report

    @property
    def all_recovered(self) -> bool:
        """Every fault recovered to a correct store *and* the pool
        itself came out of the matrix alive and serving."""
        return (all(r.store_ok for r in self.rows)
                and self.probe_ok and self.pool_healthy)

    def render(self) -> str:
        """Human-readable matrix (same shape as ``repro chaos``)."""
        head = (f"Pool chaos matrix @ {self.workers} workers "
                f"(persistent pool, seeded fault injection)")
        lines = [head, "=" * len(head),
                 f"{'loop':<20s} {'scheme':<22s} {'fault':<15s} "
                 f"{'recovered at':<16s} {'att':>3s} {'faults':>6s} "
                 f"{'wall_s':>7s} ok"]
        for r in self.rows:
            lines.append(
                f"{r.loop:<20s} {r.scheme:<22s} {r.fault:<15s} "
                f"{r.rung + '/' + r.mode:<16s} {r.attempts:3d} "
                f"{r.n_faults:6d} {r.wall_s:7.3f} {r.store_ok}")
        w = self.health.get("workers", {})
        lines.append("")
        lines.append(
            f"post-matrix probe job: {'ok' if self.probe_ok else 'FAILED'}"
            f"; pool: {w.get('alive', '?')}/{w.get('configured', '?')} "
            f"workers alive, {w.get('respawns', 0)} respawns, "
            f"{w.get('recycles', 0)} recycles")
        lines.append(
            "Every row must end store_ok=True and the pool must keep "
            "serving afterwards:\nan injected worker death, hang, or "
            "lease revocation may cost a retry or a\nladder descent, "
            "never a wrong answer and never the pool "
            "(docs/service.md).")
        return "\n".join(lines)


def pool_chaos_matrix(*, workers: int = 2,
                      kinds: Tuple[str, ...] = POOL_CHAOS_FAULTS,
                      deadline_s: float = 5.0) -> PoolChaosReport:
    """Run the seeded pool fault matrix over the Table-1 zoo.

    One :class:`~repro.service.pool.WorkerPool` serves the *entire*
    matrix — that is the point: every recovery must leave the pool
    able to run the next cell.  For each (scheme, fault kind) cell the
    fault is armed for attempt 0 only, so the ladder's first retry
    runs clean.
    """
    from repro.analysis.loopinfo import analyze_loop
    from repro.executors.speculative import default_test_arrays
    from repro.workloads.zoo import make_zoo

    zoo = {z.name: z for z in make_zoo(48)}
    policy = ResiliencePolicy(deadline_s=deadline_s,
                              poll_interval_s=0.01)
    pool = WorkerPool(PoolConfig(
        workers=workers,
        liveness_deadline_s=max(1.0, deadline_s / 2),
        job_deadline_s=4 * deadline_s)).start()
    rows: List[ChaosRow] = []
    try:
        for zoo_name, scheme, speculative in CHAOS_SCHEMES:
            zl = zoo[zoo_name]
            info = analyze_loop(zl.loop, zl.funcs)
            test_arrays = (default_test_arrays(info)
                           if speculative else ())
            ref = zl.make_store()
            SequentialInterp(zl.loop, zl.funcs, FREE).run(ref)
            for kind in kinds:
                # crash/hang fire deterministically at worker startup
                # (at_iter=0) on the last slot; lease-expiry is a
                # parent-side fault — worker placement is irrelevant.
                spec = FaultSpec(kind=kind, worker=workers - 1,
                                 at_iter=0, delay_s=2 * deadline_s)
                st = zl.make_store()
                t0 = time.perf_counter()
                result = pool.submit(
                    info, st, zl.funcs, scheme=scheme,
                    workers=workers, u=96, speculative=speculative,
                    test_arrays=test_arrays, policy=policy,
                    fault_plan=FaultPlan(specs=(spec,)))
                res = result.stats.get("resilience", {})
                rows.append(ChaosRow(
                    loop=zoo_name,
                    scheme=("speculative[" + scheme + "]"
                            if speculative else scheme),
                    fault=kind,
                    rung=res.get("rung", "sequential"),
                    mode=res.get("mode", "sequential"),
                    attempts=res.get("attempts", 0),
                    n_faults=len(res.get("faults", ())),
                    salvaged=result.stats.get("spec", {}).get(
                        "salvaged_iters", 0),
                    store_ok=st.equals(ref),
                    wall_s=time.perf_counter() - t0))
        # The service-level assertion: the pool that absorbed every
        # fault above still serves a clean job correctly.
        zl = zoo["general/RI"]
        info = analyze_loop(zl.loop, zl.funcs)
        ref = zl.make_store()
        SequentialInterp(zl.loop, zl.funcs, FREE).run(ref)
        st = zl.make_store()
        pool.submit(info, st, zl.funcs, scheme="general-3",
                    workers=workers, u=96, policy=policy)
        probe_ok = st.equals(ref)
        health = pool.health()
        pool_healthy = (health["workers"]["alive"]
                        == health["workers"]["configured"])
    finally:
        pool.close()
    return PoolChaosReport(
        workers=workers, rows=tuple(rows), probe_ok=probe_ok,
        pool_healthy=pool_healthy, health=health)
