"""Cross-iteration data dependence testing (flow / anti / output).

Section 5 of the paper: a loop's iterations may run in parallel,
unsynchronized, iff no flow, anti, or output dependence crosses
iterations.  For affine subscripts we decide this statically with the
classic GCD divisibility test plus a Banerjee-style bounds check; for
anything else the verdict is UNKNOWN, which routes the loop to the
run-time PD test (:mod:`repro.speculation.pdtest`).

Scalar dependences: a scalar that is read before being written within
an iteration (and is not the dispatcher) carries a cross-iteration
flow dependence unless it is loop-invariant; scalars always written
first are privatizable temporaries (``tmp`` in Figure 5(b)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from repro.analysis.defuse import AccessRef, block_effects, stmt_effects
from repro.analysis.recurrence import Recurrence
from repro.analysis.subscript import AffineSubscript, SubscriptInfo
from repro.ir.functions import FunctionTable
from repro.ir.nodes import Loop

__all__ = ["DepKind", "Dependence", "Verdict", "pair_dependence",
           "analyze_dependences", "DependenceReport"]


class DepKind(Enum):
    """The three dependence types of Section 5."""

    FLOW = "flow"      #: read-after-write
    ANTI = "anti"      #: write-after-read
    OUTPUT = "output"  #: write-after-write


class Verdict(Enum):
    """Overall remainder parallelism verdict."""

    INDEPENDENT = "independent"  #: provably no cross-iteration dependence
    DEPENDENT = "dependent"      #: provably has one
    UNKNOWN = "unknown"          #: needs the run-time PD test


@dataclass(frozen=True)
class Dependence:
    """One (possible) cross-iteration dependence between two accesses."""

    array: str
    kind: DepKind
    src: AccessRef
    dst: AccessRef
    proven: bool  #: True = definitely exists; False = merely possible


@dataclass(frozen=True)
class DependenceReport:
    """Result of :func:`analyze_dependences`."""

    verdict: Verdict
    dependences: Tuple[Dependence, ...]
    unknown_accesses: int

    @property
    def parallel(self) -> bool:
        """Provably fully parallel remainder."""
        return self.verdict is Verdict.INDEPENDENT


def _ranges_disjoint(s1: AffineSubscript, s2: AffineSubscript,
                     u: Optional[int]) -> bool:
    """Banerjee-style bounds check over iterations ``1..u``."""
    if u is None:
        return False
    lo1, hi1 = sorted((s1.a * 1 + s1.b, s1.a * u + s1.b))
    lo2, hi2 = sorted((s2.a * 1 + s2.b, s2.a * u + s2.b))
    return hi1 < lo2 or hi2 < lo1


def pair_dependence(s1: AffineSubscript, s2: AffineSubscript,
                    u: Optional[int] = None
                    ) -> Tuple[Optional[bool], Optional[int]]:
    """Can ``a1*k1+b1 == a2*k2+b2`` hold for iterations ``k1 != k2``?

    Returns ``(exists, shift)``: ``exists`` is ``True`` (definitely),
    ``False`` (provably never), or ``None`` (possible — conservatively
    treated as dependent).  For equal coefficients, ``shift = k1 - k2``
    for colliding pairs — its sign orients the dependence (positive:
    access 2 happens in the *earlier* iteration).

    ``u`` is an upper bound on the iteration count when known (for
    WHILE loops it usually is not; the test then ignores bounds).
    """
    a1, b1, a2, b2 = s1.a, s1.b, s2.a, s2.b
    if a1 == 0 and a2 == 0:
        return (b1 == b2), None  # same fixed cell touched every iteration
    if a1 == a2:
        d = b2 - b1
        if d == 0:
            return False, 0  # same cell only within one iteration
        if d % a1 == 0:
            k_shift = d // a1
            if u is None or abs(k_shift) < u:
                return True, k_shift
            return False, None
        return False, None
    g = math.gcd(a1, a2)
    if (b2 - b1) % g != 0:
        return False, None  # GCD test: no integer solutions at all
    if _ranges_disjoint(s1, s2, u):
        return False, None
    return None, None  # solutions may exist; be conservative


def _dep_kind(first_write: bool, second_write: bool) -> DepKind:
    """Dependence kind given which of (earlier, later) access writes."""
    if first_write and second_write:
        return DepKind.OUTPUT
    if first_write:
        return DepKind.FLOW
    return DepKind.ANTI


def analyze_dependences(
    loop: Loop,
    dispatcher: Optional[Recurrence],
    subs: Sequence[SubscriptInfo],
    funcs: Optional[FunctionTable] = None,
    *,
    remainder_stmts: Optional[Sequence[int]] = None,
    max_iters: Optional[int] = None,
) -> DependenceReport:
    """Decide whether the remainder's iterations are independent.

    Combines (a) the affine array access tests over every pair of
    accesses to the same array where at least one is a write, and (b)
    the scalar read-before-write check described in the module
    docstring.  Any unknown subscript on an array that is written
    yields an UNKNOWN verdict (paper Section 5: speculate + PD test).
    """
    deps: List[Dependence] = []
    unknown = 0
    possibly_dependent = False

    # Opaque intrinsics with declared array writes access shared memory
    # with unknown indices: the verdict cannot be better than UNKNOWN.
    body_stmts = (loop.body if remainder_stmts is None
                  else [loop.body[i] for i in remainder_stmts])
    opaque_eff = block_effects(body_stmts, funcs)
    if opaque_eff.opaque and opaque_eff.array_writes:
        unknown += 1

    written_arrays = {s.access.array for s in subs if s.access.is_write} \
        | (opaque_eff.array_writes if opaque_eff.opaque else frozenset())
    for s1 in subs:
        if s1.unknown and s1.access.array in written_arrays:
            unknown += 1
    for i, s1 in enumerate(subs):
        for s2 in subs[i:]:
            if s1.access.array != s2.access.array:
                continue
            if not (s1.access.is_write or s2.access.is_write):
                continue
            if s1.unknown or s2.unknown:
                continue
            if s1.disp_injective and s2.disp_injective:
                # Both index by the same never-repeating dispatcher
                # value: they can only meet within one iteration.
                continue
            if s1.affine is None or s2.affine is None:
                # One injective-dispatcher, one affine-in-k: no common
                # coordinate system; stay conservative.
                deps.append(Dependence(
                    s1.access.array,
                    _dep_kind(s1.access.is_write, s2.access.is_write),
                    s1.access, s2.access, proven=False))
                possibly_dependent = True
                continue
            res, shift = pair_dependence(s1.affine, s2.affine, max_iters)
            if res is False:
                continue
            # Orient by shift sign when known: shift > 0 means s2's
            # colliding access occurs in the earlier iteration.
            if shift is not None and shift > 0:
                first, second = s2.access, s1.access
            else:
                first, second = s1.access, s2.access
            deps.append(Dependence(
                s1.access.array,
                _dep_kind(first.is_write, second.is_write),
                first, second, proven=bool(res)))
            possibly_dependent = True

    # Scalar cross-iteration flow dependences (remainder scalars only).
    body = (loop.body if remainder_stmts is None
            else [loop.body[i] for i in remainder_stmts])
    disp_vars = {dispatcher.var} if dispatcher else set()
    written_before: set = set()
    scalar_dep = False
    body_writes = block_effects(body, funcs).scalar_writes
    for s in body:
        eff = stmt_effects(s, funcs)
        carried = (eff.scalar_reads - written_before - disp_vars) & body_writes
        if carried:
            scalar_dep = True
        written_before |= eff.scalar_writes

    if scalar_dep:
        possibly_dependent = True

    if unknown:
        verdict = Verdict.UNKNOWN
    elif possibly_dependent:
        verdict = Verdict.DEPENDENT
    else:
        verdict = Verdict.INDEPENDENT
    return DependenceReport(verdict, tuple(deps), unknown)
