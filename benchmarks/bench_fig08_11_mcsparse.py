"""Figures 8-11: MCSPARSE DFACT loop 500 (WHILE-DOANY), four inputs.

Paper speedups at 8 processors: gematt11 7.0, gematt12 6.8,
orsreg1 4.8, saylr4 5.7 — "the available parallelism, and therefore
our obtained speedup, is strongly dependent on the data input".
"""

import pytest

from benchmarks.conftest import fmt_curve, run_once
from repro.experiments import figure_8_11
from repro.runtime import Machine
from repro.workloads import make_mcsparse_dfact500, measure_speedup

PAPER = {"gematt11": 7.0, "gematt12": 6.8, "orsreg1": 4.8, "saylr4": 5.7}


def test_figs_8_11_curves(benchmark):
    figs = run_once(benchmark, figure_8_11)
    at8 = {}
    for name, fig in figs.items():
        print(f"\nFigure {fig.figure} — {fig.title}")
        for label, curve in fig.series.items():
            print(f"  {label:14s} {fmt_curve(curve)}   "
                  f"(paper@8p: {fig.paper_at_8[label]})")
            at8[name] = curve[8]
    benchmark.extra_info["at8"] = {k: round(v, 2) for k, v in at8.items()}
    # Input ordering matches the paper.
    assert at8["gematt11"] >= at8["gematt12"] >= at8["saylr4"] \
        >= at8["orsreg1"]
    for name, paper in PAPER.items():
        assert abs(at8[name] - paper) / paper < 0.30, (name, at8[name])


@pytest.mark.parametrize("name", list(PAPER))
def test_doany_needs_no_undo(benchmark, name):
    """The DOANY contract: zero checkpoint/stamp words per input."""
    w = make_mcsparse_dfact500(name)
    _, res, _ = run_once(benchmark, lambda: measure_speedup(
        w, w.methods[0], Machine(8)))
    assert res.stats["checkpoint_words"] == 0
    assert res.stats["stamped_words"] == 0
