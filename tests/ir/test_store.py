"""Unit tests for the Store: bindings, copies, equality, diffs."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import Store
from repro.structures import build_chain


class TestBinding:
    def test_scalars_arrays_lists(self):
        st = Store({"x": 3, "f": 2.5, "b": True,
                    "A": np.arange(4), "L": build_chain(3)})
        assert st["x"] == 3
        assert st.scalars() == ("x", "f", "b")
        assert st.arrays() == ("A",)
        assert st.lists() == ("L",)

    def test_list_coerced_to_ndarray(self):
        st = Store({"A": [1, 2, 3]})
        assert isinstance(st["A"], np.ndarray)

    def test_unknown_name_raises(self):
        with pytest.raises(IRError):
            Store()["nope"]

    def test_bad_value_rejected(self):
        with pytest.raises(IRError):
            Store({"x": object()})

    def test_contains_len_iter(self):
        st = Store({"x": 1, "y": 2})
        assert "x" in st and "z" not in st
        assert len(st) == 2
        assert set(iter(st)) == {"x", "y"}


class TestCopyRestore:
    def test_copy_is_deep_for_arrays(self):
        st = Store({"A": np.zeros(3)})
        cp = st.copy()
        st["A"][0] = 9
        assert cp["A"][0] == 0

    def test_restore_from(self):
        st = Store({"A": np.zeros(3), "x": 1})
        cp = st.copy()
        st["A"][1] = 5
        st["x"] = 99
        st.restore_from(cp)
        assert st["x"] == 1 and st["A"][1] == 0

    def test_copy_preserves_lists(self):
        st = Store({"L": build_chain(5)})
        cp = st.copy()
        assert cp["L"] == st["L"]
        assert cp["L"] is not st["L"]


class TestEquality:
    def test_equal_stores(self):
        a = Store({"A": np.arange(3), "x": 1})
        b = Store({"A": np.arange(3), "x": 1})
        assert a.equals(b)

    def test_differing_array(self):
        a = Store({"A": np.arange(3)})
        b = Store({"A": np.arange(3) + 1})
        assert not a.equals(b)
        assert "A" in a.diff(b)

    def test_differing_names(self):
        assert not Store({"x": 1}).equals(Store({"y": 1}))

    def test_tolerant_float_compare(self):
        a = Store({"A": np.array([1.0])})
        b = Store({"A": np.array([1.0 + 1e-12])})
        assert not a.equals(b)
        assert a.equals(b, rtol=1e-9)

    def test_shape_mismatch(self):
        a = Store({"A": np.zeros(3)})
        b = Store({"A": np.zeros(4)})
        assert not a.equals(b)
        assert "shape" in a.diff(b)["A"]

    def test_diff_reports_missing(self):
        a = Store({"x": 1})
        b = Store({})
        assert "missing" in a.diff(b)["x"]
