"""Hash-table shadow arrays for sparse access patterns.

Section 4 of the paper: "If the access pattern of any array in the
loop is known to be sparse, then the memory requirements could be
reduced by using hash tables ... since only the elements of the array
accessed in the loop would be inserted into the hash table."

:class:`HashShadowArrays` is a drop-in alternative to
:class:`~repro.speculation.pdtest.ShadowArrays` that allocates shadow
state per *touched element* instead of per array element.  Its
:meth:`densify` view lets :func:`~repro.speculation.pdtest.analyze_pd`
run unchanged, and ``words`` reports the (much smaller) memory
actually used — the quantity the Section 8 strategies manage.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.ir.interp import EvalContext, MemHooks
from repro.ir.store import Store
from repro.speculation.pdtest import INF, ShadowArrays

__all__ = ["HashShadowArrays"]


class HashShadowArrays(MemHooks):
    """Sparse (dict-backed) PD-test shadow state.

    Tracks, per touched ``(array, element)``, the two smallest distinct
    writing iterations and exposed-read iterations — the same four
    stamps as the dense shadow, in ``O(touched)`` memory.
    """

    def __init__(self, store: Store, arrays: Iterable[str]) -> None:
        self._store = store
        self._names = frozenset(arrays)
        # (array, idx) -> [w1, w2, r1, r2]
        self._stamps: Dict[Tuple[str, int], list] = {}
        self._iter_written: Set[Tuple[str, int]] = set()
        self.accesses = 0

    @property
    def arrays(self) -> Tuple[str, ...]:
        """Names of the arrays under test."""
        return tuple(sorted(self._names))

    @property
    def words(self) -> int:
        """Shadow words actually allocated (4 per touched element)."""
        return 4 * len(self._stamps)

    def begin_iteration(self, iteration: int) -> None:
        """Reset per-iteration exposure state."""
        self._iter_written.clear()

    def _slot(self, array: str, idx: int) -> list:
        key = (array, idx)
        slot = self._stamps.get(key)
        if slot is None:
            slot = [INF, INF, INF, INF]
            self._stamps[key] = slot
        return slot

    # -- MemHooks ----------------------------------------------------------
    def on_read(self, ctx: EvalContext, array: str, idx: int) -> None:
        if array not in self._names:
            return
        self.accesses += 1
        ctx.cycles += ctx.cost.shadow_mark
        if (array, idx) in self._iter_written:
            return
        slot = self._slot(array, idx)
        k = ctx.iteration
        if k < slot[2]:
            if slot[2] != INF and slot[2] != k:
                slot[3] = min(slot[3], slot[2])
            slot[2] = k
        elif k != slot[2] and k < slot[3]:
            slot[3] = k

    def on_write(self, ctx: EvalContext, array: str, idx: int,
                 old: object, new: object) -> None:
        if array not in self._names:
            return
        self.accesses += 1
        ctx.cycles += ctx.cost.shadow_mark
        self._iter_written.add((array, idx))
        slot = self._slot(array, idx)
        k = ctx.iteration
        if k < slot[0]:
            if slot[0] != INF and slot[0] != k:
                slot[1] = min(slot[1], slot[0])
            slot[0] = k
        elif k != slot[0] and k < slot[1]:
            slot[1] = k

    # -- adapter ---------------------------------------------------------------
    def densify(self) -> ShadowArrays:
        """Materialize a dense :class:`ShadowArrays` view for analysis.

        Only used at post-analysis time; the dense arrays are sized
        like the originals but the run itself used sparse memory.
        """
        dense = ShadowArrays(self._store, self._names)
        dense.accesses = self.accesses
        for (array, idx), (w1, w2, r1, r2) in self._stamps.items():
            dense.w1[array][idx] = w1
            dense.w2[array][idx] = w2
            dense.r1[array][idx] = r1
            dense.r2[array][idx] = r2
        return dense
