"""Benchmark-suite configuration.

Every bench regenerates one table or figure of the paper on the
virtual-time machine.  The pytest-benchmark fixture times the full
experiment once (``pedantic`` with a single round — these are
experiment reproductions, not micro-benchmarks), and the reproduced
rows/series are attached to ``extra_info`` and printed (visible with
``pytest benchmarks/ --benchmark-only -s``).
"""

import pytest


def run_once(benchmark, fn):
    """Time ``fn`` exactly once and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def fmt_curve(curve):
    return "  ".join(f"p{p}={v:.2f}" for p, v in sorted(curve.items()))


@pytest.fixture
def once(benchmark):
    def _run(fn):
        return run_once(benchmark, fn)
    return _run
