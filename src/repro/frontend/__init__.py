"""Frontends: lift Python while loops or Fortran-style text into the IR.

The package also hosts the end-to-end ``@parallelize`` decorator path
(:mod:`repro.frontend.decorator`) and its argument capture/write-back
layer (:mod:`repro.frontend.argbind`); see ``docs/frontend.md``.
"""

from repro.frontend.argbind import BoundCall, bind_call, write_back
from repro.frontend.decorator import make_parallel
from repro.frontend.fortranish import lift_fortranish
from repro.frontend.pyfront import LiftedLoop, lift_function, lift_source

__all__ = [
    "LiftedLoop", "lift_function", "lift_source", "lift_fortranish",
    "BoundCall", "bind_call", "write_back", "make_parallel",
]
