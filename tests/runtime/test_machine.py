"""Unit tests for the virtual-time multiprocessor."""

import pytest

from repro.errors import ExecutionError
from repro.runtime import (
    ALLIANT_FX80,
    FREE,
    QUIT,
    STOP_PROC,
    UNIT,
    CostModel,
    Machine,
    ProcCtx,
    SimLock,
)


class TestCostModel:
    def test_binop_costs(self):
        cm = ALLIANT_FX80
        assert cm.binop_cost("+") == cm.alu
        assert cm.binop_cost("*") == cm.mul
        assert cm.binop_cost("/") == cm.div
        assert cm.binop_cost("**") == cm.powc
        assert cm.binop_cost("<") == cm.alu

    def test_barrier_scales_with_p(self):
        cm = ALLIANT_FX80
        assert cm.barrier(8) > cm.barrier(2)

    def test_scaled_override(self):
        cm = ALLIANT_FX80.scaled(hop=99)
        assert cm.hop == 99
        assert cm.alu == ALLIANT_FX80.alu

    def test_free_model_is_zero(self):
        assert FREE.binop_cost("*") == 0
        assert FREE.barrier(8) == 0


class TestCollectiveFormulas:
    def test_parallel_work_time_ceil(self):
        m = Machine(4)
        assert m.parallel_work_time(100) == 25
        assert m.parallel_work_time(101) == 26

    def test_reduction_time_scales(self):
        m = Machine(8)
        assert m.reduction_time(1000) > m.reduction_time(10)

    def test_prefix_time_log_term(self):
        # With n fixed, more processors should not increase time much
        # beyond the log/barrier terms.
        t2 = Machine(2).prefix_time(1000, op_cost=3)
        t8 = Machine(8).prefix_time(1000, op_cost=3)
        assert t8 < t2

    def test_needs_processor(self):
        with pytest.raises(ExecutionError):
            Machine(0)


class TestDynamicDoall:
    def test_perfect_scaling_uniform_items(self):
        work = 1000
        m1 = Machine(1)
        m8 = Machine(8)
        r1 = m1.run_doall_dynamic(64, lambda ctx, i: ctx.charge(work))
        r8 = m8.run_doall_dynamic(64, lambda ctx, i: ctx.charge(work))
        assert r1.makespan / r8.makespan == pytest.approx(8, rel=0.1)

    def test_items_in_index_order(self):
        m = Machine(3)
        r = m.run_doall_dynamic(10, lambda ctx, i: ctx.charge(10))
        assert r.executed_indices == list(range(1, 11))
        starts = [it.start for it in r.items]
        assert starts == sorted(starts)

    def test_quit_skips_later_items(self):
        m = Machine(4)

        def body(ctx, i):
            ctx.charge(50)
            if i == 5:
                return QUIT
        r = m.run_doall_dynamic(40, body)
        assert r.quit_index == 5
        assert r.skipped
        assert max(r.executed_indices) < 40
        # in-flight items (begun before the quit) still completed
        assert all(i <= 5 or it.start < r.items[4].end
                   for it in r.items for i in [it.index])

    def test_quit_smallest_governs(self):
        m = Machine(4)

        def body(ctx, i):
            ctx.charge(50)
            if i in (3, 6):
                return QUIT
        r = m.run_doall_dynamic(40, body)
        assert r.quit_index == 3

    def test_quit_unaware_runs_all(self):
        m = Machine(4)
        r = m.run_doall_dynamic(
            20, lambda ctx, i: QUIT if i == 2 else ctx.charge(10),
            quit_aware=False)
        assert len(r.items) == 20

    def test_first_index_offset(self):
        m = Machine(2)
        r = m.run_doall_dynamic(5, lambda ctx, i: ctx.charge(1),
                                first_index=11)
        assert r.executed_indices == [11, 12, 13, 14, 15]

    def test_span_profile_bounded_by_inflight(self):
        m = Machine(4)
        r = m.run_doall_dynamic(64, lambda ctx, i: ctx.charge(100))
        assert 0 < r.span_profile() <= 2 * 4


class TestStaticDoall:
    def test_mod_p_assignment(self):
        m = Machine(4)
        r = m.run_doall_static(12, lambda ctx, i: ctx.charge(10))
        by_proc = {}
        for it in r.items:
            by_proc.setdefault(it.pid, []).append(it.index)
        for pid, idxs in by_proc.items():
            assert all(idx % 4 == (pid + 1) % 4 for idx in idxs)

    def test_stop_proc_ends_stream(self):
        m = Machine(2)

        def body(ctx, i):
            ctx.charge(5)
            if i >= 5:
                return STOP_PROC
        r = m.run_doall_static(20, body)
        assert max(r.executed_indices) <= 6

    def test_bodies_execute_in_index_order(self):
        """Store semantics contract: even though the static schedule
        keeps a wide span in flight in virtual time, the machine must
        apply body side effects in global index order — otherwise a
        remainder with a cross-iteration flow dependence diverges from
        the sequential reference (corpus:
        wild-pr5-static-order-flowdep)."""
        m = Machine(4)
        calls = []

        def body(ctx, i):
            calls.append(i)
            # wildly uneven durations: pop-by-virtual-time order would
            # interleave the streams out of index order here
            ctx.charge(10 + (i % 5) * 300)

        m.run_doall_static(32, body)
        assert calls == sorted(calls)

    def test_static_timing_models_private_streams(self):
        """Index-order execution must not change the timing model:
        each item starts when its own processor's previous item ended
        plus the static fetch charge."""
        m = Machine(3)
        r = m.run_doall_static(
            12, lambda ctx, i: ctx.charge(10 + (i % 4) * 70))
        by_proc = {}
        for it in sorted(r.items, key=lambda it: it.index):
            prev = by_proc.get(it.pid)
            if prev is not None:
                assert it.start == prev.end + m.cost.sched_static
            by_proc[it.pid] = it

    def test_static_span_wider_than_dynamic(self):
        """Section 3.3: static assignment keeps a wider iteration span
        in flight than dynamic self-scheduling."""
        m = Machine(8)
        # variable-duration items widen the static span
        dyn = m.run_doall_dynamic(
            120, lambda ctx, i: ctx.charge(50 + (i % 7) * 40))
        sta = m.run_doall_static(
            120, lambda ctx, i: ctx.charge(50 + (i % 7) * 40))
        assert sta.span_profile() >= dyn.span_profile()


class TestLocks:
    def test_contention_serializes(self):
        m = Machine(8)
        lock = SimLock()

        def body(ctx, i):
            ctx.acquire(lock)
            ctx.charge(100)
            ctx.release(lock)
        r = m.run_doall_dynamic(16, body)
        # 16 critical sections of >=100 cycles must serialize.
        assert r.makespan >= 16 * 100
        assert lock.acquisitions == 16
        assert lock.contended > 0

    def test_uncontended_lock_cheap(self):
        m = Machine(1)
        lock = SimLock()

        def body(ctx, i):
            ctx.acquire(lock)
            ctx.release(lock)
        r = m.run_doall_dynamic(4, body)
        assert lock.contended == 0
