"""Whole-pool durability: SIGKILL the service, recover every job.

This is the acceptance drill for the write-ahead journal
(docs/service.md, "Durability & failover"), exercised through the
real thing — a victim *process* whose entire process group is
SIGKILLed mid-strip with four in-flight jobs (one speculative and
running, three queued in admission), not a simulated truncation:

* every in-flight job replays to a final store bit-identical to a
  fresh sequential oracle;
* the speculative job resumes from a journaled committed prefix
  (``resumed_from > 1``), not iteration 0;
* client resubmission of every key dedups against the journal with
  zero duplicate executions;
* the crashed generation's shm segments are swept, and none survive
  the recovery.

The torn-journal scenario severs the log tail the way a crash
mid-append does and proves the scan skips (and counts) the damage
while replay still completes.
"""

from __future__ import annotations

from repro.service.chaos import (
    _KILL_JOBS,
    kill_pool_chaos,
    torn_journal_chaos,
)


def test_sigkill_whole_pool_then_resume_recovers_everything():
    report = kill_pool_chaos(workers=2)
    assert report.in_flight >= _KILL_JOBS
    assert len(report.rows) == report.in_flight
    for row in report.rows:
        assert row.store_ok, (row.key, row.mode)
    # The speculative job resumed from its committed prefix.
    spec_rows = [r for r in report.rows if r.speculative]
    assert spec_rows and any(r.resumed_from > 1 for r in spec_rows)
    assert all(r.mode == "sequential-continue" for r in spec_rows)
    # Resubmission: all dedup, zero duplicate executions.
    assert report.dedup_ok
    assert report.duplicate_executions == 0
    # Nothing leaked: crashed generation swept, recovery cleaned up.
    assert report.leaked_segments == 0
    assert report.all_recovered
    assert "SIGKILL" in report.render()


def test_torn_journal_records_are_tolerated():
    assert torn_journal_chaos(workers=2)
