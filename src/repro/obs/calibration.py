"""Cost-model calibration: predicted vs measured, per run.

The Section 7 model earns its keep only if its predictions track the
virtual machine's measurements.  This module runs a workload twice —
once through the planner's *predictive* path (profile + ``predict``)
and once for real — and reports the relative error of the predicted
parallel time and attainable speedup.

Since the real backends landed there is a second axis to calibrate:
does the virtual-time model's *attainable speedup* ``Sp_at`` track the
**wall-clock** speedup measured on real cores?
:func:`compare_backends` runs a loop sequentially and on each real
backend, checks the final stores match, and reports measured wall
speedup next to the model's prediction (``repro bench
--compare-backends``; CI uploads the rendered table as an artifact).

Heavy imports (planner, executors, workloads) happen inside functions:
the runtime and executor layers import :mod:`repro.obs.tracer`, which
initializes this package, so module-level imports here would cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["CalibrationRow", "CalibrationReport", "calibrate_workload",
           "run_calibration", "DEFAULT_CALIBRATION_WORKLOADS",
           "BackendRow", "BackendComparison", "compare_backends"]

#: Workload specs the calibration report covers by default (the two
#: the paper's Figures 6 and 7 revolve around).
DEFAULT_CALIBRATION_WORKLOADS: Tuple[str, ...] = ("spice", "track")


@dataclass(frozen=True)
class CalibrationRow:
    """One workload's predicted-vs-measured comparison.

    Times are virtual cycles.  ``predicted_*`` comes from the planner's
    :class:`~repro.planner.costmodel.Prediction` (or the trivial
    sequential prediction when the planner kept the loop sequential);
    ``measured_*`` from actually executing the plan.
    """

    workload: str
    scheme: str
    procs: int
    t_seq: int
    predicted_t_par: float
    measured_t_par: int
    predicted_speedup: float
    measured_speedup: float

    @property
    def t_par_rel_error(self) -> float:
        """``(predicted - measured) / measured`` for the parallel time."""
        if not self.measured_t_par:
            return 0.0
        return (self.predicted_t_par - self.measured_t_par) \
            / self.measured_t_par

    @property
    def speedup_rel_error(self) -> float:
        """``(predicted - measured) / measured`` for the speedup."""
        if not self.measured_speedup:
            return 0.0
        return (self.predicted_speedup - self.measured_speedup) \
            / self.measured_speedup


@dataclass(frozen=True)
class CalibrationReport:
    """All rows plus aggregate error statistics."""

    procs: int
    rows: Tuple[CalibrationRow, ...]

    @property
    def mean_abs_rel_error(self) -> float:
        """Mean |relative error| of the predicted parallel time."""
        if not self.rows:
            return 0.0
        return sum(abs(r.t_par_rel_error) for r in self.rows) \
            / len(self.rows)

    @property
    def max_abs_rel_error(self) -> float:
        if not self.rows:
            return 0.0
        return max(abs(r.t_par_rel_error) for r in self.rows)

    def render(self) -> str:
        """Human-readable table (what ``repro report --calibration``
        prints)."""
        head = (f"Cost-model calibration @ {self.procs} processors "
                f"(virtual cycles)")
        lines = [head, "=" * len(head),
                 f"{'workload':<18s} {'scheme':<26s} {'T_par pred':>12s} "
                 f"{'T_par meas':>12s} {'err%':>7s} {'Sp pred':>8s} "
                 f"{'Sp meas':>8s}"]
        for r in self.rows:
            lines.append(
                f"{r.workload:<18s} {r.scheme:<26s} "
                f"{r.predicted_t_par:12.0f} {r.measured_t_par:12d} "
                f"{100 * r.t_par_rel_error:+6.1f}% "
                f"{r.predicted_speedup:8.2f} {r.measured_speedup:8.2f}")
        lines.append("")
        lines.append(f"mean |T_par error| = "
                     f"{100 * self.mean_abs_rel_error:.1f}%   "
                     f"max |T_par error| = "
                     f"{100 * self.max_abs_rel_error:.1f}%")
        return "\n".join(lines)


def calibrate_workload(workload, machine) -> CalibrationRow:
    """Predict, then measure, one workload on ``machine``.

    The planner profiles a fresh sample store (its normal predictive
    path); the measurement executes the chosen plan on another fresh
    store.  When the plan is sequential the prediction degenerates to
    ``T_seq`` (trivially exact) — the row is still reported so the
    report shows *why* nothing was parallelized.
    """
    from repro.errors import PlanError
    from repro.executors.sequential import run_sequential
    from repro.planner.select import execute_plan, plan_loop

    plan = plan_loop(workload.loop, machine, workload.funcs,
                     sample_store=workload.make_store())

    seq_store = workload.make_store()
    t_seq = run_sequential(workload.loop, seq_store, machine,
                           workload.funcs).t_par

    run_store = workload.make_store()
    try:
        result = execute_plan(plan, run_store, machine, workload.funcs)
    except PlanError as exc:
        if "upper bound" not in str(exc):
            raise
        result = execute_plan(plan, run_store, machine, workload.funcs,
                              strip=max(64, 8 * machine.nprocs))

    pred = plan.prediction
    if plan.scheme == "sequential" or pred is None:
        predicted_t_par: float = float(t_seq)
        predicted_sp = 1.0
    else:
        predicted_t_par = pred.t_ipar + pred.t_b + pred.t_d + pred.t_a
        predicted_sp = pred.sp_at

    measured_sp = result.speedup(t_seq)
    return CalibrationRow(
        workload=workload.name,
        scheme=result.scheme,
        procs=machine.nprocs,
        t_seq=t_seq,
        predicted_t_par=predicted_t_par,
        measured_t_par=result.t_par,
        predicted_speedup=predicted_sp,
        measured_speedup=measured_sp,
    )


def run_calibration(specs: Optional[Sequence[str]] = None,
                    *, procs: int = 8) -> CalibrationReport:
    """Calibrate the cost model across a set of workload specs.

    ``specs`` uses the CLI's workload syntax ("spice", "track",
    "mcsparse:<input>", "ma28:<input>:<loop>"); defaults to
    :data:`DEFAULT_CALIBRATION_WORKLOADS`.
    """
    from repro.obs import names
    from repro.obs.tracer import get_tracer
    from repro.runtime.machine import Machine
    from repro.workloads import workload_from_spec

    machine = Machine(procs)
    rows: List[CalibrationRow] = []
    for spec in (specs or DEFAULT_CALIBRATION_WORKLOADS):
        row = calibrate_workload(workload_from_spec(spec), machine)
        rows.append(row)
        trc = get_tracer()
        if trc.enabled:
            trc.event(names.EV_CALIBRATION, row.measured_t_par,
                      workload=row.workload, scheme=row.scheme,
                      predicted_t_par=row.predicted_t_par,
                      measured_t_par=row.measured_t_par,
                      rel_error=row.t_par_rel_error)
    return CalibrationReport(procs=procs, rows=tuple(rows))


# ---------------------------------------------------------------------------
# Real-backend wall-clock comparison (PR 2)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BackendRow:
    """One (loop, backend) wall-clock measurement.

    ``wall_seq_s``/``wall_par_s`` are seconds; ``predicted_speedup`` is
    the virtual-time model's ``Sp_at`` for the planned scheme (or 1.0
    for a sequential plan); ``store_ok`` certifies the backend's final
    store matched the sequential reference bit for bit.  ``faults``
    counts system faults survived by the run (non-zero only under the
    supervisor, e.g. ``repro bench --compare-backends`` with fault
    injection) and ``rung`` names the degradation-ladder stage the run
    settled on (``-`` for an unsupervised run, ``initial`` for a
    supervised run that needed no recovery).  ``spurious`` counts
    contained iteration faults the overshoot quarantine discarded and
    ``salvaged`` the committed-prefix iterations a partial restart did
    not have to re-execute (both from ``stats["spec"]``).
    """

    loop: str
    backend: str
    scheme: str
    workers: int
    wall_seq_s: float
    wall_par_s: float
    measured_speedup: float
    predicted_speedup: float
    store_ok: bool
    faults: int = 0
    rung: str = "-"
    spurious: int = 0
    salvaged: int = 0
    #: Section-7 predicted overhead terms (virtual cycles) for the
    #: planned scheme, straight from the planner's ``Prediction``.
    t_b_pred: float = 0.0
    t_d_pred: float = 0.0
    t_a_pred: float = 0.0
    #: Measured wall-clock phase totals (``stats["phases"]``), as a
    #: sorted tuple of ``(phase, seconds)`` pairs to stay hashable.
    phases: Tuple[Tuple[str, float], ...] = ()

    @property
    def sp_rel_error(self) -> float:
        """``(predicted - measured) / measured`` wall-speedup error."""
        if not self.measured_speedup:
            return 0.0
        return (self.predicted_speedup - self.measured_speedup) \
            / self.measured_speedup


@dataclass(frozen=True)
class BackendComparison:
    """All backend rows plus the rendering used by ``repro bench``."""

    workers: int
    rows: Tuple[BackendRow, ...]

    def best(self, loop: str) -> Optional[BackendRow]:
        """The fastest-backend row for one loop (None if absent)."""
        rows = [r for r in self.rows if r.loop == loop]
        return max(rows, key=lambda r: r.measured_speedup) if rows \
            else None

    def render(self) -> str:
        """Human-readable predicted-vs-measured wall-clock table."""
        head = (f"Backend comparison @ {self.workers} workers "
                f"(wall-clock seconds)")
        lines = [head, "=" * len(head),
                 f"{'loop':<18s} {'backend':<8s} {'scheme':<22s} "
                 f"{'T_seq':>8s} {'T_par':>8s} {'Sp meas':>8s} "
                 f"{'Sp pred':>8s} {'faults':>6s} {'spur':>4s} "
                 f"{'salv':>5s} {'rung':<12s} ok"]
        for r in self.rows:
            lines.append(
                f"{r.loop:<18s} {r.backend:<8s} {r.scheme:<22s} "
                f"{r.wall_seq_s:8.3f} {r.wall_par_s:8.3f} "
                f"{r.measured_speedup:7.2f}x {r.predicted_speedup:7.2f}x "
                f"{r.faults:6d} {r.spurious:4d} {r.salvaged:5d} "
                f"{r.rung:<12s} {r.store_ok}")
        lines.append("")
        lines.append(
            "Sp pred is the Section-7 model's attainable speedup on the "
            "virtual machine;\nSp meas is real wall clock.  'threads' is "
            "GIL-bound by design — only 'procs'\ncan exceed 1x on "
            "CPU-heavy remainders (see docs/backends.md).")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """Machine-readable form (``repro bench --format json``).

        Every timing field is validated finite — and, for wall times,
        positive — before it is emitted, so a clock bug can never
        write a snapshot that poisons later comparisons.
        """
        rows = []
        for r in self.rows:
            ctx = f"{r.loop}/{r.backend}"
            _require_finite(f"{ctx}.wall_seq_s", r.wall_seq_s,
                            positive=True)
            _require_finite(f"{ctx}.wall_par_s", r.wall_par_s,
                            positive=True)
            _require_finite(f"{ctx}.measured_speedup",
                            r.measured_speedup, positive=True)
            _require_finite(f"{ctx}.predicted_speedup",
                            r.predicted_speedup)
            for phase, seconds in r.phases:
                _require_finite(f"{ctx}.phases.{phase}", seconds)
            rows.append({
                "loop": r.loop, "backend": r.backend,
                "scheme": r.scheme, "workers": r.workers,
                "wall_seq_s": r.wall_seq_s, "wall_par_s": r.wall_par_s,
                "measured_speedup": r.measured_speedup,
                "predicted_speedup": r.predicted_speedup,
                "sp_rel_error": r.sp_rel_error,
                "t_b_pred": r.t_b_pred, "t_d_pred": r.t_d_pred,
                "t_a_pred": r.t_a_pred,
                "phases": dict(r.phases),
                "store_ok": r.store_ok, "faults": r.faults,
                "rung": r.rung, "spurious": r.spurious,
                "salvaged": r.salvaged,
            })
        return {"workers": self.workers, "rows": rows}


def _require_finite(name: str, value: float, *,
                    positive: bool = False) -> None:
    """Reject NaN/inf (and non-positive, when asked) timing fields."""
    import math
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not math.isfinite(value):
        raise ValueError(f"timing field {name} is not finite: {value!r}")
    if positive and value <= 0:
        raise ValueError(f"timing field {name} must be positive: "
                         f"{value!r}")


def compare_backends(entries=None, *, workers: int = 2,
                     backends: Sequence[str] = ("threads", "procs"),
                     n: int = 256, work: int = 100_000,
                     resilience=None, fault_plan=None
                     ) -> BackendComparison:
    """Measure wall-clock speedup of the real backends.

    ``entries`` is a sequence of objects with ``name``/``loop``/
    ``funcs``/``make_store`` attributes (zoo entries and
    :class:`~repro.workloads.bench.BenchLoop` both qualify); defaults
    to the DOALL benchmark loop sized by ``n``/``work``.  Every run is
    store-checked against a sequential reference.  ``resilience`` /
    ``fault_plan`` route the runs through the supervisor (see
    :func:`repro.executors.backends.run_plan_on_backend`), populating
    the report's fault column.
    """
    import time

    from repro.executors.backends import run_plan_on_backend
    from repro.ir.interp import SequentialInterp
    from repro.obs import names
    from repro.obs.phases import PhaseProfiler, get_profiler, profiling
    from repro.obs.tracer import get_tracer
    from repro.planner.select import plan_loop
    from repro.runtime.costs import FREE
    from repro.runtime.machine import Machine

    if entries is None:
        from repro.workloads.bench import make_doall_bench
        entries = [make_doall_bench(n=n, work=work)]

    machine = Machine(workers)
    rows: List[BackendRow] = []
    for entry in entries:
        reference = entry.make_store()
        t0 = time.perf_counter()
        SequentialInterp(entry.loop, entry.funcs, FREE).run(reference)
        wall_seq = time.perf_counter() - t0

        plan = plan_loop(entry.loop, machine, entry.funcs,
                         sample_store=entry.make_store(),
                         min_speedup=0.0)
        pred = plan.prediction
        predicted = pred.sp_at if pred is not None else 1.0

        for backend in backends:
            store = entry.make_store()
            # Reuse an already-installed profiler (the caller's scope)
            # or install a run-local one, so each run's stats carry
            # the wall-clock phase breakdown either way.
            outer = get_profiler()
            with profiling(outer if outer.enabled else PhaseProfiler()):
                result = run_plan_on_backend(
                    plan, store, entry.funcs, backend=backend,
                    workers=workers, machine=machine,
                    resilience=resilience, fault_plan=fault_plan)
            wall_par = result.wall_s or result.t_par / 1e9
            res = result.stats.get("resilience")
            spec = result.stats.get("spec", {})
            phases = result.stats.get("phases", {})
            row = BackendRow(
                loop=entry.name, backend=backend, scheme=result.scheme,
                workers=workers, wall_seq_s=wall_seq,
                wall_par_s=wall_par,
                measured_speedup=wall_seq / wall_par if wall_par else 0.0,
                predicted_speedup=predicted,
                store_ok=store.equals(reference),
                faults=len(res["faults"]) if res else 0,
                rung=res["rung"] if res else "-",
                spurious=spec.get("spurious_exceptions", 0),
                salvaged=spec.get("salvaged_iters", 0),
                t_b_pred=pred.t_b if pred is not None else 0.0,
                t_d_pred=pred.t_d if pred is not None else 0.0,
                t_a_pred=pred.t_a if pred is not None else 0.0,
                phases=tuple(sorted(phases.items())))
            rows.append(row)
            trc = get_tracer()
            if trc.enabled:
                # Tentpole (b): the Section-7 terms next to measured
                # reality, one telemetry record per scheme × backend.
                trc.event(names.EV_COST_TELEMETRY, 0,
                          loop=row.loop, backend=backend,
                          scheme=row.scheme,
                          sp_pred=row.predicted_speedup,
                          sp_meas=row.measured_speedup,
                          sp_rel_error=row.sp_rel_error,
                          t_b_pred=row.t_b_pred,
                          t_d_pred=row.t_d_pred,
                          t_a_pred=row.t_a_pred,
                          wall_par_s=row.wall_par_s)
                trc.count(names.M_BENCH_RUNS)
                trc.observe(names.M_BENCH_SP_ERROR,
                            abs(row.sp_rel_error))
    return BackendComparison(workers=workers, rows=tuple(rows))
