"""Tests for DOANY, the 1/(p-1) hedge, DOACROSS, windowed execution,
run-twice internals, and the Wu-Lewis baseline's characteristics."""

import numpy as np
import pytest

from repro.executors import (
    run_general3,
    run_induction2,
    run_sequential,
)
from repro.executors.distribution import run_loop_distribution
from repro.executors.doacross import run_doacross
from repro.executors.doany import run_while_doany
from repro.executors.multirec import run_distributed
from repro.executors.oneplus import run_one_plus_p_minus_1
from repro.executors.runtwice import run_twice
from repro.executors.window import WindowController, run_windowed
from repro.ir import (
    ArrayAssign,
    ArrayRef,
    Assign,
    Const,
    Exit,
    FunctionTable,
    If,
    SequentialInterp,
    Store,
    Var,
    WhileLoop,
    eq_,
    le_,
)
from repro.runtime import Machine

from tests.conftest import (
    list_loop,
    list_store,
    rv_exit_loop,
    rv_exit_store,
    simple_doall_loop,
    simple_doall_store,
)

FT = FunctionTable()


def search_loop():
    """Find the first flagged candidate (DOANY-style search)."""
    return WhileLoop(
        [Assign("k", Const(1)), Assign("found", Const(-1))],
        le_(Var("k"), Var("n")),
        [If(eq_(ArrayRef("flag", Var("k")), Const(1)),
            [Assign("found", Var("k")), Exit()]),
         Assign("k", Var("k") + 1)],
        name="search")


def search_store(n=100, hit=64):
    flag = np.zeros(n + 2, dtype=np.int64)
    flag[hit] = 1
    return Store({"flag": flag, "n": n, "k": 0, "found": -1})


class TestWhileDoany:
    def test_finds_the_candidate(self, machine8):
        st = search_store()
        res = run_while_doany(search_loop(), st, machine8, FT)
        assert st["found"] == 64
        assert res.exited_in_body

    def test_no_checkpoint_no_stamps(self, machine8):
        st = search_store()
        res = run_while_doany(search_loop(), st, machine8, FT)
        assert res.stats["checkpoint_words"] == 0
        assert res.stats["stamped_words"] == 0

    def test_speedup_scales(self):
        seq_t = run_sequential(search_loop(), search_store(400, 380),
                               Machine(1), FT).t_par
        st = search_store(400, 380)
        res = run_while_doany(search_loop(), st, Machine(8), FT)
        assert res.speedup(seq_t) > 2

    def test_matches_sequential_result_with_inorder_issue(self, machine8):
        ref = search_store()
        SequentialInterp(search_loop(), FT).run(ref)
        st = search_store()
        run_while_doany(search_loop(), st, machine8, FT)
        assert st["found"] == ref["found"]


class TestOnePlusHedge:
    def test_parallel_wins_on_big_loop(self, machine8):
        ref = simple_doall_store(200)
        SequentialInterp(simple_doall_loop(), FT).run(ref)
        st = simple_doall_store(200)
        res = run_one_plus_p_minus_1(
            simple_doall_loop(), st, machine8, FT,
            parallel_scheme=run_induction2)
        assert res.stats["parallel_won"]
        assert st.equals(ref)

    def test_sequential_wins_on_tiny_loop(self, machine8):
        ref = simple_doall_store(2)
        SequentialInterp(simple_doall_loop(), FT).run(ref)
        st = simple_doall_store(2)
        res = run_one_plus_p_minus_1(
            simple_doall_loop(), st, machine8, FT,
            parallel_scheme=run_induction2)
        assert not res.stats["parallel_won"]
        assert st.equals(ref)

    def test_needs_two_processors(self):
        from repro.errors import PlanError
        with pytest.raises(PlanError):
            run_one_plus_p_minus_1(
                simple_doall_loop(), simple_doall_store(5), Machine(1),
                FT, parallel_scheme=run_induction2)

    def test_cost_caps_loss(self, machine8):
        """The hedge's total time is close to min(seq, par) + copies."""
        st = simple_doall_store(200)
        res = run_one_plus_p_minus_1(
            simple_doall_loop(), st, machine8, FT,
            parallel_scheme=run_induction2)
        lanes = min(res.stats["t_seq_lane"], res.stats["t_par_lane"])
        assert res.t_par == res.t_before + lanes


class TestDoacross:
    def _dependent_loop(self):
        """A[i] = A[i-1] + i: fully flow-dependent remainder."""
        return WhileLoop(
            [Assign("i", Const(1))], le_(Var("i"), Var("n")),
            [ArrayAssign("A", Var("i"),
                         ArrayRef("A", Var("i") - 1) + Var("i")),
             Assign("i", Var("i") + 1)],
            name="chain")

    def test_exact_semantics(self, machine8):
        def mk():
            return Store({"A": np.zeros(52, dtype=np.int64), "n": 50,
                          "i": 0})
        ref = mk()
        SequentialInterp(self._dependent_loop(), FT).run(ref)
        st = mk()
        res = run_doacross(self._dependent_loop(), st, machine8, FT)
        assert st.equals(ref)
        assert res.n_iters == 50

    def test_dependent_loop_no_speedup(self, machine8):
        st = Store({"A": np.zeros(52, dtype=np.int64), "n": 50, "i": 0})
        seq_t = run_sequential(self._dependent_loop(), st, Machine(1),
                               FT).t_par
        st2 = Store({"A": np.zeros(52, dtype=np.int64), "n": 50, "i": 0})
        res = run_doacross(self._dependent_loop(), st2, machine8, FT)
        # the whole body is one dependence chain: pipelining buys ~nothing
        assert res.speedup(seq_t) < 1.2

    def test_parallel_part_overlaps(self, machine8):
        """A loop with a small sequential core and heavy independent
        work per iteration pipelines well."""
        ft = FunctionTable()
        ft.register("heavy", lambda ctx, i: 0, cost=300)
        from repro.ir import Call, ExprStmt
        loop = WhileLoop(
            [Assign("i", Const(1)), Assign("s", Const(0))],
            le_(Var("i"), Var("n")),
            [Assign("s", Var("s") + 1),          # carried chain (cheap)
             ExprStmt(Call("heavy", [Var("i")])),  # independent (heavy)
             Assign("i", Var("i") + 1)],
            name="pipeline")
        def mk():
            return Store({"n": 60, "i": 0, "s": 0})
        seq_t = run_sequential(loop, mk(), Machine(1), ft).t_par
        st = mk()
        res = run_doacross(loop, st, machine8, ft)
        assert res.speedup(seq_t) > 3
        assert st["s"] == 60


class TestDistributedMultirec:
    def test_semantics_preserved(self, machine8):
        loop = WhileLoop(
            [Assign("i", Const(1)), Assign("x", Const(1))],
            le_(Var("i"), Var("n")),
            [Assign("x", Var("x") * 2),
             ArrayAssign("A", Var("i"), Var("x")),
             ArrayAssign("B", Var("i"), Var("i") * 3),
             Assign("i", Var("i") + 1)],
            name="tworec")
        def mk():
            return Store({"A": np.zeros(34, dtype=np.int64),
                          "B": np.zeros(34, dtype=np.int64),
                          "n": 32, "i": 0, "x": 0})
        ref = mk()
        SequentialInterp(loop, FT).run(ref)
        st = mk()
        res = run_distributed(loop, st, machine8, FT)
        assert st.equals(ref)
        assert "recurrence-parallel" in res.stats["plan_modes"]

    def test_speedup_on_parallel_blocks(self, machine8):
        ft = FunctionTable()
        ft.register("w", lambda ctx, i: 0, cost=200)
        from repro.ir import Call, ExprStmt
        loop = WhileLoop(
            [Assign("i", Const(1))], le_(Var("i"), Var("n")),
            [ExprStmt(Call("w", [Var("i")])),
             Assign("i", Var("i") + 1)],
            name="mostly-parallel")
        def mk():
            return Store({"n": 100, "i": 0})
        seq_t = run_sequential(loop, mk(), Machine(1), ft).t_par
        st = mk()
        res = run_distributed(loop, st, machine8, ft)
        assert res.speedup(seq_t) > 2


class TestWindowedDetails:
    def test_fixed_window_throttles(self):
        """A tiny window on variable-duration work must not beat an
        unconstrained run."""
        ft = FunctionTable()
        ft.register("vw", lambda ctx, i: ctx.charge(40 + (i % 11) * 60))
        from repro.ir import Call, ExprStmt
        loop = WhileLoop(
            [Assign("i", Const(1))], le_(Var("i"), Var("n")),
            [ExprStmt(Call("vw", [Var("i")])),
             Assign("i", Var("i") + 1)], name="varwork")
        def mk():
            return Store({"n": 120, "i": 0})
        m = Machine(8)
        tight = run_windowed(loop, mk(), m, ft,
                             controller=WindowController(initial=2,
                                                         minimum=2))
        loose = run_windowed(loop, mk(), m, ft,
                             controller=WindowController(initial=512))
        assert tight.t_par >= loose.t_par

    def test_dynamic_window_adapts(self, machine8):
        st = rv_exit_store(200, 160)
        res = run_windowed(rv_exit_loop(), st, machine8,
                           FT, controller=WindowController(
                               initial=8, memory_budget_words=4))
        assert len(res.stats["window_history"]) >= 1


class TestRunTwiceDetails:
    def test_no_stamps_either_pass(self, machine8):
        st = rv_exit_store(60, 33)
        res = run_twice(rv_exit_loop(), st, machine8, FT)
        assert res.stats["pass1"]["stamped_words"] == 0
        assert res.stats["pass2"]["stamped_words"] == 0

    def test_costs_both_passes(self, machine8):
        st = rv_exit_store(60, 33)
        twice = run_twice(rv_exit_loop(), st, machine8, FT)
        st2 = rv_exit_store(60, 33)
        once = run_induction2(rv_exit_loop(), st2, machine8, FT)
        assert twice.t_par > once.makespan


class TestWuLewisCharacteristics:
    def test_sequential_walk_dominates_light_bodies(self, machine8):
        """The paper's criticism: with little remainder work, the
        sequential dispatcher walk caps the distribution's speedup
        below General-3's."""
        ref_t = run_sequential(list_loop(), list_store(120), Machine(1),
                               FT).t_par
        wu = run_loop_distribution(list_loop(), list_store(120),
                                   machine8, FT)
        g3 = run_general3(list_loop(), list_store(120), machine8, FT)
        assert wu.stats["sequential_walk_time"] > 0
        assert wu.speedup(ref_t) <= g3.speedup(ref_t) * 1.35

    def test_rv_superfluous_terms(self, machine8):
        """With an RV terminator the walk precomputes terms past the
        exit — the paper's 'superfluous values of the dispatcher'."""
        res = run_loop_distribution(rv_exit_loop(),
                                    rv_exit_store(80, 20), machine8, FT)
        assert res.stats["superfluous_terms"] > 0
