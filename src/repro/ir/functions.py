"""Intrinsic function tables.

The paper's loops contain opaque kernels — ``WORK(tmp)``, termination
predicates ``f(i)`` — whose internals the compiler does not analyze.
We model them as *intrinsics*: named Python callables registered in a
:class:`FunctionTable` together with a declared cycle cost.

Intrinsics receive the evaluation context first, so any store array
they touch goes through the context's instrumented ``read``/``write``
methods — that is what lets the PD test and the time-stamping machinery
observe every memory access even inside opaque work functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import IRError

__all__ = ["Intrinsic", "FunctionTable"]

#: Signature of an intrinsic implementation: ``fn(ctx, *args) -> value``.
IntrinsicImpl = Callable[..., Any]

#: Cost may be a flat cycle count or ``cost(*args) -> int``.
CostSpec = int | Callable[..., int]


@dataclass(frozen=True)
class Intrinsic:
    """A registered intrinsic: implementation + declared cost.

    Attributes
    ----------
    name:
        Name used by :class:`~repro.ir.nodes.Call` nodes.
    impl:
        ``impl(ctx, *args) -> value``.  Must be deterministic and must
        not mutate the store except through ``ctx.write``.
    cost:
        Extra cycles charged per call on top of any cycles the
        implementation itself charges through ``ctx`` (e.g. for the
        arithmetic the opaque kernel notionally performs).
    pure:
        Whether the intrinsic result depends only on its arguments and
        store values it reads.  Impure intrinsics block some analyses.
    reads:
        Names of store arrays the implementation may *read* (through
        ``ctx.read``).  The terminator RI/RV classifier and the
        dependence analysis treat these as the kernel's read set.
    writes:
        Names of store arrays the implementation may *write* (through
        ``ctx.write``).  An undeclared write is a workload bug; the
        analyses assume the declarations are conservative.
    vector_impl:
        Optional batched form for the kernel tier
        (:mod:`repro.kernels`): ``vector_impl(store, *arg_vectors) ->
        ndarray`` evaluates the intrinsic for a whole iteration batch
        at once, where each argument is a NumPy vector with one element
        per iteration.  It must be read-only, raise-free wherever
        ``impl`` is, and elementwise-equal to calling ``impl`` per
        iteration; a ``Call`` to an intrinsic without one simply makes
        the loop fall back to the interpreter.
    """

    name: str
    impl: IntrinsicImpl
    cost: CostSpec = 0
    pure: bool = True
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    vector_impl: Optional[Callable[..., Any]] = None

    def cost_of(self, args: Tuple[Any, ...]) -> int:
        """Cycle cost of one call with the given argument values."""
        if callable(self.cost):
            return int(self.cost(*args))
        return int(self.cost)


class FunctionTable:
    """Mapping of intrinsic names to :class:`Intrinsic` entries."""

    __slots__ = ("_fns",)

    def __init__(self) -> None:
        self._fns: Dict[str, Intrinsic] = {}

    def register(
        self,
        name: str,
        impl: IntrinsicImpl,
        *,
        cost: CostSpec = 0,
        pure: bool = True,
        reads: Tuple[str, ...] = (),
        writes: Tuple[str, ...] = (),
        vector_impl: Optional[Callable[..., Any]] = None,
    ) -> Intrinsic:
        """Register ``impl`` under ``name``; returns the entry.

        Raises :class:`~repro.errors.IRError` on duplicate names so a
        workload cannot silently shadow a kernel.
        """
        if name in self._fns:
            raise IRError(f"intrinsic {name!r} already registered")
        entry = Intrinsic(name, impl, cost, pure,
                          tuple(reads), tuple(writes), vector_impl)
        self._fns[name] = entry
        return entry

    def __getitem__(self, name: str) -> Intrinsic:
        try:
            return self._fns[name]
        except KeyError:
            raise IRError(f"unknown intrinsic {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._fns

    def names(self) -> Tuple[str, ...]:
        """All registered intrinsic names."""
        return tuple(self._fns)

    def copy(self) -> "FunctionTable":
        """Shallow copy (intrinsics are immutable)."""
        out = FunctionTable()
        out._fns.update(self._fns)
        return out

    @staticmethod
    def of(**impls: IntrinsicImpl | Tuple[IntrinsicImpl, CostSpec]) -> "FunctionTable":
        """Convenience constructor.

        ``FunctionTable.of(f=my_f, work=(my_work, 50))`` registers
        ``f`` at zero declared cost and ``work`` at 50 cycles/call.
        """
        table = FunctionTable()
        for name, spec in impls.items():
            if isinstance(spec, tuple):
                impl, cost = spec
                table.register(name, impl, cost=cost)
            else:
                table.register(name, spec)
        return table
