"""Top-level convenience API: ``parallelize`` in one call.

This is the "compiler driver" a downstream user reaches for first::

    from repro import parallelize, Machine, Store, FunctionTable

    outcome = parallelize(loop, store, Machine(8), funcs)
    print(outcome.result.speedup(outcome.t_seq))

``parallelize`` analyzes the loop, profiles a sample run, consults the
Section 7 cost model, picks the scheme the paper would pick, executes
it on the virtual machine, and *verifies* the final store against a
reference sequential execution (the verification can be switched off
for large runs).

The same name doubles as the **decorator surface** for real Python
functions (see :mod:`repro.frontend.decorator` and
``docs/frontend.md``)::

    @parallelize(backend="procs", workers=4)
    def sweep(A, n):
        i = 0
        while i < n:
            A[i] = A[i] * 2
            i = i + 1

Calling ``parallelize`` without a store selects the decorator surface:
bare ``@parallelize`` on a function, or ``@parallelize(**options)`` as
a factory.  The decorated function is lifted through the Python-source
frontend, its arguments are captured per call, and results are written
back into the caller's arrays — with a transparent fallback to the
original function when the loop is outside the liftable subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ExecutionError, PlanError
from repro.executors.base import ParallelResult
from repro.executors.sequential import ensure_info
from repro.ir.functions import FunctionTable
from repro.ir.interp import SequentialInterp
from repro.ir.nodes import Loop
from repro.ir.store import Store
from repro.obs import names as _ev
from repro.obs.tracer import get_tracer
from repro.planner.select import Plan, execute_plan, plan_loop
from repro.runtime.machine import Machine

__all__ = ["Outcome", "parallelize"]


@dataclass
class Outcome:
    """Everything ``parallelize`` learned and did.

    Attributes
    ----------
    plan:
        The chosen strategy with its rationale and cost prediction.
    result:
        The parallel execution's outcome and timing.
    t_seq:
        Reference sequential time (for speedups); ``None`` when
        verification was skipped (no reference run happened).
    verified:
        ``True`` when the final store was checked against the
        sequential reference; ``None`` when verification was skipped.
    """

    plan: Plan
    result: ParallelResult
    t_seq: Optional[int]
    verified: Optional[bool]

    @property
    def speedup(self) -> float:
        """Attainable speedup, or NaN when no reference run exists."""
        if self.t_seq is None:
            return float("nan")
        return self.result.speedup(self.t_seq)


def parallelize(
    loop_or_info=None,
    store: Optional[Store] = None,
    machine: Optional[Machine] = None,
    funcs: Optional[FunctionTable] = None,
    *,
    scheme: Optional[str] = None,
    verify: bool = True,
    u: Optional[int] = None,
    strip: Optional[int] = None,
    min_speedup: Optional[float] = None,
    backend: str = "sim",
    workers: Optional[int] = None,
    nprocs: int = 8,
    resilience=None,
    fault_plan=None,
    strict_exceptions: bool = False,
    partial_restart: bool = True,
    kernels: str = "auto",
    fallback: bool = True,
):
    """Analyze, plan, execute, and (optionally) verify one loop.

    Called without a ``store`` this is the **decorator surface** (see
    the module docstring): ``parallelize(fn)`` wraps a plain Python
    function, ``parallelize(**options)`` returns the configured
    decorator.  ``scheme`` / ``nprocs`` / ``fallback`` belong to that
    surface (:func:`repro.frontend.decorator.make_parallel`); ``scheme``
    also pins the planner on the loop path.

    Parameters
    ----------
    loop_or_info:
        The loop (or its prebuilt analysis) — or, on the decorator
        surface, the Python function to wrap.
    store:
        Live state; left in the sequentially-correct final state.
    machine:
        Virtual multiprocessor to run on.  For real backends this
        still drives the planner's cost model; execution uses
        ``workers`` real workers.
    funcs:
        Intrinsic table (empty by default).
    verify:
        Run a sequential reference on a copy and compare stores.
    u / strip:
        Iteration bound / strip length forwarded to the executor.
    min_speedup:
        Cost-model threshold below which the loop stays sequential.
    backend:
        ``"sim"`` (virtual-time machine, default), ``"threads"``,
        ``"procs"`` (real workers — see ``docs/backends.md``), or
        ``"pool"`` (the persistent worker-pool service — pre-forked
        workers, leased shm arena, admission control and a built-in
        per-job degradation ladder; see ``docs/service.md``).  With a
        real backend, ``t_seq`` and ``result.t_par`` are wall-clock
        **nanoseconds** instead of virtual cycles, so
        :attr:`Outcome.speedup` is a measured wall-clock speedup.
    workers:
        Real-backend worker count (default: ``machine.nprocs``).
    resilience:
        Real backends only: run under the fault-tolerant supervisor
        (:mod:`repro.runtime.supervisor`).  Pass ``True`` for the
        default :class:`~repro.runtime.supervisor.ResiliencePolicy`
        or a policy instance; worker crashes/hangs then cost a retry
        or a degradation-ladder descent instead of an exception, and
        ``result.stats["resilience"]`` records the recovery.
    fault_plan:
        Real backends only: scripted fault injection
        (:class:`~repro.runtime.faults.FaultPlan`); implies
        supervision unless ``resilience=False``.
    strict_exceptions:
        Real backends only: audit exception equivalence — when a
        contained iteration fault's sequential replay raises a
        different exception type (or none),
        :class:`~repro.errors.ExceptionDivergence` surfaces instead of
        silently trusting the replay.  By default the replay is the
        ground truth (a divergent fault is counted as a spurious
        parallel-only artifact in ``result.stats["spec"]``).
    partial_restart:
        Real backends only: on a genuine iteration fault (or a failed
        PD prefix), transactionally commit the validated iteration
        prefix and continue sequentially from there instead of
        re-executing the whole loop (``False`` restores the pre-PR-4
        full Section-5 restart).
    kernels:
        Real backends only: the vectorized kernel tier
        (:mod:`repro.kernels`).  ``"auto"`` (default) runs vectorizable
        loops as one NumPy batch and silently falls back to the
        interpreted executors otherwise; ``"off"`` disables the tier;
        ``"force"`` raises :class:`PlanError` on any fallback.  The sim
        backend ignores ``"auto"``/``"off"`` (virtual-time runs measure
        the interpreted schemes by design) and rejects ``"force"``.

    Raises
    ------
    ExecutionError
        If verification is on and the parallel store diverges from the
        sequential reference (this indicates a framework bug or a
        violated DOANY-style contract, never silent corruption).
    """
    if store is None:
        # Decorator surface: @parallelize / @parallelize(**options).
        from repro.frontend.decorator import make_parallel
        deco_kwargs = dict(
            scheme=scheme or "auto", backend=backend, machine=machine,
            nprocs=nprocs, workers=workers, kernels=kernels,
            verify=verify,
            min_speedup=0.0 if min_speedup is None else min_speedup,
            u=u, strip=strip, resilience=resilience,
            fault_plan=fault_plan, strict_exceptions=strict_exceptions,
            partial_restart=partial_restart, fallback=fallback)
        if loop_or_info is None:
            return lambda fn: make_parallel(fn, **deco_kwargs)
        if callable(loop_or_info) and not isinstance(loop_or_info, Loop):
            return make_parallel(loop_or_info, **deco_kwargs)
        raise PlanError(
            "parallelize(loop, ...) needs a Store as its second "
            "argument (the decorator surface applies to plain Python "
            "functions only)")
    if machine is None:
        machine = Machine(nprocs)
    if min_speedup is None:
        min_speedup = 1.2
    funcs = funcs or FunctionTable()
    info = ensure_info(loop_or_info, funcs)
    if backend not in ("sim", "threads", "procs", "pool"):
        raise PlanError(f"unknown backend {backend!r}; expected "
                        f"'sim', 'threads', 'procs', or 'pool'")
    if backend == "sim" and (resilience or fault_plan is not None):
        raise PlanError(
            "resilience/fault_plan apply to real backends only — the "
            "sim backend has no workers to crash; rerun with "
            "backend='threads' or backend='procs'")
    if kernels not in ("auto", "off", "force"):
        raise PlanError(f"unknown kernels mode {kernels!r}; expected "
                        f"'auto', 'off', or 'force'")
    if backend == "sim" and kernels == "force":
        raise PlanError(
            "kernels='force' needs a real backend — the sim backend "
            "measures the interpreted schemes in virtual time; rerun "
            "with backend='threads' or backend='procs'")

    reference: Optional[Store] = None
    t_seq: Optional[int] = None
    if verify:
        reference = store.copy()
        if backend == "sim":
            seq = SequentialInterp(info.loop, funcs, machine.cost)
            t_seq = seq.run(reference).cycles
        else:
            # Wall-clock the reference so Outcome.speedup compares
            # nanoseconds to nanoseconds.
            from repro.executors.backends import run_sequential_wall
            t_seq = run_sequential_wall(info.loop, funcs,
                                        reference).t_par

    plan = plan_loop(info, machine, funcs, sample_store=store,
                     min_speedup=min_speedup, force_scheme=scheme,
                     backend=backend)

    kwargs = {}
    # The sequential and DOACROSS runners take no iteration bound /
    # strip length (they discover termination exactly); forwarding
    # them would be a TypeError, not a hint.
    if u is not None and plan.scheme not in ("sequential", "doacross"):
        kwargs["u"] = u
    if strip is not None and plan.scheme not in ("sequential", "doacross"):
        kwargs["strip"] = strip

    def _execute() -> ParallelResult:
        if backend == "sim":
            return execute_plan(plan, store, machine, funcs, **kwargs)
        from repro.executors.backends import run_plan_on_backend
        return run_plan_on_backend(
            plan, store, funcs, backend=backend,
            workers=workers or machine.nprocs, machine=machine,
            resilience=resilience, fault_plan=fault_plan,
            strict_exceptions=strict_exceptions,
            partial_restart=partial_restart,
            kernels=kernels,
            **kwargs)

    try:
        result = _execute()
    except PlanError as exc:
        if "upper bound" not in str(exc) or "strip" in kwargs:
            raise
        # No iteration bound is inferable (e.g. the terminator is not a
        # threshold on the dispatcher): fall back to strip-mined
        # execution, as Section 3 prescribes.
        kwargs["strip"] = max(64, 8 * machine.nprocs)
        result = _execute()

    verified: Optional[bool] = None
    if verify and reference is not None:
        verified = store.equals(reference)
        if not verified:
            raise ExecutionError(
                f"parallel execution of {info.loop.name!r} diverged from "
                f"the sequential reference: {store.diff(reference)}")

    trc = get_tracer()
    if trc.enabled:
        trc.span(_ev.EV_PARALLELIZE, 0, result.t_par,
                 loop=info.loop.name, scheme=result.scheme,
                 t_par=result.t_par, t_seq=t_seq, verified=verified)
        if plan.prediction is not None and t_seq is not None:
            pred = plan.prediction
            predicted_t_par = (pred.t_ipar + pred.t_b + pred.t_d
                               + pred.t_a)
            measured_sp = result.speedup(t_seq)
            if backend == "sim":
                # Times are comparable (both virtual cycles).
                rel_error = ((predicted_t_par - result.t_par)
                             / result.t_par if result.t_par else 0.0)
            else:
                # Real backends measure nanoseconds; only the
                # *speedups* are comparable to the model.
                rel_error = ((pred.sp_at - measured_sp) / measured_sp
                             if measured_sp else 0.0)
            trc.event(
                _ev.EV_CALIBRATION, result.t_par,
                loop=info.loop.name, scheme=result.scheme,
                backend=backend,
                predicted_t_par=predicted_t_par,
                measured_t_par=result.t_par,
                predicted_sp_at=pred.sp_at,
                measured_sp=measured_sp,
                rel_error=rel_error)
    return Outcome(plan=plan, result=result, t_seq=t_seq,
                   verified=verified)
