"""Ablation: Section 7's worst-case bounds and the PD-failure slowdown.

Checks, across a sweep of workloads:

* ``Sp_at >= 1/4 Sp_id`` when the undo machinery runs (no PD test);
* ``Sp_at >= 1/5 Sp_id`` when the PD test runs too;
* a failed PD speculation costs at most ~``T_seq/p`` extra (total time
  ``O(T_seq + 5 T_seq/p)``).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.executors import run_induction1, run_sequential
from repro.executors.speculative import run_speculative
from repro.ir import (
    ArrayAssign,
    ArrayRef,
    Assign,
    Const,
    Exit,
    FunctionTable,
    If,
    Store,
    Var,
    WhileLoop,
    eq_,
    le_,
)
from repro.planner import slowdown_bound, worst_case_fraction
from repro.runtime import Machine

FT = FunctionTable()


def rv_loop():
    return WhileLoop(
        [Assign("i", Const(1))], le_(Var("i"), Var("n")),
        [If(eq_(ArrayRef("A", Var("i")), Const(-9)), [Exit()]),
         ArrayAssign("A", Var("i"), Var("i") * 7),
         Assign("i", Var("i") + 1)],
        name="rv-sweep")


def rv_store(n, exit_at=None):
    A = np.zeros(n + 2, dtype=np.int64)
    if exit_at:
        A[exit_at] = -9
    return Store({"A": A, "n": n, "i": 0})


def spec_loop():
    return WhileLoop(
        [Assign("i", Const(1))], le_(Var("i"), Var("n")),
        [ArrayAssign("A", ArrayRef("idx", Var("i") - 1), Var("i") * 1.0),
         Assign("i", Var("i") + 1)],
        name="spec-sweep")


def spec_store(n, injective, seed=0):
    rng = np.random.default_rng(seed)
    idx = (rng.permutation(n) if injective
           else rng.integers(0, max(2, n // 8), n)).astype(np.int64)
    return Store({"A": np.zeros(n), "idx": idx, "n": n, "i": 0})


def test_worst_case_fraction_without_pd(benchmark):
    def sweep():
        out = []
        for n in (100, 400, 1200):
            for exit_at in (n // 3, (9 * n) // 10, None):
                m = Machine(8)
                seq_t = run_sequential(rv_loop(), rv_store(n, exit_at),
                                       m, FT).t_par
                st = rv_store(n, exit_at)
                protected = run_induction1(rv_loop(), st, m, FT)
                st2 = rv_store(n, exit_at)
                ideal = run_induction1(rv_loop(), st2, m, FT,
                                       force_checkpoint=False,
                                       force_stamps=False)
                out.append((n, exit_at,
                            protected.speedup(seq_t),
                            ideal.speedup(seq_t)))
        return out

    rows = run_once(benchmark, sweep)
    floor = worst_case_fraction(uses_pd_test=False)
    print("\nSection 7 bound (no PD): Sp_at >= 1/4 Sp_id")
    worst = 1.0
    for n, exit_at, sp_at, sp_id in rows:
        frac = sp_at / sp_id
        worst = min(worst, frac)
        print(f"  n={n:5d} exit={str(exit_at):>5s}: "
              f"Sp_at={sp_at:.2f} Sp_id={sp_id:.2f} frac={frac:.2f}")
    benchmark.extra_info["worst_fraction"] = round(worst, 3)
    assert worst >= floor


def test_worst_case_fraction_with_pd(benchmark):
    def sweep():
        out = []
        for n in (200, 800):
            m = Machine(8)
            seq_t = run_sequential(spec_loop(), spec_store(n, True),
                                   m, FT).t_par
            st = spec_store(n, True)
            spec = run_speculative(spec_loop(), st, m, FT)
            st2 = spec_store(n, True)
            ideal = run_induction1(spec_loop(), st2, m, FT,
                                   force_checkpoint=False,
                                   force_stamps=False)
            out.append((n, spec.speedup(seq_t), ideal.speedup(seq_t)))
        return out

    rows = run_once(benchmark, sweep)
    floor = worst_case_fraction(uses_pd_test=True)
    print("\nSection 7 bound (with PD): Sp_at >= 1/5 Sp_id")
    worst = 1.0
    for n, sp_at, sp_id in rows:
        frac = sp_at / sp_id
        worst = min(worst, frac)
        print(f"  n={n:5d}: Sp_at={sp_at:.2f} Sp_id={sp_id:.2f} "
              f"frac={frac:.2f}")
    benchmark.extra_info["worst_fraction"] = round(worst, 3)
    assert worst >= floor


def test_pd_failure_slowdown_bound(benchmark):
    def sweep():
        out = []
        for n in (200, 800):
            m = Machine(8)
            seq_t = run_sequential(spec_loop(), spec_store(n, False),
                                   m, FT).t_par
            st = spec_store(n, False)
            failed = run_speculative(spec_loop(), st, m, FT)
            assert failed.fallback_sequential
            out.append((n, seq_t, failed.t_par))
        return out

    rows = run_once(benchmark, sweep)
    print("\nSection 7 slowdown bound on PD failure: "
          "T_total <= T_seq (1 + 5/p)")
    for n, seq_t, total in rows:
        bound = slowdown_bound(seq_t, 8)
        print(f"  n={n:5d}: T_seq={seq_t} T_total={total} "
              f"bound={bound:.0f} (x{total / seq_t:.2f})")
        assert total <= bound * 1.3
    benchmark.extra_info["rows"] = [(n, t / s) for n, s, t in rows]
