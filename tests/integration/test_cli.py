"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def loop_file(tmp_path):
    f = tmp_path / "loop.py"
    f.write_text("""
i = 1
while i <= n:
    if A[i] > 100:
        break
    A[i] = A[i] * 2
    i = i + 1
""")
    return str(f)


class TestAnalyze:
    def test_human_output(self, loop_file, capsys):
        assert main(["analyze", loop_file]) == 0
        out = capsys.readouterr().out
        assert "dispatcher:   i (induction)" in out
        assert "remainder-variant" in out
        assert "plan:         induction-2" in out

    def test_json_output(self, loop_file, capsys):
        assert main(["analyze", loop_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dispatcher"]["var"] == "i"
        assert payload["taxonomy"]["overshoot"] is True
        assert payload["dependence"] == "independent"
        assert payload["plan"] == "induction-2"

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/loop.py"]) == 2

    def test_list_loop(self, tmp_path, capsys):
        f = tmp_path / "list.py"
        f.write_text("""
tmp = lst.head
while tmp != -1:
    out[tmp] = work(tmp)
    tmp = lst.successor(tmp)
""")
        assert main(["analyze", str(f)]) == 0
        out = capsys.readouterr().out
        assert "(list)" in out
        assert "general-3" in out


class TestTaxonomy:
    def test_prints_eight_cells(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert out.count("True") == 8


class TestTrace:
    def test_trace_spice_writes_artifacts(self, tmp_path, capsys):
        assert main(["trace", "spice", "--procs", "4",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "speedup=" in out
        jsonl = tmp_path / "spice-load40.trace.jsonl"
        perfetto = tmp_path / "spice-load40.perfetto.json"
        assert jsonl.exists() and perfetto.exists()
        lines = jsonl.read_text().strip().split("\n")
        records = [json.loads(line) for line in lines]
        assert any(r.get("name") == "machine.iter" for r in records)
        assert records[-1]["kind"] == "metrics"
        doc = json.loads(perfetto.read_text())
        assert doc["traceEvents"]
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_trace_specific_method(self, tmp_path, capsys):
        assert main(["trace", "track", "--procs", "4",
                     "--method", "Induction-2 (QUIT)",
                     "--out", str(tmp_path)]) == 0
        assert "Induction-2" in capsys.readouterr().out

    def test_trace_unknown_workload(self, capsys):
        assert main(["trace", "nosuch"]) == 2

    def test_trace_unknown_method(self, capsys):
        assert main(["trace", "spice", "--method", "nosuch"]) == 2

    def test_trace_leaves_global_tracer_disabled(self, tmp_path):
        from repro.obs import get_tracer
        main(["trace", "spice", "--procs", "2", "--out", str(tmp_path)])
        assert get_tracer().enabled is False


class TestCalibrationReport:
    def test_calibration_mode_prints_error_table(self, capsys):
        assert main(["report", "--calibration", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "Cost-model calibration @ 4 processors" in out
        assert "spice-load40" in out
        assert "track-fptrak300" in out
        assert "mean |T_par error|" in out

    def test_calibration_custom_workloads(self, capsys):
        assert main(["report", "--calibration", "--procs", "4",
                     "--workloads", "track"]) == 0
        out = capsys.readouterr().out
        assert "track-fptrak300" in out
        assert "spice-load40" not in out

    def test_calibration_unknown_workload(self, capsys):
        assert main(["report", "--calibration",
                     "--workloads", "bogus"]) == 2
        assert "unknown workload 'bogus'" in capsys.readouterr().err


class TestWorkload:
    def test_spice(self, capsys):
        assert main(["workload", "spice", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "General-3" in out
        assert "store_ok=True" in out

    def test_mcsparse_named_input(self, capsys):
        assert main(["workload", "mcsparse:orsreg1"]) == 0
        out = capsys.readouterr().out
        assert "WHILE-DOANY" in out

    def test_ma28_full_spec(self, capsys):
        assert main(["workload", "ma28:gematt12:320"]) == 0
        out = capsys.readouterr().out
        assert "loop 320" in out

    def test_unknown_workload(self, capsys):
        assert main(["workload", "nosuch"]) == 2
