"""Direct unit tests for the experiment-harness plumbing."""

import pytest

from repro.experiments.figures import FigureData, figure_6, figure_7
from repro.experiments.tables import Table2Row


class TestFigureData:
    def test_rows_pairs_measured_with_paper(self):
        fig = FigureData("9", "t",
                         series={"m": {1: 1.0, 8: 4.0}},
                         paper_at_8={"m": 4.2})
        rows = fig.rows()
        assert rows == [("m", 4.0, 4.2)]

    def test_rows_handles_unreported(self):
        fig = FigureData("9", "t", series={"m": {8: 3.0}})
        assert fig.rows() == [("m", 3.0, None)]


class TestTable2Row:
    def test_relative_error(self):
        r = Table2Row("B", "L", "T", "i", measured=5.5, paper=5.0,
                      store_ok=True)
        assert r.relative_error == pytest.approx(0.1)

    def test_relative_error_unreported(self):
        r = Table2Row("B", "L", "T", "i", measured=5.5, paper=None,
                      store_ok=True)
        assert r.relative_error is None


class TestFigureBuilders:
    def test_figure_6_custom_procs(self):
        fig = figure_6(n_devices=150, procs=(1, 3))
        for curve in fig.series.values():
            assert set(curve) == {1, 3}
        assert fig.figure == "6"

    def test_figure_7_has_both_series(self):
        fig = figure_7(n_tracks=150, procs=(2,))
        assert set(fig.series) == {"Induction-1",
                                   "Ideal (hand-parallel)"}


class TestCliReport:
    def test_report_command_prints(self, capsys, monkeypatch):
        import repro.experiments.report as rep
        import repro.cli as cli
        # patch the report to something instant
        monkeypatch.setattr(rep, "render_report",
                            lambda: "# EXPERIMENTS stub\n")
        import repro.experiments as exps
        monkeypatch.setattr(exps, "render_report",
                            lambda: "# EXPERIMENTS stub\n")
        assert cli.main(["report"]) == 0
        assert "EXPERIMENTS stub" in capsys.readouterr().out


class TestMultirecUnknownMode:
    def test_unknown_block_costed(self, machine8):
        """A distributed plan with an UNKNOWN (PD-tested) block charges
        shadow/analysis costs and still produces exact state."""
        import numpy as np
        from repro.executors.multirec import run_distributed
        from repro.ir import (ArrayAssign, ArrayRef, Assign, Const,
                              FunctionTable, SequentialInterp, Store,
                              Var, WhileLoop, le_)
        loop = WhileLoop(
            [Assign("i", Const(1))], le_(Var("i"), Var("n")),
            [ArrayAssign("A", ArrayRef("idx", Var("i")), Var("i")),
             Assign("i", Var("i") + 1)],
            name="unknown-block")

        def mk():
            idx = np.arange(30, dtype=np.int64)
            return Store({"A": np.zeros(31, dtype=np.int64),
                          "idx": idx, "n": 28, "i": 0})
        ft = FunctionTable()
        ref = mk()
        SequentialInterp(loop, ft).run(ref)
        st = mk()
        res = run_distributed(loop, st, machine8, ft)
        assert st.equals(ref)
        assert "unknown" in res.stats["plan_modes"]
