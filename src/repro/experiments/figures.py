"""Figure reproductions: speedup-vs-processors series for Figures 6-14.

Each ``figure_*`` function returns a :class:`FigureData` with one
series per method/input, processor counts 1..8 (the Alliant FX/80's
range), and the paper's reported 8-processor speedup for comparison.
The benches print these series; :mod:`repro.experiments.report`
renders them into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.runtime.costs import ALLIANT_FX80, CostModel
from repro.workloads.base import Method, Workload, speedup_curve
from repro.workloads.ma28 import make_ma28_loop
from repro.workloads.mcsparse import make_mcsparse_dfact500
from repro.workloads.spice import make_spice_load40
from repro.workloads.track import make_track_fptrak300

__all__ = [
    "FigureData",
    "figure_6",
    "figure_7",
    "figure_8_11",
    "figure_12_14",
    "ALL_FIGURES",
]

PROCS: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)


@dataclass
class FigureData:
    """One reproduced figure.

    Attributes
    ----------
    figure:
        Paper figure number (e.g. "6").
    title:
        What the figure shows.
    series:
        ``label -> {p -> speedup}``.
    paper_at_8:
        ``label -> paper speedup at 8 processors`` where reported.
    """

    figure: str
    title: str
    series: Dict[str, Dict[int, float]] = field(default_factory=dict)
    paper_at_8: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> Sequence[Tuple[str, float, Optional[float]]]:
        """(label, measured@8, paper@8) summary rows."""
        out = []
        for label, curve in self.series.items():
            out.append((label, curve[max(curve)],
                        self.paper_at_8.get(label)))
        return out


def _curves(workload: Workload, methods: Sequence[Method],
            procs: Sequence[int], cost: CostModel) -> Dict[str, Dict[int, float]]:
    return {m.label: speedup_curve(workload, m, procs, cost)
            for m in methods}


def figure_6(*, n_devices: int = 1200, procs: Sequence[int] = PROCS,
             cost: CostModel = ALLIANT_FX80) -> FigureData:
    """Figure 6: SPICE LOAD loop 40 — General-1 vs General-3."""
    w = make_spice_load40(n_devices)
    methods = [w.method("General-1 (locks)"),
               w.method("General-3 (no locks)")]
    return FigureData(
        figure="6",
        title="SPICE LOAD loop 40: linked-list traversal (RI)",
        series=_curves(w, methods, procs, cost),
        paper_at_8=dict(w.paper_speedups),
    )


def figure_7(*, n_tracks: int = 1200, procs: Sequence[int] = PROCS,
             cost: CostModel = ALLIANT_FX80) -> FigureData:
    """Figure 7: TRACK FPTRAK loop 300 — Induction-1 plus the ideal
    hand-parallel curve the paper overlays."""
    w = make_track_fptrak300(n_tracks)
    methods = [w.method("Induction-1"),
               w.method("Ideal (hand-parallel)")]
    return FigureData(
        figure="7",
        title="TRACK FPTRAK loop 300: DO loop with conditional exit (RV)",
        series=_curves(w, methods, procs, cost),
        paper_at_8=dict(w.paper_speedups),
    )


def figure_8_11(*, procs: Sequence[int] = PROCS,
                cost: CostModel = ALLIANT_FX80) -> Dict[str, FigureData]:
    """Figures 8-11: MCSPARSE DFACT loop 500, one figure per input."""
    out: Dict[str, FigureData] = {}
    fig_no = {"gematt11": "8", "gematt12": "9",
              "orsreg1": "10", "saylr4": "11"}
    for name, fig in fig_no.items():
        w = make_mcsparse_dfact500(name)
        out[name] = FigureData(
            figure=fig,
            title=f"MCSPARSE DFACT loop 500 (WHILE-DOANY), input {name}",
            series=_curves(w, list(w.methods), procs, cost),
            paper_at_8=dict(w.paper_speedups),
        )
    return out


def figure_12_14(*, procs: Sequence[int] = PROCS,
                 cost: CostModel = ALLIANT_FX80) -> Dict[str, FigureData]:
    """Figures 12-14: MA28 loops 270 and 320 per input (one figure per
    input, both loops on the same graph — as in the paper)."""
    out: Dict[str, FigureData] = {}
    fig_no = {"gematt11": "12", "gematt12": "13", "orsreg1": "14"}
    for name, fig in fig_no.items():
        data = FigureData(
            figure=fig,
            title=f"MA28 MA30AD loops 270+320, input {name}",
        )
        for loop_no in (270, 320):
            w = make_ma28_loop(name, loop_no)
            m = w.methods[0]
            data.series[f"Loop {loop_no}"] = speedup_curve(w, m, procs,
                                                           cost)
            data.paper_at_8[f"Loop {loop_no}"] = \
                w.paper_speedups[m.label]
        out[name] = data
    return out


#: Registry used by the report generator: figure id -> builder.
ALL_FIGURES = {
    "6": figure_6,
    "7": figure_7,
    "8-11": figure_8_11,
    "12-14": figure_12_14,
}
