"""Parallel prefix (scan) computation — values *and* virtual time.

Section 3.2 of the paper evaluates associative dispatching recurrences
(e.g. ``x(i) = a*x(i-k) + b``) with a parallel prefix computation in
``O(n/p + log p)`` time.  This module implements the classic
three-phase block scan:

1. each processor sequentially reduces its contiguous block,
2. the ``p`` block summaries are exclusive-scanned up a combine tree,
3. each processor rescans its block seeded with its prefix offset.

The implementation really performs the blocked computation (so tests
can verify the parallel decomposition gives bit-identical results to a
sequential scan for any associative operator), and reports the virtual
time the machine model assigns to it.

Affine recurrences get a dedicated element type,
:class:`AffineStep`, whose composition law ``(a2,b2)∘(a1,b1) =
(a2*a1, a2*b1 + b2)`` makes the recurrence's step functions an
associative monoid — the standard trick for scanning linear
recurrences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, TypeVar

from repro.runtime.machine import Machine

__all__ = ["AffineStep", "parallel_prefix", "scan_affine_recurrence"]

T = TypeVar("T")


@dataclass(frozen=True)
class AffineStep:
    """One step of an affine recurrence ``x -> a*x + b`` as a monoid element."""

    a: float
    b: float

    def compose(self, earlier: "AffineStep") -> "AffineStep":
        """Return ``self ∘ earlier`` (apply ``earlier`` first)."""
        return AffineStep(self.a * earlier.a, self.a * earlier.b + self.b)

    def apply(self, x: float) -> float:
        """Apply the step to a value."""
        return self.a * x + self.b


def parallel_prefix(
    elements: Sequence[T],
    op: Callable[[T, T], T],
    machine: Machine,
    *,
    op_cost: int | None = None,
) -> Tuple[List[T], int]:
    """Inclusive scan of ``elements`` under associative ``op``.

    Returns ``(prefixes, virtual_time)`` where ``prefixes[i] =
    elements[0] op elements[1] op ... op elements[i]`` and the virtual
    time follows the machine's ``O(n/p + log p)`` formula.

    The computation is genuinely performed block-wise per virtual
    processor, so any non-associativity of ``op`` would surface as a
    mismatch against a sequential scan — exactly what the property
    tests check.
    """
    n = len(elements)
    if op_cost is None:
        op_cost = machine.cost.mul + machine.cost.alu
    sim_time = machine.prefix_time(n, op_cost) if n else 0
    if n == 0:
        return [], 0
    p = min(machine.nprocs, n)
    block = -(-n // p)
    bounds = [(k * block, min((k + 1) * block, n)) for k in range(p)]
    bounds = [(lo, hi) for lo, hi in bounds if lo < hi]

    # Phase 1: per-processor block reductions.
    block_sums: List[T] = []
    for lo, hi in bounds:
        acc = elements[lo]
        for i in range(lo + 1, hi):
            acc = op(acc, elements[i])
        block_sums.append(acc)

    # Phase 2: exclusive scan of block summaries (the combine tree).
    offsets: List[T | None] = [None] * len(bounds)
    running: T | None = None
    for k, s in enumerate(block_sums):
        offsets[k] = running
        running = s if running is None else op(running, s)

    # Phase 3: per-processor rescan seeded with the block offset.
    out: List[T] = [None] * n  # type: ignore[list-item]
    for k, (lo, hi) in enumerate(bounds):
        acc = offsets[k]
        for i in range(lo, hi):
            acc = elements[i] if acc is None else op(acc, elements[i])
            out[i] = acc
    return out, sim_time


def scan_affine_recurrence(
    x0: float,
    steps: Sequence[AffineStep],
    machine: Machine,
) -> Tuple[List[float], int]:
    """Evaluate ``x(i) = steps[i-1].apply(x(i-1))`` for ``i = 1..n``.

    Returns the dispatcher value sequence ``[x(1), ..., x(n)]`` (the
    value *used by* each iteration is ``x(i-1)``; callers slice as they
    need) and the virtual scan time.  This is the transformation of
    Figure 3: the recurrence loop becomes a parallel prefix, after
    which the remainder loop runs as a DOALL over the precomputed
    terms.
    """
    if not steps:
        return [], 0
    composed, t = parallel_prefix(
        list(steps),
        lambda earlier, later: later.compose(earlier),
        machine,
        op_cost=2 * machine.cost.mul + machine.cost.alu,
    )
    return [c.apply(x0) for c in composed], t
