"""The pool chaos matrix: seeded faults against the *persistent* pool.

Where :func:`repro.runtime.supervisor.chaos_matrix` proves the
per-call backend recovers from injected faults, this matrix proves
the **service** does — and that the service *survives*: each cell
injects one fault kind into one scheme cell of the Table-1 zoo,
checks the final store bit-identically against an independent
sequential run, and then (the part a per-call matrix cannot test)
submits a clean probe job to the same pool to prove the generation
healed — dead workers reaped and respawned, no stale messages, no
leaked leases.

Fault kinds:

* ``crash`` — a worker ``os._exit``\\ s mid-job: the heartbeat
  monitor classifies the dead process, the attempt is cancelled, the
  dead slot is reaped/respawned (or the generation recycled), and the
  job retries on the next ladder rung;
* ``hang`` — a worker stalls past the liveness deadline: same
  recovery, released by the abort flag;
* ``lease-expiry`` — the job's arena lease is granted with TTL 0, so
  the sweeper revokes it at the first strip boundary
  (:class:`~repro.errors.LeaseExpired`): the strip's results are
  distrusted and the attempt retried under a fresh lease.

``repro chaos --pool`` renders the report; CI runs it in the
``pool-soak`` job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ir.interp import SequentialInterp
from repro.runtime.costs import FREE
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.supervisor import (
    CHAOS_SCHEMES,
    ChaosRow,
    ResiliencePolicy,
)
from repro.service.pool import PoolConfig, WorkerPool

__all__ = [
    "POOL_CHAOS_FAULTS",
    "KillPoolReport",
    "PoolChaosReport",
    "crash_resume_soak",
    "kill_pool_chaos",
    "pool_chaos_matrix",
    "torn_journal_chaos",
]

#: The pool-specific fault kinds (the remaining kinds of the per-call
#: matrix — barrier stalls, iteration faults — exercise machinery the
#: pool engine shares with the per-call backend, already covered by
#: ``repro chaos``).
POOL_CHAOS_FAULTS: Tuple[str, ...] = ("crash", "hang", "lease-expiry")


@dataclass(frozen=True)
class PoolChaosReport:
    """All pool chaos rows plus the service-health verdicts."""

    workers: int
    rows: Tuple[ChaosRow, ...]
    probe_ok: bool          #: clean post-matrix job succeeded
    pool_healthy: bool      #: full worker complement alive afterwards
    health: Dict           #: the final ``WorkerPool.health()`` report

    @property
    def all_recovered(self) -> bool:
        """Every fault recovered to a correct store *and* the pool
        itself came out of the matrix alive and serving."""
        return (all(r.store_ok for r in self.rows)
                and self.probe_ok and self.pool_healthy)

    def render(self) -> str:
        """Human-readable matrix (same shape as ``repro chaos``)."""
        head = (f"Pool chaos matrix @ {self.workers} workers "
                f"(persistent pool, seeded fault injection)")
        lines = [head, "=" * len(head),
                 f"{'loop':<20s} {'scheme':<22s} {'fault':<15s} "
                 f"{'recovered at':<16s} {'att':>3s} {'faults':>6s} "
                 f"{'wall_s':>7s} ok"]
        for r in self.rows:
            lines.append(
                f"{r.loop:<20s} {r.scheme:<22s} {r.fault:<15s} "
                f"{r.rung + '/' + r.mode:<16s} {r.attempts:3d} "
                f"{r.n_faults:6d} {r.wall_s:7.3f} {r.store_ok}")
        w = self.health.get("workers", {})
        lines.append("")
        lines.append(
            f"post-matrix probe job: {'ok' if self.probe_ok else 'FAILED'}"
            f"; pool: {w.get('alive', '?')}/{w.get('configured', '?')} "
            f"workers alive, {w.get('respawns', 0)} respawns, "
            f"{w.get('recycles', 0)} recycles")
        lines.append(
            "Every row must end store_ok=True and the pool must keep "
            "serving afterwards:\nan injected worker death, hang, or "
            "lease revocation may cost a retry or a\nladder descent, "
            "never a wrong answer and never the pool "
            "(docs/service.md).")
        return "\n".join(lines)


def pool_chaos_matrix(*, workers: int = 2,
                      kinds: Tuple[str, ...] = POOL_CHAOS_FAULTS,
                      deadline_s: float = 5.0) -> PoolChaosReport:
    """Run the seeded pool fault matrix over the Table-1 zoo.

    One :class:`~repro.service.pool.WorkerPool` serves the *entire*
    matrix — that is the point: every recovery must leave the pool
    able to run the next cell.  For each (scheme, fault kind) cell the
    fault is armed for attempt 0 only, so the ladder's first retry
    runs clean.
    """
    from repro.analysis.loopinfo import analyze_loop
    from repro.executors.speculative import default_test_arrays
    from repro.workloads.zoo import make_zoo

    zoo = {z.name: z for z in make_zoo(48)}
    policy = ResiliencePolicy(deadline_s=deadline_s,
                              poll_interval_s=0.01)
    pool = WorkerPool(PoolConfig(
        workers=workers,
        liveness_deadline_s=max(1.0, deadline_s / 2),
        job_deadline_s=4 * deadline_s)).start()
    rows: List[ChaosRow] = []
    try:
        for zoo_name, scheme, speculative in CHAOS_SCHEMES:
            zl = zoo[zoo_name]
            info = analyze_loop(zl.loop, zl.funcs)
            test_arrays = (default_test_arrays(info)
                           if speculative else ())
            ref = zl.make_store()
            SequentialInterp(zl.loop, zl.funcs, FREE).run(ref)
            for kind in kinds:
                # crash/hang fire deterministically at worker startup
                # (at_iter=0) on the last slot; lease-expiry is a
                # parent-side fault — worker placement is irrelevant.
                spec = FaultSpec(kind=kind, worker=workers - 1,
                                 at_iter=0, delay_s=2 * deadline_s)
                st = zl.make_store()
                t0 = time.perf_counter()
                result = pool.submit(
                    info, st, zl.funcs, scheme=scheme,
                    workers=workers, u=96, speculative=speculative,
                    test_arrays=test_arrays, policy=policy,
                    fault_plan=FaultPlan(specs=(spec,)))
                res = result.stats.get("resilience", {})
                rows.append(ChaosRow(
                    loop=zoo_name,
                    scheme=("speculative[" + scheme + "]"
                            if speculative else scheme),
                    fault=kind,
                    rung=res.get("rung", "sequential"),
                    mode=res.get("mode", "sequential"),
                    attempts=res.get("attempts", 0),
                    n_faults=len(res.get("faults", ())),
                    salvaged=result.stats.get("spec", {}).get(
                        "salvaged_iters", 0),
                    store_ok=st.equals(ref),
                    wall_s=time.perf_counter() - t0))
        # The service-level assertion: the pool that absorbed every
        # fault above still serves a clean job correctly.
        zl = zoo["general/RI"]
        info = analyze_loop(zl.loop, zl.funcs)
        ref = zl.make_store()
        SequentialInterp(zl.loop, zl.funcs, FREE).run(ref)
        st = zl.make_store()
        pool.submit(info, st, zl.funcs, scheme="general-3",
                    workers=workers, u=96, policy=policy)
        probe_ok = st.equals(ref)
        health = pool.health()
        pool_healthy = (health["workers"]["alive"]
                        == health["workers"]["configured"])
    finally:
        pool.close()
    return PoolChaosReport(
        workers=workers, rows=tuple(rows), probe_ok=probe_ok,
        pool_healthy=pool_healthy, health=health)


# ---------------------------------------------------------------------------
# Whole-pool SIGKILL + journal recovery (docs/service.md, Durability)
# ---------------------------------------------------------------------------

#: The kill-pool victim's workload shape.  Job 0 is the speculative
#: in-flight job (big enough to be killed between strip checkpoints);
#: jobs 1..N-1 are non-speculative and queued behind it when the kill
#: lands.  All are the ``doall-bench`` loop, whose ``crunch``
#: intrinsic is deterministic — the resume-side resolver rebuilds the
#: same :class:`~repro.ir.functions.FunctionTable` from these
#: constants, so replayed results are bit-comparable to the oracle.
_KILL_N0, _KILL_WORK0 = 96, 300_000     # in-flight speculative job
_KILL_N, _KILL_WORK = 32, 50_000        # queued jobs
_KILL_STRIP = 16
_KILL_JOBS = 4


def _kill_job_params(i: int) -> Tuple[int, int]:
    return (_KILL_N0, _KILL_WORK0) if i == 0 else (_KILL_N, _KILL_WORK)


def _kill_job_funcs(i: int):
    from repro.workloads.bench import make_doall_bench
    n, work = _kill_job_params(i)
    return make_doall_bench(n, work)


def _kill_pool_victim(journal_dir: str, workers: int = 2) -> None:
    """The process that gets SIGKILLed (run via ``python -c``).

    Opens a journaled pool, submits :data:`_KILL_JOBS` jobs — the
    speculative one first, then the queued non-speculative ones from
    background threads so they block inside admission — and then
    spins.  The parent watches the journal for the first checkpoint
    record and kills this whole process group mid-strip.
    """
    import threading

    from repro.analysis.loopinfo import analyze_loop
    from repro.service.admission import AdmissionConfig
    from repro.service.journal import JobJournal

    journal = JobJournal(journal_dir)
    pool = WorkerPool(PoolConfig(
        workers=workers, job_deadline_s=600.0,
        admission=AdmissionConfig(capacity=2 * _KILL_JOBS,
                                  default_deadline_s=600.0)),
        journal=journal)

    def submit(i: int) -> None:
        bench = _kill_job_funcs(i)
        info = analyze_loop(bench.loop, bench.funcs)
        store = bench.make_store()
        pool.submit(info, store, bench.funcs, scheme="doall",
                    workers=workers, strip=_KILL_STRIP,
                    speculative=(i == 0),
                    test_arrays=("out",) if i == 0 else (),
                    job_key=f"kill-pool-{i}")

    threads = [threading.Thread(target=submit, args=(i,), daemon=True)
               for i in range(_KILL_JOBS)]
    threads[0].start()
    time.sleep(0.3)             # job 0 must own the run lock first
    for t in threads[1:]:
        t.start()
    for t in threads:
        t.join()
    pool.close()                # unreachable when the kill lands


@dataclass(frozen=True)
class KillPoolRow:
    """One journaled job's fate through the kill + resume cycle."""

    key: str
    speculative: bool
    mode: str           #: replay mode (resume_jobs) or "lost"
    resumed_from: int   #: 1 = from scratch
    store_ok: bool      #: bit-identical to the sequential oracle


@dataclass(frozen=True)
class KillPoolReport:
    """Outcome of one whole-pool SIGKILL + ``--resume`` cycle."""

    workers: int
    in_flight: int          #: journaled-incomplete jobs at the kill
    rows: Tuple[KillPoolRow, ...]
    swept_segments: int     #: crashed generation's shm reclaimed
    leaked_segments: int    #: still attachable after resume + close
    torn_records: int       #: undecodable journal lines tolerated
    dedup_ok: bool          #: client resubmission re-executed nothing
    duplicate_executions: int
    wall_kill_s: float      #: submit -> SIGKILL
    wall_resume_s: float    #: scan -> all jobs complete

    @property
    def all_recovered(self) -> bool:
        """Every in-flight job completed bit-identically, at least one
        speculative job resumed from a committed prefix, resubmission
        deduped, and no shm segment outlived the recovery."""
        return (self.in_flight >= _KILL_JOBS
                and len(self.rows) == self.in_flight
                and all(r.store_ok for r in self.rows)
                and any(r.speculative and r.resumed_from > 1
                        for r in self.rows)
                and self.dedup_ok
                and self.duplicate_executions == 0
                and self.leaked_segments == 0)

    def render(self) -> str:
        """Human-readable report (the CI artifact)."""
        head = (f"Kill-pool chaos @ {self.workers} workers "
                f"(SIGKILL the whole pool mid-strip, then resume)")
        lines = [head, "=" * len(head),
                 f"{'job':<14s} {'spec':<5s} {'replay mode':<20s} "
                 f"{'resumed@':>8s} ok"]
        for r in self.rows:
            lines.append(f"{r.key:<14s} {str(r.speculative):<5s} "
                         f"{r.mode:<20s} {r.resumed_from:8d} "
                         f"{r.store_ok}")
        lines.append("")
        lines.append(
            f"in-flight at kill: {self.in_flight}; swept shm: "
            f"{self.swept_segments}; leaked shm: {self.leaked_segments}; "
            f"torn records: {self.torn_records}")
        lines.append(
            f"client resubmission: "
            f"{'all dedup hits' if self.dedup_ok else 'RE-EXECUTED'} "
            f"({self.duplicate_executions} duplicate executions)")
        lines.append(
            f"wall: {self.wall_kill_s:.2f}s to kill, "
            f"{self.wall_resume_s:.2f}s to recover")
        lines.append(
            "A SIGKILL of the entire pool may cost a resume pass, "
            "never a lost job, a wrong\nanswer, a double execution, "
            "or a leaked segment (docs/service.md).")
        return "\n".join(lines)


def _spawn_victim(journal_dir: str, workers: int):
    """Start the victim in its own session (so ``killpg`` reaps the
    daemonized pool workers with it)."""
    import os
    import subprocess
    import sys

    import repro

    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    code = (f"from repro.service.chaos import _kill_pool_victim; "
            f"_kill_pool_victim({journal_dir!r}, {workers})")
    return subprocess.Popen([sys.executable, "-c", code], env=env,
                            start_new_session=True,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def kill_pool_chaos(*, workers: int = 2,
                    timeout_s: float = 120.0) -> KillPoolReport:
    """SIGKILL an entire journaled pool mid-strip, then recover it.

    The acceptance drill for the durability layer: a victim process
    opens a journaled pool with :data:`_KILL_JOBS` in-flight jobs (one
    speculative and running, the rest queued), the whole process group
    is SIGKILLed as soon as the running job commits a strip
    checkpoint, and recovery then (1) sweeps the crashed generation's
    shm segments, (2) replays every incomplete job to a final store
    bit-identical to a fresh sequential oracle — the speculative one
    from its committed prefix, not iteration 0 — (3) proves client
    resubmission of every key dedups with zero re-execution, and (4)
    leaves no shm segment behind.
    """
    import json
    import os
    import signal
    import tempfile

    from repro.analysis.loopinfo import analyze_loop
    from repro.service.client import PoolClient
    from repro.service.journal import JobJournal, resume_jobs

    with tempfile.TemporaryDirectory() as journal_dir:
        t0 = time.perf_counter()
        victim = _spawn_victim(journal_dir, workers)
        path = os.path.join(journal_dir, JobJournal.FILENAME)
        deadline = time.monotonic() + timeout_s
        armed = False
        try:
            # Kill as soon as job 0 has a committed checkpoint AND all
            # jobs are journaled-admitted: mid-strip by construction.
            while time.monotonic() < deadline:
                if victim.poll() is not None:
                    raise RuntimeError(
                        "kill-pool victim exited before the kill "
                        f"(rc={victim.returncode})")
                admitted, ckpt0 = 0, False
                if os.path.exists(path):
                    for line in open(path, encoding="utf-8"):
                        try:
                            rec = json.loads(line)
                        except ValueError:
                            continue
                        if rec.get("t") == "admitted":
                            admitted += 1
                        if (rec.get("t") == "checkpoint"
                                and rec.get("job") == "kill-pool-0"):
                            ckpt0 = True
                if admitted >= _KILL_JOBS and ckpt0:
                    armed = True
                    break
                time.sleep(0.005)
            if not armed:
                raise RuntimeError(
                    f"victim never reached kill state within "
                    f"{timeout_s:.0f}s (admitted={admitted})")
        finally:
            try:
                os.killpg(os.getpgid(victim.pid), signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
            victim.wait()
        wall_kill = time.perf_counter() - t0

        # -- recovery ---------------------------------------------------
        t1 = time.perf_counter()
        journal = JobJournal(journal_dir)
        scan = journal.scan()
        incomplete = scan.incomplete()
        swept = journal.sweep_stale_segments(scan)
        pool = WorkerPool(PoolConfig(workers=workers), journal=journal)
        try:
            outcomes = resume_jobs(
                journal, pool,
                funcs_for=lambda job: _kill_job_funcs(
                    int(job.key.rsplit("-", 1)[1])).funcs,
                sweep=False)
            by_key = {o.key: o for o in outcomes}
            rows = []
            for job in incomplete:
                i = int(job.key.rsplit("-", 1)[1])
                bench = _kill_job_funcs(i)
                ref = bench.make_store()
                SequentialInterp(bench.loop, bench.funcs, FREE).run(ref)
                o = by_key.get(job.key)
                rows.append(KillPoolRow(
                    key=job.key,
                    speculative=bool(job.spec.get("speculative")),
                    mode=o.mode if o else "lost",
                    resumed_from=o.resumed_from if o else 0,
                    store_ok=bool(o and o.store.equals(ref))))
            wall_resume = time.perf_counter() - t1

            # -- idempotent resubmission: zero duplicate executions ----
            executed_before = pool.jobs_submitted
            client = PoolClient(lambda: pool, journal=journal)
            dedup_ok = True
            for i in range(_KILL_JOBS):
                bench = _kill_job_funcs(i)
                info = analyze_loop(bench.loop, bench.funcs)
                st = bench.make_store()
                res = client.submit(info, st, bench.funcs,
                                    scheme="doall",
                                    key=f"kill-pool-{i}")
                mode = res.stats.get("client", {}).get("mode")
                dedup_ok = dedup_ok and mode == "dedup"
            duplicates = pool.jobs_submitted - executed_before
        finally:
            pool.close()

        # -- leak check: every journaled segment must be gone ----------
        from multiprocessing import shared_memory
        leaked = 0
        for job in journal.scan().jobs.values():
            for name in job.segments:
                try:
                    seg = shared_memory.SharedMemory(name=name,
                                                     create=False)
                except FileNotFoundError:
                    continue
                seg.close()
                leaked += 1
        journal.close()

    return KillPoolReport(
        workers=workers, in_flight=len(incomplete), rows=tuple(rows),
        swept_segments=swept, leaked_segments=leaked,
        torn_records=scan.torn, dedup_ok=dedup_ok,
        duplicate_executions=duplicates, wall_kill_s=wall_kill,
        wall_resume_s=wall_resume)


def torn_journal_chaos(*, workers: int = 2) -> bool:
    """A journal whose tail was severed mid-append must still recover.

    Journals one complete and one incomplete job, then appends the
    three classic torn shapes — a truncated JSON object, binary
    garbage, and a record missing its mandatory fields — and asserts
    the scan skips (and counts) all three while replay still completes
    the incomplete job bit-identically.
    """
    import tempfile

    from repro.analysis.loopinfo import analyze_loop
    from repro.service.journal import JobJournal, resume_jobs
    from repro.workloads.zoo import make_zoo

    zoo = {z.name: z for z in make_zoo(48)}
    zl = zoo["mono-induction/RI"]
    info = analyze_loop(zl.loop, zl.funcs)
    ref = zl.make_store()
    SequentialInterp(zl.loop, zl.funcs, FREE).run(ref)
    with tempfile.TemporaryDirectory() as d:
        journal = JobJournal(d)
        done_store = zl.make_store()
        journal.record_admitted("torn-done", loop=zl.loop,
                                store=done_store, scheme="doall", u=96)
        journal.record_done("torn-done", ref)
        journal.record_admitted("torn-open", loop=zl.loop,
                                store=zl.make_store(), scheme="doall",
                                u=96)
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"t": "checkpoint", "job": "torn-open", "ck\n')
            fh.write("\x00\x01garbage not json\n")
            fh.write('{"no": "type field"}\n')
        scan = journal.scan()
        if scan.torn != 3 or len(scan.incomplete()) != 1:
            return False
        pool = WorkerPool(PoolConfig(workers=workers), journal=journal)
        try:
            outcomes = resume_jobs(journal, pool,
                                   funcs_for=lambda job: zl.funcs)
        finally:
            pool.close()
        journal.close()
        return (len(outcomes) == 1
                and outcomes[0].store.equals(ref)
                and not journal.scan().jobs["torn-open"].incomplete)


def crash_resume_soak(*, rounds: int = 3,
                      workers: int = 2) -> List[KillPoolReport]:
    """The multi-job crash/resume soak: repeated whole-pool SIGKILLs.

    Each round is a full :func:`kill_pool_chaos` cycle against a fresh
    journal; every round must fully recover.  CI runs this in the
    ``pool-durability`` job.
    """
    return [kill_pool_chaos(workers=workers) for _ in range(rounds)]
