"""Typed trace records: instant events and spans in virtual time.

Both record types are immutable, hashable, and JSON-friendly
(:meth:`to_dict` yields plain builtins).  Timestamps are *virtual
cycles* from the machine's clock — the tracer never reads wall-clock
time, so identical runs produce identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

__all__ = ["Event", "Span", "freeze_attrs"]


def freeze_attrs(attrs: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Normalize an attribute mapping into a sorted, hashable tuple."""
    return tuple(sorted(attrs.items()))


@dataclass(frozen=True)
class Event:
    """An instantaneous occurrence at one point in virtual time.

    Attributes
    ----------
    name:
        Canonical event name (see :mod:`repro.obs.names`).
    ts:
        Virtual-cycle timestamp.
    pid:
        Processor id, or ``-1`` when the event is not tied to one
        (planner decisions, calibration records, ...).
    attrs:
        Extra key/value payload, stored as a sorted tuple of pairs.
    """

    name: str
    ts: int
    pid: int = -1
    attrs: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-builtin representation (one JSON-lines record)."""
        return {"kind": "event", "name": self.name, "ts": self.ts,
                "pid": self.pid, **dict(self.attrs)}


@dataclass(frozen=True)
class Span:
    """A named interval ``[start, end]`` of virtual time on a processor."""

    name: str
    start: int
    end: int
    pid: int = -1
    attrs: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @property
    def duration(self) -> int:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """Plain-builtin representation (one JSON-lines record)."""
        return {"kind": "span", "name": self.name, "ts": self.start,
                "dur": self.duration, "pid": self.pid, **dict(self.attrs)}
