#!/usr/bin/env python3
"""Quickstart: parallelize a WHILE loop in three ways.

1. Build a loop in the IR directly and let ``parallelize`` analyze,
   plan, execute (on the virtual 8-processor machine) and verify it.
2. Lift a real Python ``while`` loop with the ast frontend.
3. Peek at the analysis: dispatcher classification, RI/RV terminator,
   and the Table-1 taxonomy cell.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ArrayAssign,
    ArrayRef,
    Assign,
    Const,
    Machine,
    Store,
    Var,
    WhileLoop,
    analyze_loop,
    format_loop,
    le_,
    lift_source,
    parallelize,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. An IR-built DO-style loop: while i <= n: A[i] *= 2
    # ------------------------------------------------------------------
    loop = WhileLoop(
        init=[Assign("i", Const(1))],
        cond=le_(Var("i"), Var("n")),
        body=[ArrayAssign("A", Var("i"), ArrayRef("A", Var("i")) * 2),
              Assign("i", Var("i") + 1)],
        name="double-elements",
    )
    print(format_loop(loop))

    store = Store({"A": np.arange(500, dtype=np.int64), "n": 498, "i": 0})
    outcome = parallelize(loop, store, Machine(8))
    print(f"\nplan: {outcome.plan.scheme}")
    print(f"why:  {outcome.plan.rationale}")
    print(f"speedup on 8 virtual processors: {outcome.speedup:.2f}x "
          f"(verified against sequential: {outcome.verified})")

    # ------------------------------------------------------------------
    # 2. Lift ordinary Python source
    # ------------------------------------------------------------------
    lifted = lift_source("""
i = 1
while i <= n:
    if A[i] > threshold:
        break
    A[i] = A[i] + 1000
    i = i + 1
""", name="search-and-update")
    A = np.arange(400, dtype=np.int64)
    st = Store({"A": A, "n": 398, "threshold": 250, "i": 0})
    out2 = parallelize(lifted.loop, st, Machine(8))
    print(f"\nlifted loop: exited after {out2.result.n_iters} iterations "
          f"(RV conditional exit), plan={out2.plan.scheme}, "
          f"speedup={out2.speedup:.2f}x, "
          f"overshot-and-undone={out2.result.overshot}")

    # ------------------------------------------------------------------
    # 3. What did the compiler see?
    # ------------------------------------------------------------------
    info = analyze_loop(lifted.loop)
    print(f"\nanalysis of {lifted.loop.name!r}:")
    print(f"  dispatcher: {info.dispatcher.var} "
          f"({info.dispatcher.kind.value}, step={info.dispatcher.step})")
    print(f"  terminator: {info.terminator.klass.value} "
          f"({info.terminator.n_exit_sites} exit site)")
    print(f"  taxonomy:   {info.taxonomy.dispatcher.value} / "
          f"{info.taxonomy.terminator.name} -> overshoot="
          f"{info.taxonomy.overshoot}")
    print(f"  remainder:  {info.dependence.verdict.value}")


if __name__ == "__main__":
    main()
