"""Dispatcher detection: find and classify the loop's recurrences.

Section 2 of the paper: a WHILE loop is controlled by a *dispatching
recurrence* (the dispatcher).  This module finds scalar variables whose
per-iteration update depends on their own previous value and classifies
each update into the paper's taxonomy columns:

* ``INDUCTION``    — ``v = v + c`` (closed form, fully parallel);
  monotonic when the sign of ``c`` is known.
* ``AFFINE``       — ``v = a*v + b`` with ``a != 1`` (associative;
  parallelizable with a parallel prefix computation).
* ``LIST``         — ``v = next(v)`` (a general recurrence with the
  special structure of a linked-list traversal, enabling the
  General-1/2/3 schemes).
* ``GENERAL``      — anything else self-dependent (evaluated
  sequentially; the General schemes still apply via the generic
  ``advance`` closure).

Only *top-level, unconditional* updates are treated as well-formed
dispatchers; a conditionally-updated recurrence is classified
``GENERAL`` with ``irregular=True`` (its closed form does not exist).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.functions import FunctionTable
from repro.ir.nodes import (
    Assign,
    BinOp,
    Const,
    Expr,
    Loop,
    Next,
    Stmt,
    UnaryOp,
    Var,
)
from repro.ir.visitor import expr_vars

__all__ = ["RecKind", "Recurrence", "find_recurrences", "constant_of", "affine_in"]


class RecKind(Enum):
    """Dispatcher classification (Table 1 columns)."""

    INDUCTION = "induction"
    AFFINE = "affine"
    LIST = "list"
    GENERAL = "general"


@dataclass(frozen=True)
class Recurrence:
    """A detected recurrence on scalar ``var``.

    Attributes
    ----------
    var:
        The recurrence variable (the dispatcher candidate).
    kind:
        Classification (see :class:`RecKind`).
    stmt_index:
        Top-level body statement index of the update.
    step / mul / add:
        ``INDUCTION``: ``v = v + step``.  ``AFFINE``: ``v = mul*v +
        add``.  Unused fields are ``None``.
    list_name:
        ``LIST``: which linked list is traversed.
    init:
        Constant initial value when the loop's ``init`` block
        assigns one (needed for closed forms and monotonicity).
    monotonic:
        ``True``/``False`` when provable, ``None`` when unknown.
    irregular:
        The update is conditional or appears more than once, so no
        closed form or prefix formulation is safe.
    """

    var: str
    kind: RecKind
    stmt_index: int
    step: Optional[float] = None
    mul: Optional[float] = None
    add: Optional[float] = None
    list_name: Optional[str] = None
    init: Optional[float] = None
    monotonic: Optional[bool] = None
    irregular: bool = False


def constant_of(e: Expr) -> Optional[float]:
    """Fold an expression to a constant if it contains no variables."""
    if isinstance(e, Const):
        return e.value
    if isinstance(e, UnaryOp) and e.op == "-":
        v = constant_of(e.operand)
        return None if v is None else -v
    if isinstance(e, BinOp):
        a, b = constant_of(e.left), constant_of(e.right)
        if a is None or b is None:
            return None
        try:
            if e.op == "+":
                return a + b
            if e.op == "-":
                return a - b
            if e.op == "*":
                return a * b
            if e.op == "/":
                return a / b
            if e.op == "//":
                return a // b
            if e.op == "%":
                return a % b
            if e.op == "**":
                return a ** b
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
    return None


def affine_in(e: Expr, var: str) -> Optional[Tuple[float, float]]:
    """Decompose ``e`` as ``a*var + b`` with constant ``a, b``.

    Returns ``(a, b)`` or ``None`` when ``e`` is not affine in ``var``
    (with everything else constant).  This is the pattern engine behind
    both induction/affine recurrence classification and the affine
    subscript analysis.
    """
    if isinstance(e, Var):
        return (1.0, 0.0) if e.name == var else None
    c = constant_of(e)
    if c is not None:
        return (0.0, c)
    if isinstance(e, UnaryOp) and e.op == "-":
        sub = affine_in(e.operand, var)
        if sub is None:
            return None
        return (-sub[0], -sub[1])
    if isinstance(e, BinOp):
        if e.op in ("+", "-"):
            l, r = affine_in(e.left, var), affine_in(e.right, var)
            if l is None or r is None:
                return None
            if e.op == "+":
                return (l[0] + r[0], l[1] + r[1])
            return (l[0] - r[0], l[1] - r[1])
        if e.op == "*":
            lc, rc = constant_of(e.left), constant_of(e.right)
            if lc is not None:
                sub = affine_in(e.right, var)
                if sub is None:
                    return None
                return (lc * sub[0], lc * sub[1])
            if rc is not None:
                sub = affine_in(e.left, var)
                if sub is None:
                    return None
                return (rc * sub[0], rc * sub[1])
            return None
        if e.op in ("/", "//"):
            rc = constant_of(e.right)
            if rc in (None, 0):
                return None
            sub = affine_in(e.left, var)
            if sub is None:
                return None
            return (sub[0] / rc, sub[1] / rc)
    return None


def _init_constants(init: Sequence[Stmt]) -> Dict[str, float]:
    """Constant values assigned in the loop's ``init`` block."""
    out: Dict[str, float] = {}
    for s in init:
        if isinstance(s, Assign):
            c = constant_of(s.expr)
            if c is not None:
                out[s.name] = c
            elif s.name in out:
                del out[s.name]
    return out


def _classify_update(var: str, rhs: Expr, init_val: Optional[float],
                     stmt_index: int, irregular: bool) -> Recurrence:
    """Classify a single self-dependent update ``var = rhs``."""
    if isinstance(rhs, Next) and isinstance(rhs.ptr, Var) and rhs.ptr.name == var:
        return Recurrence(var, RecKind.LIST, stmt_index,
                          list_name=rhs.list_name, init=init_val,
                          monotonic=None, irregular=irregular)
    aff = affine_in(rhs, var)
    if aff is not None and not irregular:
        a, b = aff
        if a == 1.0:
            mono: Optional[bool]
            if b > 0 or b < 0:
                mono = True  # strictly monotone (either direction)
            else:
                mono = False  # step 0: not a progressing induction
            return Recurrence(var, RecKind.INDUCTION, stmt_index, step=b,
                              init=init_val, monotonic=(b != 0 and mono))
        # a != 1: an affine (associative) recurrence a*v + b.
        mono: Optional[bool] = None
        if init_val is not None:
            x1 = a * init_val + b
            if x1 == init_val:
                mono = False  # fixed point: the sequence is constant
            elif a > 0:
                # Positive multiplier: the sequence moves monotonically
                # away from (or toward) the fixed point.
                mono = True
            else:
                # Negative multiplier: check for a 2-cycle; otherwise
                # the sequence oscillates (not monotone) but we cannot
                # prove it never repeats, so stay undecided unless it
                # provably cycles.
                x2 = a * x1 + b
                mono = False if x2 == init_val else None
        return Recurrence(var, RecKind.AFFINE, stmt_index, mul=a, add=b,
                          init=init_val, monotonic=mono)
    return Recurrence(var, RecKind.GENERAL, stmt_index, init=init_val,
                      irregular=irregular)


def find_recurrences(loop: Loop,
                     funcs: Optional[FunctionTable] = None) -> List[Recurrence]:
    """Find every top-level scalar recurrence in ``loop``'s body.

    A variable is a recurrence when some top-level assignment's RHS
    reads the variable itself (directly).  Cross-variable recurrence
    *systems* (``x`` uses ``y``, ``y`` uses ``x``) are detected by
    :mod:`repro.analysis.multirec` via the dependence graph; here each
    participating variable is reported individually (as ``GENERAL``
    unless it self-updates in a recognized form).
    """
    init_consts = _init_constants(loop.init)
    updates: Dict[str, List[Tuple[int, Expr, bool]]] = {}

    def scan(stmts: Sequence[Stmt], top: bool, conditional: bool) -> None:
        for pos, s in enumerate(stmts):
            if isinstance(s, Assign):
                idx = pos if top else -1
                updates.setdefault(s.name, []).append(
                    (idx, s.expr, conditional or not top))
            elif hasattr(s, "then"):
                scan(s.then, False, True)
                scan(s.orelse, False, True)
            elif hasattr(s, "body") and hasattr(s, "var"):
                scan(s.body, False, True)

    scan(loop.body, True, False)

    out: List[Recurrence] = []
    for var, sites in updates.items():
        self_dep = [
            (idx, rhs, cond) for idx, rhs, cond in sites
            if var in expr_vars(rhs)
            or (isinstance(rhs, Next) and isinstance(rhs.ptr, Var)
                and rhs.ptr.name == var)
        ]
        if not self_dep:
            continue
        irregular = len(sites) > 1 or any(cond for _, _, cond in self_dep)
        idx, rhs, _ = self_dep[0]
        out.append(_classify_update(var, rhs, init_consts.get(var),
                                    max(idx, 0), irregular))
    out.sort(key=lambda r: r.stmt_index)
    return out
