"""The ``@parallelize`` decorator: real Python while-loops, one line.

The end-to-end path the paper's Section 9 user wants::

    from repro import parallelize

    @parallelize(backend="procs", workers=4)
    def jacobi(A, new, n, eps):
        maxdelta = eps + 1.0
        while maxdelta > eps:
            maxdelta = 0.0
            for i in range(1, n - 1):
                new[i] = 0.5 * (A[i - 1] + A[i + 1])
                delta = abs(new[i] - A[i])
                maxdelta = max(maxdelta, delta)
            for i in range(1, n - 1):
                A[i] = new[i]

    jacobi(A, new, len(A), 1e-6)        # runs in parallel, writes A back

At decoration time the function is lifted
(:func:`~repro.frontend.pyfront.lift_function`); at call time the
arguments are captured into a private store
(:mod:`~repro.frontend.argbind`), the Table-1 classifier and Section-7
planner pick a scheme (or honor ``scheme=...``), the loop executes on
the chosen backend (``sim`` | ``threads`` | ``procs`` | ``pool``), and
the final arrays are copied back into the caller's objects.

**Fallback contract:** any :class:`~repro.errors.FrontendError` (the
function is outside the liftable subset, or an argument cannot be
captured) — and any :class:`~repro.errors.AnalysisError` at decoration
time — makes the wrapper transparently run the *original* function
instead.  Parallelization is an optimization, never a behavior change;
the fallback reason is recorded on ``wrapper.fallback_reason`` and as
an ``frontend.fallback`` obs event.

The wrapper exposes forensics for tests and triage:

* ``wrapper.lifted`` — the :class:`~repro.frontend.pyfront.LiftedLoop`
  (``None`` in permanent-fallback mode);
* ``wrapper.fallback_reason`` — why decoration fell back (``None``
  when lifted);
* ``wrapper.last_outcome`` — the :class:`~repro.api.Outcome` of the
  most recent parallel call (``None`` before the first, or when the
  call fell back);
* ``wrapper.__wrapped__`` — the original function, always callable.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

from repro.errors import AnalysisError, FrontendError
from repro.frontend.argbind import bind_call, write_back
from repro.frontend.pyfront import lift_function
from repro.obs import names as _ev
from repro.obs.tracer import get_tracer
from repro.runtime.machine import Machine

__all__ = ["make_parallel"]


def make_parallel(
    fn: Callable,
    *,
    scheme: str = "auto",
    backend: str = "sim",
    machine: Optional[Machine] = None,
    nprocs: int = 8,
    workers: Optional[int] = None,
    kernels: str = "auto",
    verify: bool = True,
    min_speedup: float = 0.0,
    u: Optional[int] = None,
    strip: Optional[int] = None,
    resilience=None,
    fault_plan=None,
    strict_exceptions: bool = False,
    partial_restart: bool = True,
    fallback: bool = True,
) -> Callable:
    """Wrap ``fn`` so its while loop runs through the parallel pipeline.

    This is the implementation behind the decorator form of
    :func:`repro.api.parallelize`; see that docstring for the
    parameters shared with the one-call API.  Decorator-specific knobs:

    scheme:
        ``"auto"`` (default) lets the planner choose; any scheme name
        accepted by the planner's pinning table (``sequential``,
        ``induction-2``, ``associative-prefix``, ``general-3``,
        ``speculative``, ``doacross``) forces it.
    machine / nprocs:
        The virtual machine driving the cost model (default
        ``Machine(nprocs)``).
    min_speedup:
        Defaults to ``0.0`` here (the user explicitly asked for the
        parallel path), unlike the one-call API's ``1.2``.
    fallback:
        ``False`` turns the transparent fallback off: lifting or
        binding failures raise their ``FrontendError`` instead of
        silently running the original function.  Useful in tests and
        when the decorated function *must* go parallel.
    """
    trc = get_tracer()
    mach = machine or Machine(nprocs)
    pinned = None if scheme in (None, "auto") else scheme

    lifted = None
    fallback_reason: Optional[str] = None
    try:
        lifted = lift_function(fn)
    except (FrontendError, AnalysisError) as exc:
        if not fallback:
            raise
        fallback_reason = str(exc)
        if trc.enabled:
            trc.event(_ev.EV_FRONTEND_FALLBACK, 0, fn=fn.__name__,
                      stage="decorate", reason=fallback_reason)
        trc.count(_ev.M_FRONTEND_FALLBACKS)
    else:
        if trc.enabled:
            trc.event(_ev.EV_FRONTEND_LIFT, 0, fn=fn.__name__,
                      loop=lifted.loop.name,
                      arrays=list(lifted.arrays),
                      lists=list(lifted.lists),
                      intrinsics=list(lifted.intrinsics))
        trc.count(_ev.M_FRONTEND_LIFTS)

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if lifted is None:
            return fn(*args, **kwargs)
        try:
            bound = bind_call(lifted, fn, args, kwargs)
        except FrontendError as exc:
            if not fallback:
                raise
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(_ev.EV_FRONTEND_FALLBACK, 0,
                             fn=fn.__name__, stage="bind",
                             reason=str(exc))
            tracer.count(_ev.M_FRONTEND_FALLBACKS)
            return fn(*args, **kwargs)
        from repro.api import parallelize
        outcome = parallelize(
            lifted.loop, bound.store, mach, bound.funcs,
            scheme=pinned, verify=verify, u=u, strip=strip,
            min_speedup=min_speedup, backend=backend, workers=workers,
            resilience=resilience, fault_plan=fault_plan,
            strict_exceptions=strict_exceptions,
            partial_restart=partial_restart, kernels=kernels)
        write_back(bound)
        wrapper.last_outcome = outcome
        get_tracer().count(_ev.M_FRONTEND_CALLS)
        if lifted.result is not None:
            return bound.store[lifted.result]
        return None

    wrapper.lifted = lifted
    wrapper.fallback_reason = fallback_reason
    wrapper.last_outcome = None
    return wrapper
