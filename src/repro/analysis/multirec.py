"""Section 6: transforming arbitrary WHILE loops (multiple recurrences).

The paper's procedure:

1. build the body's data dependence graph and condense its SCCs;
2. distribute the loop: peel the *hierarchically top-level*
   recurrences into their own loops, recurse on the rest;
3. classify each distributed block (parallelizable recurrence /
   fully parallel / sequential / statically unanalyzable);
4. **fuse** bottom-up: contiguous sequential blocks merge, contiguous
   parallel blocks merge, and a sequential block encountered after a
   parallel run starts a new fused unit — maximizing granularity and
   parallel code while respecting the dependence order;
5. schedule the fused sequence, pipelining sequential blocks
   DOACROSS-style when the dependence graph allows.

This module produces the *plan* (which statements go to which block,
each block's execution mode); :mod:`repro.executors.multirec` executes
and times it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.ddg import build_ddg
from repro.analysis.defuse import block_effects
from repro.analysis.recurrence import RecKind, Recurrence, find_recurrences
from repro.ir.functions import FunctionTable
from repro.ir.nodes import Loop

__all__ = ["BlockMode", "DistributedBlock", "DistributionPlan",
           "plan_distribution", "fuse_blocks"]


class BlockMode(Enum):
    """Execution mode of one distributed block."""

    RECURRENCE_PARALLEL = "recurrence-parallel"   #: induction/affine: prefix or closed form
    RECURRENCE_SEQUENTIAL = "recurrence-sequential"  #: general recurrence chain
    PARALLEL = "parallel"                          #: independent iterations (DOALL)
    SEQUENTIAL = "sequential"                      #: carried deps, no recognized form
    UNKNOWN = "unknown"                            #: needs the PD test


@dataclass(frozen=True)
class DistributedBlock:
    """One block of the distributed loop.

    ``stmts`` are top-level body statement indices (original order);
    ``mode`` is the execution verdict; ``recurrence`` is set for
    recurrence blocks.
    """

    stmts: Tuple[int, ...]
    mode: BlockMode
    recurrence: Optional[Recurrence] = None

    @property
    def parallelizable(self) -> bool:
        """Whether this block can use more than one processor."""
        return self.mode in (BlockMode.RECURRENCE_PARALLEL,
                             BlockMode.PARALLEL)


@dataclass(frozen=True)
class DistributionPlan:
    """The fully distributed and fused plan for a loop body."""

    blocks: Tuple[DistributedBlock, ...]
    fused: Tuple[DistributedBlock, ...]
    single_scc: bool  #: body was one big SCC: no distribution possible

    @property
    def n_parallel_blocks(self) -> int:
        """Fused blocks that run in parallel mode."""
        return sum(1 for b in self.fused if b.parallelizable)


def _component_mode(comp: Sequence[int], loop: Loop,
                    recs: Dict[int, Recurrence],
                    funcs: Optional[FunctionTable],
                    self_loop: bool) -> Tuple[BlockMode, Optional[Recurrence]]:
    """Classify one SCC of the dependence graph."""
    eff = block_effects([loop.body[i] for i in comp], funcs)
    carried = len(comp) > 1 or self_loop
    rec = None
    for i in comp:
        if i in recs:
            rec = recs[i]
            break
    if rec is not None and len(comp) == 1 and not rec.irregular:
        if rec.kind in (RecKind.INDUCTION, RecKind.AFFINE):
            return BlockMode.RECURRENCE_PARALLEL, rec
        return BlockMode.RECURRENCE_SEQUENTIAL, rec
    if carried:
        return BlockMode.SEQUENTIAL, rec
    if eff.opaque:
        return BlockMode.UNKNOWN, None
    # Subscripted subscripts / calls in a written index make the
    # block's access pattern statically unanalyzable (Section 5).
    from repro.analysis.subscript import _is_statically_opaque
    for acc in eff.accesses:
        if acc.is_write and _is_statically_opaque(acc.index):
            return BlockMode.UNKNOWN, None
    return BlockMode.PARALLEL, None


def plan_distribution(loop: Loop,
                      funcs: Optional[FunctionTable] = None
                      ) -> DistributionPlan:
    """Distribute a loop body along its dependence-graph condensation.

    Implements the recursive extraction of Section 6: the condensation
    is processed in topological order, which is exactly the order the
    recursion would peel top-level recurrences.
    """
    ddg = build_ddg(loop, funcs)
    recs = {r.stmt_index: r for r in find_recurrences(loop, funcs)}
    blocks: List[DistributedBlock] = []
    for comp in ddg.topo_components():
        self_loop = (len(comp) == 1
                     and comp[0] in ddg.graph.get(comp[0], ()))
        mode, rec = _component_mode(comp, loop, recs, funcs, self_loop)
        blocks.append(DistributedBlock(tuple(sorted(comp)), mode, rec))
    fused = fuse_blocks(blocks)
    return DistributionPlan(tuple(blocks), fused, ddg.is_single_scc())


def fuse_blocks(blocks: Sequence[DistributedBlock]
                ) -> Tuple[DistributedBlock, ...]:
    """Fuse contiguous same-parallelism blocks (Section 6's rules).

    Walking the topological order: sequential-ish blocks merge with a
    preceding sequential unit; parallel-ish blocks merge with a
    preceding parallel unit; a mode change starts a new unit.
    Recurrence blocks keep their identity (they drive the dispatcher
    machinery) and are never fused into remainder units, mirroring the
    paper's caution about fusing prefix-evaluated recurrences.
    """
    fused: List[DistributedBlock] = []
    for b in blocks:
        if b.recurrence is not None:
            fused.append(b)
            continue
        mergeable = (fused
                     and fused[-1].recurrence is None
                     and fused[-1].parallelizable == b.parallelizable
                     # UNKNOWN must stay separate: fusing a PD-tested
                     # block into a dominating block raises the cost of
                     # a failed test (Section 6).
                     and BlockMode.UNKNOWN not in (fused[-1].mode, b.mode))
        if mergeable:
            prev = fused.pop()
            mode = prev.mode if prev.mode == b.mode else (
                BlockMode.PARALLEL if b.parallelizable
                else BlockMode.SEQUENTIAL)
            fused.append(DistributedBlock(
                tuple(sorted(prev.stmts + b.stmts)), mode))
        else:
            fused.append(b)
    return tuple(fused)
