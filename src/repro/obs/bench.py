"""Versioned benchmark snapshots and regression comparison.

``repro bench --record`` measures every scheme × backend combination
of the DOALL benchmark loop and writes a schema-validated
``BENCH_<pr>.json`` snapshot: wall time, speedup vs the sequential
interpreter, the :class:`~repro.obs.phases.PhaseProfiler` phase
breakdown, and the Section-7 predicted ``Sp_at`` / ``T_b`` / ``T_d`` /
``T_a`` terms next to their measured wall-clock analogs.  A sequence
of committed snapshots is the repo's performance trajectory —
``repro bench --against BENCH_5.json`` replays the measurement and
reports per-row verdicts (improvement / within tolerance /
regression).

Two design decisions worth knowing:

* **Comparisons are machine-relative.**  Raw wall seconds differ
  between a laptop and a CI runner, so the comparator judges the
  *speedup-vs-sequential ratio* of new to old — both sides normalise
  by the same machine's sequential run.  The default tolerance is
  generous (25%) because small-``n`` bench loops are noisy.
* **Predicted terms stay in virtual cycles.**  ``sp_pred`` is
  dimensionless and compares directly against measured speedup
  (``sp_rel_error``); the ``t_*_pred`` terms are Section-7 cycle
  counts recorded for trend-watching, while ``t_b_meas_s`` /
  ``t_a_meas_s`` are the wall-clock partition from
  :func:`repro.runtime.costs.breakdown_from_phases`.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BENCH_VERSION", "DEFAULT_TOLERANCE", "BenchRun", "BenchSnapshot",
    "ComparisonRow", "BenchComparison", "default_pr_number",
    "measure_bench", "record_bench", "compare_snapshots",
    "render_snapshot", "pool_amortization", "render_pool_amortization",
]

#: Snapshot schema version; bump on any incompatible payload change.
BENCH_VERSION = 1

#: Default relative tolerance on the speedup ratio before a row is a
#: regression.  Generous on purpose: small benches are noisy.
DEFAULT_TOLERANCE = 0.25

#: scheme label -> (run_parallel_real scheme, speculative?)
_SCHEMES: Tuple[Tuple[str, str, bool], ...] = (
    ("doall", "doall", False),
    ("general-2", "general-2", False),
    ("general-3", "general-3", False),
    ("speculative", "doall", True),
)


def _require_finite(name: str, value: Any, *, positive: bool = False
                    ) -> float:
    """Validate a numeric field: real, finite, optionally > 0."""
    import math
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"bench field {name!r} must be a number, "
                         f"got {value!r}")
    v = float(value)
    if not math.isfinite(v):
        raise ValueError(f"bench field {name!r} must be finite, got {v!r}")
    if positive and v <= 0.0:
        raise ValueError(f"bench field {name!r} must be positive, got {v!r}")
    return v


@dataclass
class BenchRun:
    """One measured scheme × backend cell of a snapshot."""

    loop: str
    signature: str
    scheme: str
    backend: str
    workers: int
    n: int
    work: int
    wall_seq_s: float
    wall_par_s: float
    speedup: float
    sp_pred: float
    sp_rel_error: float
    t_b_pred: float
    t_d_pred: float
    t_a_pred: float
    t_b_meas_s: float
    t_a_meas_s: float
    body_s: float
    correct: bool
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str, str, int]:
        """The identity rows are matched on across snapshots."""
        return (self.loop, self.scheme, self.backend, self.workers)

    def to_payload(self) -> Dict[str, Any]:
        """Validated plain-builtin form for JSON."""
        _require_finite("wall_seq_s", self.wall_seq_s, positive=True)
        _require_finite("wall_par_s", self.wall_par_s, positive=True)
        _require_finite("speedup", self.speedup, positive=True)
        for nm in ("sp_pred", "sp_rel_error", "t_b_pred", "t_d_pred",
                   "t_a_pred", "t_b_meas_s", "t_a_meas_s", "body_s"):
            _require_finite(nm, getattr(self, nm))
        for pname, secs in self.phases.items():
            _require_finite(f"phases[{pname}]", secs)
        return {
            "loop": self.loop, "signature": self.signature,
            "scheme": self.scheme, "backend": self.backend,
            "workers": self.workers, "n": self.n, "work": self.work,
            "wall_seq_s": self.wall_seq_s, "wall_par_s": self.wall_par_s,
            "speedup": self.speedup, "sp_pred": self.sp_pred,
            "sp_rel_error": self.sp_rel_error,
            "t_b_pred": self.t_b_pred, "t_d_pred": self.t_d_pred,
            "t_a_pred": self.t_a_pred,
            "t_b_meas_s": self.t_b_meas_s, "t_a_meas_s": self.t_a_meas_s,
            "body_s": self.body_s, "correct": self.correct,
            "phases": dict(sorted(self.phases.items())),
        }

    @classmethod
    def from_payload(cls, obj: Dict[str, Any]) -> "BenchRun":
        """Rebuild + re-validate a run from :meth:`to_payload` output."""
        for req in ("loop", "scheme", "backend", "workers",
                    "wall_seq_s", "wall_par_s", "speedup"):
            if req not in obj:
                raise ValueError(f"bench run missing field {req!r}")
        run = cls(
            loop=str(obj["loop"]),
            signature=str(obj.get("signature", "")),
            scheme=str(obj["scheme"]), backend=str(obj["backend"]),
            workers=int(obj["workers"]), n=int(obj.get("n", 0)),
            work=int(obj.get("work", 0)),
            wall_seq_s=_require_finite(
                "wall_seq_s", obj["wall_seq_s"], positive=True),
            wall_par_s=_require_finite(
                "wall_par_s", obj["wall_par_s"], positive=True),
            speedup=_require_finite(
                "speedup", obj["speedup"], positive=True),
            sp_pred=_require_finite("sp_pred", obj.get("sp_pred", 0.0)),
            sp_rel_error=_require_finite(
                "sp_rel_error", obj.get("sp_rel_error", 0.0)),
            t_b_pred=_require_finite("t_b_pred", obj.get("t_b_pred", 0.0)),
            t_d_pred=_require_finite("t_d_pred", obj.get("t_d_pred", 0.0)),
            t_a_pred=_require_finite("t_a_pred", obj.get("t_a_pred", 0.0)),
            t_b_meas_s=_require_finite(
                "t_b_meas_s", obj.get("t_b_meas_s", 0.0)),
            t_a_meas_s=_require_finite(
                "t_a_meas_s", obj.get("t_a_meas_s", 0.0)),
            body_s=_require_finite("body_s", obj.get("body_s", 0.0)),
            correct=bool(obj.get("correct", True)),
            phases={str(k): _require_finite(f"phases[{k}]", v)
                    for k, v in obj.get("phases", {}).items()},
        )
        return run


@dataclass
class BenchSnapshot:
    """A full ``BENCH_<pr>.json`` document."""

    pr: int
    created: str
    machine: Dict[str, Any]
    runs: List[BenchRun]
    version: int = BENCH_VERSION

    def to_payload(self) -> Dict[str, Any]:
        """Validated plain-builtin form for JSON."""
        if not self.runs:
            raise ValueError("bench snapshot has no runs")
        return {
            "version": self.version,
            "pr": int(self.pr),
            "created": self.created,
            "machine": dict(self.machine),
            "runs": [r.to_payload() for r in self.runs],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "BenchSnapshot":
        """Rebuild + validate a snapshot from JSON data."""
        version = int(payload.get("version", -1))
        if version != BENCH_VERSION:
            raise ValueError(
                f"unsupported bench snapshot version {version!r} "
                f"(expected {BENCH_VERSION})")
        runs = [BenchRun.from_payload(o) for o in payload.get("runs", [])]
        if not runs:
            raise ValueError("bench snapshot has no runs")
        return cls(pr=int(payload.get("pr", 0)),
                   created=str(payload.get("created", "")),
                   machine=dict(payload.get("machine", {})),
                   runs=runs, version=version)

    def save(self, path: str) -> str:
        """Write the snapshot as JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "BenchSnapshot":
        """Read and validate a snapshot file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_payload(json.load(fh))


def default_pr_number(repo_root: str = ".") -> int:
    """Guess the current PR number for the snapshot filename.

    Counts non-empty lines of ``CHANGES.md`` (one line per landed PR by
    repo convention); falls back to one past the highest committed
    ``BENCH_<k>.json``, then to 1.
    """
    changes = os.path.join(repo_root, "CHANGES.md")
    if os.path.exists(changes):
        with open(changes, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh if ln.strip()]
        if lines:
            return len(lines)
    prs = []
    for path in glob.glob(os.path.join(repo_root, "BENCH_*.json")):
        stem = os.path.basename(path)[len("BENCH_"):-len(".json")]
        if stem.isdigit():
            prs.append(int(stem))
    return max(prs) + 1 if prs else 1


def _machine_info() -> Dict[str, Any]:
    """Where this snapshot was measured (context, not compared)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def measure_bench(
    *,
    n: int = 64,
    work: int = 20_000,
    workers: int = 2,
    backends: Sequence[str] = ("threads", "procs"),
    schemes: Optional[Sequence[str]] = None,
    repeats: int = 3,
    kernels: bool = True,
    pool: bool = False,
) -> List[BenchRun]:
    """Measure every requested scheme × backend cell.

    Each cell runs the DOALL bench loop ``repeats`` times per backend
    under a :class:`~repro.obs.phases.PhaseProfiler` and keeps the
    fastest run (best-of-k suppresses scheduler jitter, the dominant
    noise at bench sizes), against one shared best-of-k sequential
    baseline, and pairs the measurement with the Section-7 prediction
    for the same loop.  Result correctness is asserted against the
    sequential reference store on every repeat, not just the kept one.

    With ``kernels=True`` (default) two vectorized-tier rows ride
    along, keyed ``scheme="kernel", backend="kernel"``: the same DOALL
    loop through :func:`repro.kernels.run_kernel`, and the pure-IR
    ``saxpy-bench`` loop where the batch win is structural rather than
    intrinsic-bound.  Kernel rows carry no Section-7 prediction (the
    cost model prices the *interpreted* schemes), so their ``sp_pred``
    / ``t_*_pred`` fields are zero, and their phase dicts hold the
    ``kernel.*`` family instead of the worker phases.

    With ``pool=True`` one warm-pool row rides along, keyed
    ``scheme="doall", backend="pool"``: the same DOALL loop submitted
    to a pre-warmed persistent :class:`~repro.service.pool.WorkerPool`
    (the warmup job that forks workers and populates the arena is NOT
    timed — amortized setup is the service's whole claim).  Paired
    with the ``("doall", "procs")`` row — which pays spawn + export on
    every call — it measures the amortization directly; see
    :func:`pool_amortization` for the verdict.

    ``pool=True`` also adds a recovery-latency row, keyed
    ``scheme="doall", backend="pool-recovery"``: the same loop is run
    journaled, its terminal record is dropped (simulating a SIGKILL
    after the last strip checkpoint), and the *timed* quantity is what
    ``repro serve --resume`` pays to complete it — journal scan, stale
    shm sweep, and checkpoint replay.  ``wall_seq_s`` stays the full
    sequential run, so the row's ``speedup`` reads as "recovery cost
    relative to redoing the job from scratch sequentially" (> 1 means
    resuming the committed prefix beat a rerun).  Prediction fields
    are zero — the Section-7 model prices execution, not recovery.
    """
    from repro.analysis.loopinfo import analyze_loop
    from repro.ir.interp import SequentialInterp
    from repro.obs import names
    from repro.obs.phases import PhaseProfiler, profiling
    from repro.obs.profiles import loop_signature
    from repro.obs.tracer import get_tracer
    from repro.planner.costmodel import predict
    from repro.planner.select import profile_loop
    from repro.runtime.costs import FREE, breakdown_from_phases
    from repro.runtime.machine import Machine
    from repro.runtime.procs import run_parallel_real
    from repro.workloads.bench import make_doall_bench

    wanted = tuple(schemes) if schemes else tuple(s for s, _, _ in _SCHEMES)
    table = {label: (real, spec) for label, real, spec in _SCHEMES}
    for label in wanted:
        if label not in table:
            raise ValueError(f"unknown bench scheme {label!r} "
                             f"(known: {sorted(table)})")

    repeats = max(1, int(repeats))
    bl = make_doall_bench(n, work)
    info = analyze_loop(bl.loop, bl.funcs)
    sig = loop_signature(bl.loop)
    machine = Machine(max(1, workers))

    reference = bl.make_store()
    t0 = time.perf_counter()
    SequentialInterp(bl.loop, bl.funcs, FREE).run(reference)
    wall_seq = time.perf_counter() - t0
    for _ in range(repeats - 1):
        t0 = time.perf_counter()
        SequentialInterp(bl.loop, bl.funcs, FREE).run(bl.make_store())
        wall_seq = min(wall_seq, time.perf_counter() - t0)

    profile = profile_loop(info, bl.make_store(), machine, bl.funcs)
    trc = get_tracer()

    runs: List[BenchRun] = []
    for label in wanted:
        real_scheme, spec = table[label]
        pred = predict(profile, max(1, workers),
                       uses_pd_test=spec, needs_undo=spec,
                       min_speedup=0.0)
        for backend in backends:
            wall_par = None
            phases: Dict[str, float] = {}
            correct = True
            for _ in range(repeats):
                store = bl.make_store()
                with profiling(PhaseProfiler()):
                    t0 = time.perf_counter()
                    res = run_parallel_real(
                        info, store, bl.funcs,
                        mode=backend, scheme=real_scheme,
                        workers=workers, u=n + 8,
                        speculative=spec,
                        test_arrays=("out",) if spec else ())
                    wall = time.perf_counter() - t0
                correct = correct and store.equals(
                    reference, rtol=1e-9, atol=1e-12)
                if wall_par is None or wall < wall_par:
                    wall_par = wall
                    phases = dict(res.stats.get("phases", {}))
            bd = breakdown_from_phases(phases)
            speedup = wall_seq / wall_par if wall_par > 0 else 0.0
            sp_err = ((pred.sp_at - speedup) / speedup
                      if speedup > 0 else 0.0)
            run = BenchRun(
                loop=bl.name, signature=sig, scheme=label,
                backend=backend, workers=workers, n=n, work=work,
                wall_seq_s=wall_seq, wall_par_s=wall_par,
                speedup=speedup, sp_pred=pred.sp_at,
                sp_rel_error=sp_err,
                t_b_pred=pred.t_b, t_d_pred=pred.t_d, t_a_pred=pred.t_a,
                t_b_meas_s=bd.t_b_s, t_a_meas_s=bd.t_a_s,
                body_s=bd.body_s,
                correct=correct,
                phases=phases)
            runs.append(run)
            if trc.enabled:
                trc.event(names.EV_COST_TELEMETRY, 0,
                          loop=bl.name, backend=backend, scheme=label,
                          sp_pred=pred.sp_at, sp_meas=speedup,
                          sp_rel_error=sp_err, t_b_pred=pred.t_b,
                          t_d_pred=pred.t_d, t_a_pred=pred.t_a,
                          wall_par_s=wall_par)
                trc.count(names.M_BENCH_RUNS)
                trc.observe(names.M_BENCH_SP_ERROR, abs(sp_err))

    if kernels:
        from repro.workloads.bench import make_saxpy_bench
        kernel_loops = [
            (bl, info, wall_seq, reference),
            _prep_kernel_loop(make_saxpy_bench(max(20_000, n * 1_500)),
                              repeats),
        ]
        for kbl, kinfo, kseq, kref in kernel_loops:
            krun = _measure_kernel_cell(kbl, kinfo, kseq, kref,
                                        workers=workers, repeats=repeats)
            if krun is not None:
                runs.append(krun)
                if trc.enabled:
                    trc.event(names.EV_COST_TELEMETRY, 0,
                              loop=krun.loop, backend="kernel",
                              scheme="kernel", sp_pred=0.0,
                              sp_meas=krun.speedup, sp_rel_error=0.0,
                              t_b_pred=0.0, t_d_pred=0.0, t_a_pred=0.0,
                              wall_par_s=krun.wall_par_s)
                    trc.count(names.M_BENCH_RUNS)

    if pool:
        ppred = predict(profile, max(1, workers),
                        uses_pd_test=False, needs_undo=False,
                        min_speedup=0.0)
        prun = _measure_pool_cell(bl, info, wall_seq, reference,
                                  workers=workers, repeats=repeats,
                                  n=n, work=work, pred=ppred)
        runs.append(prun)
        if trc.enabled:
            trc.event(names.EV_COST_TELEMETRY, 0,
                      loop=prun.loop, backend="pool",
                      scheme=prun.scheme, sp_pred=prun.sp_pred,
                      sp_meas=prun.speedup,
                      sp_rel_error=prun.sp_rel_error,
                      t_b_pred=prun.t_b_pred, t_d_pred=prun.t_d_pred,
                      t_a_pred=prun.t_a_pred,
                      wall_par_s=prun.wall_par_s)
            trc.count(names.M_BENCH_RUNS)
        rrun = _measure_recovery_cell(bl, info, wall_seq, reference,
                                      workers=workers, repeats=repeats,
                                      n=n, work=work)
        if rrun is not None:
            runs.append(rrun)
            if trc.enabled:
                trc.event(names.EV_COST_TELEMETRY, 0,
                          loop=rrun.loop, backend="pool-recovery",
                          scheme=rrun.scheme, sp_pred=0.0,
                          sp_meas=rrun.speedup, sp_rel_error=0.0,
                          t_b_pred=0.0, t_d_pred=0.0, t_a_pred=0.0,
                          wall_par_s=rrun.wall_par_s)
                trc.count(names.M_BENCH_RUNS)
    return runs


def _prep_kernel_loop(bl, repeats: int):
    """Sequential best-of-k baseline + analysis for one kernel row."""
    from repro.analysis.loopinfo import analyze_loop
    from repro.ir.interp import SequentialInterp
    from repro.runtime.costs import FREE

    info = analyze_loop(bl.loop, bl.funcs)
    reference = bl.make_store()
    t0 = time.perf_counter()
    SequentialInterp(bl.loop, bl.funcs, FREE).run(reference)
    wall_seq = time.perf_counter() - t0
    for _ in range(max(1, repeats) - 1):
        t0 = time.perf_counter()
        SequentialInterp(bl.loop, bl.funcs, FREE).run(bl.make_store())
        wall_seq = min(wall_seq, time.perf_counter() - t0)
    return bl, info, wall_seq, reference


def _measure_kernel_cell(bl, info, wall_seq: float, reference,
                         *, workers: int, repeats: int):
    """One best-of-k ``run_kernel`` row, or ``None`` on fallback.

    A fallback here means the bench loop stopped being vectorizable —
    worth surfacing (the row goes ``missing`` in the next baseline
    comparison) rather than erroring the whole recording.
    """
    from repro.errors import KernelFallback
    from repro.kernels import run_kernel
    from repro.obs.phases import PhaseProfiler, profiling
    from repro.obs.profiles import loop_signature

    wall_par = None
    phases: Dict[str, float] = {}
    correct = True
    for _ in range(max(1, repeats)):
        store = bl.make_store()
        with profiling(PhaseProfiler()) as prof:
            t0 = time.perf_counter()
            try:
                run_kernel(info, store, bl.funcs, workers=workers)
            except KernelFallback:
                return None
            wall = time.perf_counter() - t0
        correct = correct and store.equals(reference, rtol=1e-9,
                                           atol=1e-12)
        if wall_par is None or wall < wall_par:
            wall_par = wall
            phases = prof.totals_s()
    return BenchRun(
        loop=bl.name, signature=loop_signature(bl.loop),
        scheme="kernel", backend="kernel", workers=workers,
        n=int(reference["n"]) if "n" in reference else 0,
        work=0,
        wall_seq_s=wall_seq, wall_par_s=wall_par,
        speedup=wall_seq / wall_par if wall_par > 0 else 0.0,
        sp_pred=0.0, sp_rel_error=0.0,
        t_b_pred=0.0, t_d_pred=0.0, t_a_pred=0.0,
        t_b_meas_s=phases.get("kernel.lower", 0.0)
        + phases.get("kernel.dispatch", 0.0),
        t_a_meas_s=phases.get("kernel.pd", 0.0)
        + phases.get("kernel.commit", 0.0),
        body_s=phases.get("kernel.body", 0.0),
        correct=correct,
        phases=phases)


def _measure_pool_cell(bl, info, wall_seq: float, reference,
                       *, workers: int, repeats: int, n: int, work: int,
                       pred) -> BenchRun:
    """One best-of-k warm-pool row on a dedicated `WorkerPool`.

    The pool is started and warmed (one untimed job — fork, courier,
    first arena lease) before measurement, so the kept wall time is
    the marginal per-job cost a resident service pays: admission,
    lease from the warm arena, dispatch, strips, reconcile.
    """
    from repro.obs.phases import PhaseProfiler, profiling
    from repro.obs.profiles import loop_signature
    from repro.service.pool import PoolConfig, WorkerPool

    wall_par = None
    phases: Dict[str, float] = {}
    correct = True
    p = WorkerPool(PoolConfig(workers=workers)).start()
    try:
        warm = bl.make_store()
        p.submit(info, warm, bl.funcs, scheme="doall", u=n + 8)
        correct = warm.equals(reference, rtol=1e-9, atol=1e-12)
        for _ in range(max(1, repeats)):
            store = bl.make_store()
            with profiling(PhaseProfiler()):
                t0 = time.perf_counter()
                res = p.submit(info, store, bl.funcs, scheme="doall",
                               u=n + 8)
                wall = time.perf_counter() - t0
            correct = correct and store.equals(reference, rtol=1e-9,
                                               atol=1e-12)
            if wall_par is None or wall < wall_par:
                wall_par = wall
                phases = dict(res.stats.get("phases", {}))
    finally:
        p.close()
    from repro.runtime.costs import breakdown_from_phases
    bd = breakdown_from_phases(phases)
    speedup = wall_seq / wall_par if wall_par > 0 else 0.0
    sp_err = (pred.sp_at - speedup) / speedup if speedup > 0 else 0.0
    return BenchRun(
        loop=bl.name, signature=loop_signature(bl.loop),
        scheme="doall", backend="pool", workers=workers,
        n=n, work=work,
        wall_seq_s=wall_seq, wall_par_s=wall_par,
        speedup=speedup, sp_pred=pred.sp_at, sp_rel_error=sp_err,
        t_b_pred=pred.t_b, t_d_pred=pred.t_d, t_a_pred=pred.t_a,
        t_b_meas_s=bd.t_b_s, t_a_meas_s=bd.t_a_s, body_s=bd.body_s,
        correct=correct, phases=phases)


def _measure_recovery_cell(bl, info, wall_seq: float, reference, *,
                           workers: int, repeats: int, n: int,
                           work: int) -> Optional[BenchRun]:
    """One best-of-k pool-recovery-latency row.

    Crash-sim per repeat: the DOALL bench job runs journaled and
    speculative (so strip checkpoints commit), then its terminal
    ``done`` record is dropped — the journal now ends exactly as a
    SIGKILL between the last checkpoint and completion would leave
    it.  The timed quantity is the full ``--resume`` path on a fresh
    journal handle and pool: scan, stale-segment sweep, and replay
    from the committed prefix, verified bit-comparable against the
    sequential reference.
    """
    import tempfile

    from repro.obs.profiles import loop_signature
    from repro.service.journal import JobJournal, resume_jobs
    from repro.service.pool import PoolConfig, WorkerPool

    wall_par = None
    correct = True
    resumed_from = 0
    for _ in range(max(1, repeats)):
        with tempfile.TemporaryDirectory() as d:
            journal = JobJournal(d)
            p = WorkerPool(PoolConfig(workers=workers), journal=journal)
            try:
                st = bl.make_store()
                p.submit(info, st, bl.funcs, scheme="doall",
                         workers=workers, u=n + 8,
                         strip=max(8, n // 8), speculative=True,
                         test_arrays=("out",),
                         job_key="recovery-bench")
            finally:
                p.close()
            journal.close()
            with open(journal.path, "r", encoding="utf-8") as fh:
                lines = [ln for ln in fh if '"t":"done"' not in ln]
            with open(journal.path, "w", encoding="utf-8") as fh:
                fh.writelines(lines)

            j2 = JobJournal(d)
            p2 = WorkerPool(PoolConfig(workers=workers), journal=j2)
            try:
                t0 = time.perf_counter()
                outs = resume_jobs(j2, p2,
                                   funcs_for=lambda job: bl.funcs)
                wall = time.perf_counter() - t0
            finally:
                p2.close()
            j2.close()
            if len(outs) != 1:
                return None         # crash-sim failed to arm
            correct = correct and outs[0].store.equals(
                reference, rtol=1e-9, atol=1e-12)
            if wall_par is None or wall < wall_par:
                wall_par = wall
                resumed_from = outs[0].resumed_from
    speedup = wall_seq / wall_par if wall_par > 0 else 0.0
    return BenchRun(
        loop=bl.name, signature=loop_signature(bl.loop),
        scheme="doall", backend="pool-recovery", workers=workers,
        n=n, work=work,
        wall_seq_s=wall_seq, wall_par_s=wall_par,
        speedup=speedup, sp_pred=0.0, sp_rel_error=0.0,
        t_b_pred=0.0, t_d_pred=0.0, t_a_pred=0.0,
        t_b_meas_s=0.0, t_a_meas_s=0.0, body_s=0.0,
        correct=correct,
        phases={"pool.recovered_jobs": wall_par,
                "journal.resumed_from": float(resumed_from)})


def pool_amortization(runs: Sequence[BenchRun]
                      ) -> Optional[Dict[str, Any]]:
    """The warm-pool-vs-cold-spawn verdict from one set of runs.

    Pairs the ``backend="pool"`` row with the same loop + scheme's
    ``backend="procs"`` row (which pays worker spawn and store export
    on every call) and reports whether the resident pool actually
    amortized that setup away.  Returns ``None`` unless both rows are
    present.
    """
    warm = next((r for r in runs if r.backend == "pool"), None)
    if warm is None:
        return None
    cold = next((r for r in runs
                 if r.backend == "procs" and r.loop == warm.loop
                 and r.scheme == warm.scheme
                 and r.workers == warm.workers), None)
    if cold is None:
        return None
    return {
        "loop": warm.loop, "scheme": warm.scheme,
        "workers": warm.workers,
        "warm_pool_s": warm.wall_par_s,
        "cold_procs_s": cold.wall_par_s,
        "ratio": (warm.wall_par_s / cold.wall_par_s
                  if cold.wall_par_s > 0 else 0.0),
        "amortized": warm.wall_par_s < cold.wall_par_s,
    }


def render_pool_amortization(verdict: Dict[str, Any]) -> str:
    """One-line text form of a :func:`pool_amortization` verdict."""
    gain = (verdict["cold_procs_s"] / verdict["warm_pool_s"]
            if verdict["warm_pool_s"] > 0 else 0.0)
    state = ("amortized" if verdict["amortized"]
             else "NOT amortized")
    return (f"pool amortization [{verdict['loop']}/{verdict['scheme']}"
            f"/{verdict['workers']}w]: warm pool "
            f"{verdict['warm_pool_s']:.4f}s vs cold procs "
            f"{verdict['cold_procs_s']:.4f}s -> {gain:.2f}x ({state})")


def record_bench(
    path: Optional[str] = None,
    *,
    pr: Optional[int] = None,
    repo_root: str = ".",
    profiles_path: Optional[str] = None,
    **measure_kwargs: Any,
) -> Tuple[BenchSnapshot, str]:
    """Measure, snapshot, and persist ``BENCH_<pr>.json``.

    Also folds each run into the per-loop :class:`ProfileStore` at
    ``profiles_path`` (default ``<repo_root>/BENCH_PROFILES.json``) —
    the substrate future adaptive scheme selection reads.  Returns
    ``(snapshot, path_written)``.
    """
    from repro.obs.profiles import ProfileStore

    pr_num = pr if pr is not None else default_pr_number(repo_root)
    runs = measure_bench(**measure_kwargs)
    snap = BenchSnapshot(
        pr=pr_num,
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        machine=_machine_info(),
        runs=runs)
    out = path or os.path.join(repo_root, f"BENCH_{pr_num}.json")
    snap.save(out)

    ppath = profiles_path or os.path.join(repo_root, "BENCH_PROFILES.json")
    pstore = ProfileStore.load(ppath)
    for run in runs:
        pstore.observe(run.signature, scheme=run.scheme,
                       backend=run.backend, workers=run.workers,
                       wall_s=run.wall_par_s, speedup=run.speedup,
                       phases=run.phases)
    pstore.save(ppath)
    return snap, out


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a snapshot-vs-snapshot comparison."""

    loop: str
    scheme: str
    backend: str
    workers: int
    old_speedup: Optional[float]
    new_speedup: Optional[float]
    ratio: Optional[float]
    verdict: str  #: improvement | ok | regression | missing | new


@dataclass
class BenchComparison:
    """Comparison of a fresh measurement against a baseline snapshot."""

    baseline_pr: int
    tolerance: float
    rows: List[ComparisonRow]

    @property
    def regressions(self) -> List[ComparisonRow]:
        """Rows whose speedup ratio fell below ``1 - tolerance``."""
        return [r for r in self.rows if r.verdict == "regression"]

    @property
    def ok(self) -> bool:
        """True when no row regressed or went missing."""
        return not any(r.verdict in ("regression", "missing")
                       for r in self.rows)

    def render(self) -> str:
        """Fixed-width text report for the CLI."""
        lines = [
            f"bench regression report vs BENCH_{self.baseline_pr} "
            f"(tolerance {self.tolerance:.0%})",
            f"{'loop':<14} {'scheme':<12} {'backend':<8} "
            f"{'old':>7} {'new':>7} {'ratio':>7}  verdict",
        ]
        for r in self.rows:
            old = f"{r.old_speedup:.3f}" if r.old_speedup else "-"
            new = f"{r.new_speedup:.3f}" if r.new_speedup else "-"
            ratio = f"{r.ratio:.3f}" if r.ratio else "-"
            lines.append(
                f"{r.loop:<14} {r.scheme:<12} {r.backend:<8} "
                f"{old:>7} {new:>7} {ratio:>7}  {r.verdict}")
        n_reg = len(self.regressions)
        lines.append(f"{n_reg} regression(s), "
                     f"{sum(1 for r in self.rows if r.verdict == 'improvement')} "
                     f"improvement(s), "
                     f"{sum(1 for r in self.rows if r.verdict == 'ok')} "
                     f"within tolerance")
        return "\n".join(lines)


def compare_snapshots(old: BenchSnapshot, new_runs: Sequence[BenchRun],
                      *, tolerance: float = DEFAULT_TOLERANCE
                      ) -> BenchComparison:
    """Judge fresh runs against a baseline snapshot.

    Verdicts are on the ratio ``new.speedup / old.speedup`` (both
    sides normalised by the same machine's sequential baseline, so the
    comparison transfers across machines): ``>= 1 + tolerance`` is an
    improvement, ``>= 1 - tolerance`` is ok, below that a regression.
    A baseline row absent from the fresh runs is ``missing`` (counts
    as failure); a fresh row absent from the baseline is ``new``.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance!r}")
    new_by_key = {r.key: r for r in new_runs}
    old_by_key = {r.key: r for r in old.runs}
    rows: List[ComparisonRow] = []
    for key in sorted(old_by_key):
        o = old_by_key[key]
        nw = new_by_key.get(key)
        if nw is None:
            rows.append(ComparisonRow(*key, old_speedup=o.speedup,
                                      new_speedup=None, ratio=None,
                                      verdict="missing"))
            continue
        ratio = nw.speedup / o.speedup if o.speedup > 0 else 0.0
        if ratio >= 1.0 + tolerance:
            verdict = "improvement"
        elif ratio >= 1.0 - tolerance:
            verdict = "ok"
        else:
            verdict = "regression"
        rows.append(ComparisonRow(*key, old_speedup=o.speedup,
                                  new_speedup=nw.speedup, ratio=ratio,
                                  verdict=verdict))
    for key in sorted(new_by_key):
        if key not in old_by_key:
            rows.append(ComparisonRow(*key, old_speedup=None,
                                      new_speedup=new_by_key[key].speedup,
                                      ratio=None, verdict="new"))
    comp = BenchComparison(baseline_pr=old.pr, tolerance=tolerance,
                           rows=rows)
    from repro.obs import names
    from repro.obs.tracer import get_tracer
    trc = get_tracer()
    if trc.enabled and comp.regressions:
        trc.count(names.M_BENCH_REGRESSIONS, len(comp.regressions))
    return comp


def render_snapshot(snap: BenchSnapshot) -> str:
    """Fixed-width text table of a snapshot for the CLI."""
    lines = [
        f"BENCH_{snap.pr} ({snap.created}) on "
        f"{snap.machine.get('cpus', '?')} cpu(s)",
        f"{'scheme':<12} {'backend':<8} {'wall_s':>8} {'speedup':>8} "
        f"{'sp_pred':>8} {'err':>7} {'t_b_s':>7} {'t_a_s':>7} ok",
    ]
    for r in snap.runs:
        lines.append(
            f"{r.scheme:<12} {r.backend:<8} {r.wall_par_s:>8.3f} "
            f"{r.speedup:>8.3f} {r.sp_pred:>8.3f} "
            f"{r.sp_rel_error:>+7.0%} {r.t_b_meas_s:>7.3f} "
            f"{r.t_a_meas_s:>7.3f} {'y' if r.correct else 'N'}")
    return "\n".join(lines)
