"""A Fortran-flavoured mini-frontend matching the paper's figures.

The paper writes its loops in a Fortran-like pseudo-syntax
(Figure 1/2/5).  This frontend parses that notation directly, so the
paper's examples can be carried into the framework verbatim::

    integer i = 1
    while (f(i) .lt. V)
      WORK(i)
      i = i + 1
    endwhile

and::

    do i = 1, n
      if (f(i) .eq. true) then exit
      A(i) = 2 * A(i)
    enddo

Supported syntax (case-insensitive keywords):

* declarations ``integer x = expr`` / ``real x = expr`` (the type is
  recorded but ignored — the IR is dynamically typed);
* plain assignments ``x = expr`` and array stores ``A(e) = expr``;
* ``while (cond) ... endwhile`` and ``do v = lo, hi ... enddo``;
* single-line ``if (cond) then exit`` / ``if (cond) exit`` and block
  ``if (cond) then ... [else ...] endif``;
* bare calls ``WORK(args)`` (lowered to intrinsic calls);
* Fortran operators ``.lt. .le. .gt. .ge. .eq. .ne. .and. .or. .not.``
  alongside ``< <= > >= == /=``, arithmetic ``+ - * / **``;
* the literals ``true``, ``false``, ``null`` (= -1, the NULL pointer).

Array references use parentheses, Fortran-style: ``A(i)`` is an array
access when ``A`` has appeared on the left of an array store or in a
``dimension A(...)`` declaration; otherwise ``name(args)`` parses as an
intrinsic call.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set, Tuple

from repro.errors import FrontendError
from repro.frontend.pyfront import LiftedLoop
from repro.ir import nodes as ir

__all__ = ["lift_fortranish"]

_TOKEN = re.compile(r"""
    (?P<num>\d+\.\d+|\d+)
  | (?P<dotop>\.(?:lt|le|gt|ge|eq|ne|and|or|not)\.)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\*\*|<=|>=|==|/=|[-+*/<>=(),])
  | (?P<ws>\s+)
""", re.VERBOSE)

_DOTOPS = {
    ".lt.": "<", ".le.": "<=", ".gt.": ">", ".ge.": ">=",
    ".eq.": "==", ".ne.": "!=", ".and.": "and", ".or.": "or",
    ".not.": "not",
}


class _Tokens:
    """A tiny token cursor over one line."""

    def __init__(self, text: str, line_no: int) -> None:
        self.items: List[str] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN.match(text, pos)
            if m is None:
                raise FrontendError(
                    f"line {line_no}: cannot tokenize at {text[pos:]!r}")
            pos = m.end()
            if m.lastgroup == "ws":
                continue
            tok = m.group(0)
            self.items.append(_DOTOPS.get(tok.lower(), tok))
        self.i = 0
        self.line_no = line_no

    def peek(self) -> Optional[str]:
        return self.items[self.i] if self.i < len(self.items) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise FrontendError(f"line {self.line_no}: unexpected end")
        self.i += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise FrontendError(
                f"line {self.line_no}: expected {tok!r}, got {got!r}")

    def done(self) -> bool:
        return self.i >= len(self.items)


class _Parser:
    """Recursive-descent parser over the line-oriented source."""

    def __init__(self, source: str) -> None:
        self.lines: List[Tuple[int, str]] = []
        for no, raw in enumerate(source.splitlines(), 1):
            text = raw.split("!", 1)[0].strip()
            if text:
                self.lines.append((no, text))
        self.pos = 0
        self.arrays: Set[str] = set()
        self.scalars: Set[str] = set()
        self.intrinsics: Set[str] = set()

    # -- line plumbing ------------------------------------------------------
    def peek_line(self) -> Optional[str]:
        if self.pos < len(self.lines):
            return self.lines[self.pos][1]
        return None

    def next_line(self) -> Tuple[int, str]:
        if self.pos >= len(self.lines):
            raise FrontendError("unexpected end of input")
        out = self.lines[self.pos]
        self.pos += 1
        return out

    # -- expressions ---------------------------------------------------------
    def expr(self, t: _Tokens) -> ir.Expr:
        return self._or(t)

    def _or(self, t: _Tokens) -> ir.Expr:
        left = self._and(t)
        while t.peek() == "or":
            t.next()
            left = ir.BinOp("or", left, self._and(t))
        return left

    def _and(self, t: _Tokens) -> ir.Expr:
        left = self._not(t)
        while t.peek() == "and":
            t.next()
            left = ir.BinOp("and", left, self._not(t))
        return left

    def _not(self, t: _Tokens) -> ir.Expr:
        if t.peek() == "not":
            t.next()
            return ir.UnaryOp("not", self._not(t))
        return self._cmp(t)

    def _cmp(self, t: _Tokens) -> ir.Expr:
        left = self._add(t)
        if t.peek() in ("<", "<=", ">", ">=", "==", "!=", "/="):
            op = t.next()
            if op == "/=":
                op = "!="
            return ir.BinOp(op, left, self._add(t))
        return left

    def _add(self, t: _Tokens) -> ir.Expr:
        left = self._mul(t)
        while t.peek() in ("+", "-"):
            op = t.next()
            left = ir.BinOp(op, left, self._mul(t))
        return left

    def _mul(self, t: _Tokens) -> ir.Expr:
        left = self._pow(t)
        while t.peek() in ("*", "/"):
            op = t.next()
            left = ir.BinOp(op, left, self._pow(t))
        return left

    def _pow(self, t: _Tokens) -> ir.Expr:
        base = self._unary(t)
        if t.peek() == "**":
            t.next()
            return ir.BinOp("**", base, self._pow(t))
        return base

    def _unary(self, t: _Tokens) -> ir.Expr:
        if t.peek() == "-":
            t.next()
            return ir.UnaryOp("-", self._unary(t))
        return self._atom(t)

    def _atom(self, t: _Tokens) -> ir.Expr:
        tok = t.next()
        if tok == "(":
            inner = self.expr(t)
            t.expect(")")
            return inner
        if re.fullmatch(r"\d+\.\d+", tok):
            return ir.Const(float(tok))
        if tok.isdigit():
            return ir.Const(int(tok))
        low = tok.lower()
        if low == "true":
            return ir.Const(True)
        if low == "false":
            return ir.Const(False)
        if low == "null":
            return ir.Const(ir.NULL)
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", tok):
            raise FrontendError(
                f"line {t.line_no}: unexpected token {tok!r}")
        if t.peek() == "(":
            t.next()
            args: List[ir.Expr] = []
            if t.peek() != ")":
                args.append(self.expr(t))
                while t.peek() == ",":
                    t.next()
                    args.append(self.expr(t))
            t.expect(")")
            if tok in self.arrays:
                if len(args) != 1:
                    raise FrontendError(
                        f"line {t.line_no}: array {tok} needs one index")
                return ir.ArrayRef(tok, args[0])
            if low == "next" and len(args) == 2 \
                    and isinstance(args[0], ir.Var):
                return ir.Next(args[0].name, args[1])
            self.intrinsics.add(tok)
            return ir.Call(tok, args)
        self.scalars.add(tok)
        return ir.Var(tok)

    # -- statements ------------------------------------------------------------
    def block(self, terminators: Tuple[str, ...]) -> List[ir.Stmt]:
        out: List[ir.Stmt] = []
        while True:
            line = self.peek_line()
            if line is None:
                raise FrontendError(
                    f"missing {' / '.join(terminators)}")
            head = line.split("(", 1)[0].strip().lower()
            first_word = head.split()[0] if head.split() else \
                line.lower()
            if line.lower() in terminators \
                    or first_word in terminators:
                return [self._lower_nested(s) for s in out]
            out.extend(self.statement())

    @staticmethod
    def _lower_nested(s: ir.Stmt) -> ir.Stmt:
        """Lower a nested ``do`` marker to an inner ``For``.

        Fortran's ``exit`` leaves the innermost do, but the IR's
        ``Exit`` leaves the *top-level* loop — so nested DOs with exits
        are rejected rather than silently mistranslated.  Nested
        ``while`` is not supported (the paper's loops never nest
        general WHILEs).
        """
        if isinstance(s, _DoMarker):
            from repro.ir.visitor import contains_exit
            if contains_exit(s.body):
                raise FrontendError(
                    "exit inside a nested do is not supported (IR Exit "
                    "leaves the outer loop)")
            # DO bounds are inclusive; For's upper bound is exclusive.
            return ir.For(s.var, s.lo, ir.BinOp("+", s.hi, ir.Const(1)),
                          s.body)
        if isinstance(s, _WhileMarker):
            raise FrontendError("nested while loops are not supported")
        return s

    def statement(self) -> List[ir.Stmt]:
        no, line = self.next_line()
        low = line.lower()

        m = re.match(r"(integer|real|pointer|logical)\s+(.*)", low)
        if m:
            rest = line[len(m.group(1)):].strip()
            if "=" not in rest:
                # bare declaration: record the name, emit nothing
                self.scalars.add(rest.split()[0])
                return []
            line = rest
            low = line.lower()

        if low.startswith("dimension "):
            for name in re.findall(r"([A-Za-z_][A-Za-z_0-9]*)\s*\(",
                                   line[len("dimension"):]):
                self.arrays.add(name)
            return []

        if low.startswith("while"):
            t = _Tokens(line[len("while"):], no)
            t.expect("(")
            cond = self.expr(t)
            t.expect(")")
            body = self.block(("endwhile",))
            self.next_line()  # consume endwhile
            return [_WhileMarker(cond, tuple(body))]  # type: ignore[list-item]

        if low.startswith("do "):
            m = re.match(r"do\s+([A-Za-z_][A-Za-z_0-9]*)\s*=\s*(.*)",
                         line, re.IGNORECASE)
            if not m:
                raise FrontendError(f"line {no}: malformed do")
            var = m.group(1)
            t = _Tokens(m.group(2), no)
            lo = self.expr(t)
            t.expect(",")
            hi = self.expr(t)
            body = self.block(("enddo",))
            self.next_line()
            self.scalars.add(var)
            return [_DoMarker(var, lo, hi, tuple(body))]  # type: ignore[list-item]

        if low.startswith("if"):
            t = _Tokens(line[2:], no)
            t.expect("(")
            cond = self.expr(t)
            t.expect(")")
            rest = " ".join(t.items[t.i:]).lower()
            if rest in ("then exit", "exit"):
                return [ir.If(cond, [ir.Exit()])]
            if rest == "then":
                then = self.block(("else", "endif"))
                _, nxt = self.next_line()
                orelse: List[ir.Stmt] = []
                if nxt.lower() == "else":
                    orelse = self.block(("endif",))
                    self.next_line()
                return [ir.If(cond, then, orelse)]
            # single-line body: `if (c) stmt`
            tail = self._tail_after_cond(line, no)
            sub = _Parser.__new__(_Parser)
            sub.__dict__ = {**self.__dict__}
            sub.lines = [(no, tail)]
            sub.pos = 0
            sub.arrays, sub.scalars, sub.intrinsics = \
                self.arrays, self.scalars, self.intrinsics
            return [ir.If(cond, sub.statement())]

        if low == "exit":
            return [ir.Exit()]

        # assignment or bare call
        t = _Tokens(line, no)
        name = t.next()
        if t.peek() == "(":
            # could be array store `A(i) = e` or a bare call `WORK(i)`
            t.next()
            first = self.expr(t) if t.peek() != ")" else None
            args = [first] if first is not None else []
            while t.peek() == ",":
                t.next()
                args.append(self.expr(t))
            t.expect(")")
            if t.peek() == "=":
                t.next()
                value = self.expr(t)
                if len(args) != 1:
                    raise FrontendError(
                        f"line {no}: array store needs one index")
                self.arrays.add(name)
                self.scalars.discard(name)
                return [ir.ArrayAssign(name, args[0], value)]
            self.intrinsics.add(name)
            return [ir.ExprStmt(ir.Call(name, args))]
        t.expect("=")
        value = self.expr(t)
        self.scalars.add(name)
        return [ir.Assign(name, value)]

    @staticmethod
    def _tail_after_cond(line: str, no: int) -> str:
        depth = 0
        for i, ch in enumerate(line):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return line[i + 1:].strip()
        raise FrontendError(f"line {no}: unbalanced parentheses")


class _WhileMarker(ir.Stmt):
    """Parser-internal: a while construct awaiting top-level placement."""

    def __init__(self, cond: ir.Expr, body: Tuple[ir.Stmt, ...]) -> None:
        self.cond = cond
        self.body = body


class _DoMarker(ir.Stmt):
    """Parser-internal: a do construct awaiting top-level placement."""

    def __init__(self, var: str, lo: ir.Expr, hi: ir.Expr,
                 body: Tuple[ir.Stmt, ...]) -> None:
        self.var = var
        self.lo = lo
        self.hi = hi
        self.body = body


def lift_fortranish(source: str, *, name: str = "fortran-loop",
                    arrays: Tuple[str, ...] = ()) -> LiftedLoop:
    """Parse a Fortran-flavoured loop into the IR.

    Parameters
    ----------
    source:
        The loop text (one ``while``/``endwhile`` or ``do``/``enddo``
        at top level, optionally preceded by declarations and
        initializations; ``!`` starts a comment).
    name:
        Loop name for reports.
    arrays:
        Names to pre-register as arrays (needed when a name's first
        appearance is a *read* like ``A(i)``, which would otherwise
        parse as a call).
    """
    parser = _Parser(source)
    parser.arrays.update(arrays)
    init: List[ir.Stmt] = []
    loop: Optional[ir.Loop] = None
    while parser.peek_line() is not None:
        stmts = parser.statement()
        for s in stmts:
            if isinstance(s, _WhileMarker):
                if loop is not None:
                    raise FrontendError("exactly one top-level loop "
                                        "expected")
                loop = ir.Loop(init, s.cond, s.body, name=name)
            elif isinstance(s, _DoMarker):
                if loop is not None:
                    raise FrontendError("exactly one top-level loop "
                                        "expected")
                loop = ir.DoLoop(s.var, s.lo, s.hi, s.body,
                                 name=name).normalize()
            elif loop is None:
                init.append(s)
            else:
                raise FrontendError("statements after the loop are "
                                    "not supported")
    if loop is None:
        raise FrontendError("no while/do loop found")
    scalars = parser.scalars - parser.arrays
    return LiftedLoop(
        loop=loop,
        arrays=tuple(sorted(parser.arrays)),
        lists=(),
        scalars=tuple(sorted(scalars)),
        intrinsics=tuple(sorted(parser.intrinsics)),
    )
