"""SPICE ``LOAD`` Loop 40 analog (paper Section 9, Figure 6).

The original loop traverses the linked list of capacitor device
models, loading each device's stamp into the circuit matrix:

* dispatcher: a pointer walking the device list (general recurrence),
* terminator: ``tmp == NULL`` — remainder invariant, so **no
  overshoot, no backups, no time-stamps**,
* remainder: little work per device ("Even though the body in Loop 40
  does little work, we obtained a very good speedup").

The paper measured General-1 (locks) at 2.9× and General-3 (no locks)
at 4.9× on 8 processors, the gap being the cost of serializing
``next()`` in a critical section.  The synthetic device list preserves
exactly those proportions: a ~45-cycle device-load kernel against a
4-cycle pointer hop.

SPICE builds its device lists incrementally, so traversal order is
uncorrelated with memory order — the list is scrambled.
"""

from __future__ import annotations

import numpy as np

from repro.executors.general import run_general1, run_general2, run_general3
from repro.ir.functions import FunctionTable
from repro.ir.nodes import (
    Assign,
    Call,
    Const,
    ExprStmt,
    Next,
    Var,
    WhileLoop,
    ne_,
)
from repro.ir.store import Store
from repro.structures.linkedlist import build_chain
from repro.workloads.base import Method, Workload

__all__ = ["make_spice_load40"]


def _load_capacitor(ctx, dev: int):
    """Load one capacitor model: read its value and node assignments,
    compute the conductance stamp, write the matrix/RHS entries.

    Reads/writes go through the context, so instrumentation (when this
    loop is run speculatively) observes them.  Each device owns its
    matrix slots, so iterations are independent — the property the
    paper verified by hand for this loop.
    """
    val = ctx.read("cval", dev)
    n1 = ctx.read("cnode", dev)
    geq = val * 2.0 + 1.0e-9
    ctx.write("gmat", dev, geq)
    ctx.write("rhs", dev, geq * (n1 % 7))
    return 0


def make_spice_load40(n_devices: int = 2000, *,
                      seed: int = 40) -> Workload:
    """Build the Loop 40 analog with ``n_devices`` list nodes."""
    rng = np.random.default_rng(seed)
    chain = build_chain(n_devices, rng=rng, scramble=True)

    funcs = FunctionTable()
    funcs.register("load_capacitor", _load_capacitor, cost=38,
                   reads=("cval", "cnode"), writes=("gmat", "rhs"))

    loop = WhileLoop(
        init=[Assign("tmp", Const(chain.head))],
        cond=ne_(Var("tmp"), Const(-1)),
        body=[
            ExprStmt(Call("load_capacitor", [Var("tmp")])),
            Assign("tmp", Next("devlist", Var("tmp"))),
        ],
        name="spice-load-loop40",
    )

    def make_store() -> Store:
        r = np.random.default_rng(seed + 1)
        return Store({
            "devlist": chain,
            "cval": r.lognormal(0.0, 1.0, n_devices),
            "cnode": r.integers(1, 64, n_devices).astype(np.int64),
            "gmat": np.zeros(n_devices),
            "rhs": np.zeros(n_devices),
            "tmp": 0,
        })

    return Workload(
        name="spice-load40",
        description=("SPICE LOAD loop 40: linked-list traversal of "
                     "capacitor device models, RI terminator (NULL), "
                     "no backups or time-stamps"),
        loop=loop,
        funcs=funcs,
        make_store=make_store,
        methods=(
            Method("General-1 (locks)", run_general1),
            Method("General-2 (static)", run_general2),
            Method("General-3 (no locks)", run_general3),
        ),
        paper_speedups={
            "General-1 (locks)": 2.9,
            "General-3 (no locks)": 4.9,
        },
    )
