"""Integration tests: the top-level parallelize() API end to end."""

import numpy as np
import pytest

from repro import (
    ArrayAssign,
    ArrayRef,
    Assign,
    Const,
    ExecutionError,
    FunctionTable,
    Machine,
    Store,
    Var,
    WhileLoop,
    le_,
    parallelize,
)

from tests.conftest import (
    list_loop,
    list_store,
    rv_exit_loop,
    rv_exit_store,
    simple_doall_loop,
    simple_doall_store,
)


class TestParallelize:
    def test_doall_verified(self, machine8):
        st = simple_doall_store(80)
        out = parallelize(simple_doall_loop(), st, machine8)
        assert out.verified
        assert out.plan.scheme == "induction-2"
        assert out.speedup > 1

    def test_list_loop_general3(self, machine8):
        st = list_store(60)
        out = parallelize(list_loop(), st, machine8)
        assert out.verified
        assert out.plan.scheme == "general-3"

    def test_rv_exit_loop(self, machine8):
        st = rv_exit_store(90, 47)
        out = parallelize(rv_exit_loop(), st, machine8)
        assert out.verified
        assert out.result.n_iters == 47

    def test_speculative_path(self, machine8):
        loop = WhileLoop(
            [Assign("i", Const(1))], le_(Var("i"), Var("n")),
            [ArrayAssign("A", ArrayRef("idx", Var("i") - 1), Var("i")),
             Assign("i", Var("i") + 1)], name="spec")
        n = 50
        idx = np.random.default_rng(0).permutation(n).astype(np.int64)
        st = Store({"A": np.zeros(n, dtype=np.int64), "idx": idx,
                    "n": n, "i": 0})
        out = parallelize(loop, st, machine8)
        assert out.verified
        assert out.plan.scheme == "speculative"
        assert not out.result.fallback_sequential

    def test_speculative_fallback_still_correct(self, machine8):
        loop = WhileLoop(
            [Assign("i", Const(1))], le_(Var("i"), Var("n")),
            [ArrayAssign("A", ArrayRef("idx", Var("i") - 1),
                         ArrayRef("A", Const(0)) + Var("i")),
             Assign("i", Var("i") + 1)], name="collides")
        n = 40
        idx = np.zeros(n, dtype=np.int64)  # every iteration hits A[0]
        st = Store({"A": np.zeros(4, dtype=np.int64), "idx": idx,
                    "n": n, "i": 0})
        out = parallelize(loop, st, machine8)
        assert out.verified
        assert out.result.fallback_sequential

    def test_sequential_plan_for_tiny(self, machine8):
        st = simple_doall_store(1)
        out = parallelize(simple_doall_loop(), st, machine8,
                          min_speedup=1.5)
        assert out.plan.scheme == "sequential"
        assert out.verified

    def test_verify_off_skips_check(self, machine8):
        st = simple_doall_store(30)
        out = parallelize(simple_doall_loop(), st, machine8,
                          verify=False)
        assert out.verified is None

    def test_explicit_bound_and_strip(self, machine8):
        st = simple_doall_store(40)
        out = parallelize(simple_doall_loop(), st, machine8, strip=8)
        assert out.verified

    def test_outcome_fields(self, machine8):
        st = simple_doall_store(40)
        out = parallelize(simple_doall_loop(), st, machine8)
        assert out.t_seq > 0
        assert out.result.t_par > 0
        assert out.plan.rationale
