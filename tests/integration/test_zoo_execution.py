"""Integration: execute every Table-1 zoo loop through the full driver.

This ties the taxonomy's *predictions* to *observed* behaviour: cells
that promise no overshoot must execute without undoing anything, and
every cell must verify against the sequential reference.
"""

import pytest

from repro import Machine, parallelize
from repro.workloads import make_zoo

ZOO = {z.name: z for z in make_zoo()}


@pytest.mark.parametrize("name", sorted(ZOO))
def test_zoo_loop_parallelizes_and_verifies(name):
    z = ZOO[name]
    out = parallelize(z.loop, z.make_store(), Machine(8), z.funcs,
                      min_speedup=0.0)
    assert out.verified, name


@pytest.mark.parametrize("name", sorted(ZOO))
def test_no_overshoot_cells_never_undo(name):
    z = ZOO[name]
    out = parallelize(z.loop, z.make_store(), Machine(8), z.funcs,
                      min_speedup=0.0)
    if not z.expect_overshoot and not out.result.fallback_sequential:
        assert out.result.overshot == 0, name
        assert out.result.restored_words == 0, name


@pytest.mark.parametrize("name", sorted(ZOO))
def test_zoo_scales_with_processors(name):
    """t_par at 8 processors never exceeds t_par at 1 by more than the
    fixed parallelization overheads (a weak but universal sanity law)."""
    z = ZOO[name]
    t = {}
    for p in (1, 8):
        out = parallelize(z.loop, z.make_store(), Machine(p), z.funcs,
                          min_speedup=0.0)
        t[p] = out.result.t_par
    assert t[8] <= t[1] * 1.6 + 500, name
