"""Persistent, fault-tolerant worker-pool service (``backend="pool"``).

Where the per-call ``procs`` backend forks a fresh crew of workers and
exports a fresh set of shared-memory segments for *every*
``parallelize`` call, this package keeps both alive across calls:

* :mod:`repro.service.pool` — pre-forked workers with heartbeats, a
  message-coordinated strip protocol, per-job retry over a
  pool-flavoured degradation ladder, and graceful drain;
* :mod:`repro.service.arenas` — a leased shared-memory arena: sized
  segment pools, lease tokens with TTLs, an idempotent sweeper
  extending the per-call atexit leak guard;
* :mod:`repro.service.admission` — the bounded admission queue,
  per-job deadlines, Section-7 ``Spat`` load shedding, retry budgets
  and per-scheme circuit breakers;
* :mod:`repro.service.courier` — function transport: jobs cross the
  pre-fork boundary by queue, so closures and lambdas that defeat
  standard pickling travel by value (marshalled code objects).

See ``docs/service.md`` for the lifecycle and failure-mode tables.
"""

from repro.service.admission import (
    AdmissionController,
    CircuitBreaker,
    RetryPolicy,
)
from repro.service.arenas import Arena, ArenaConfig, Lease
from repro.service.pool import PoolConfig, WorkerPool, get_default_pool

__all__ = [
    "Arena", "ArenaConfig", "Lease",
    "AdmissionController", "CircuitBreaker", "RetryPolicy",
    "PoolConfig", "WorkerPool", "get_default_pool",
]
