"""Trace sinks: where tracer records go.

Four implementations:

* :class:`NullSink` — drops everything; the zero-cost default.
* :class:`MemorySink` — keeps records in lists (tests, ad-hoc digging).
* :class:`JsonlSink` — one JSON object per line, streamed to a file.
* :class:`PerfettoSink` — accumulates Chrome ``trace_event`` records
  and writes a ``chrome://tracing`` / https://ui.perfetto.dev loadable
  JSON file.

Plus :func:`chrome_trace_of_run`, which converts any recorded
``DoallRun`` schedule directly into the same ``trace_event`` format —
a one-call way to *look* at a schedule without re-running under a
tracer.

Virtual cycles are reported as microseconds in the Chrome format
(``ts``/``dur`` are µs there); the scale is arbitrary but consistent,
so relative timing — all the paper cares about — is preserved.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, List, Optional, Union

from repro.obs.events import Event, Span

__all__ = [
    "Sink", "NullSink", "MemorySink", "JsonlSink", "PerfettoSink",
    "MultiSink", "chrome_trace_of_run", "write_chrome_trace",
]


class Sink:
    """Receiver interface for tracer records."""

    def emit_event(self, event: Event) -> None:
        raise NotImplementedError

    def emit_span(self, span: Span) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class NullSink(Sink):
    """Discards everything (the default; keeps tracing zero-cost)."""

    def emit_event(self, event: Event) -> None:
        pass

    def emit_span(self, span: Span) -> None:
        pass


class MemorySink(Sink):
    """Collects records in memory, in emission order."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self.spans: List[Span] = []

    def emit_event(self, event: Event) -> None:
        self.events.append(event)

    def emit_span(self, span: Span) -> None:
        self.spans.append(span)

    def records(self) -> List[Union[Event, Span]]:
        """All records merged, ordered by timestamp then kind."""
        both: List[Union[Event, Span]] = [*self.events, *self.spans]
        both.sort(key=lambda r: (r.ts if isinstance(r, Event) else r.start))
        return both

    def by_name(self, name: str) -> List[Union[Event, Span]]:
        return [r for r in self.records() if r.name == name]


class JsonlSink(Sink):
    """Streams records as JSON lines to a path or file object."""

    def __init__(self, target: Union[str, io.TextIOBase]) -> None:
        if isinstance(target, str):
            self._fh: Any = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.n_records = 0

    def _write(self, payload: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(payload, default=_jsonable,
                                  sort_keys=True))
        self._fh.write("\n")
        self.n_records += 1

    def emit_event(self, event: Event) -> None:
        self._write(event.to_dict())

    def emit_span(self, span: Span) -> None:
        self._write(span.to_dict())

    def write_record(self, payload: Dict[str, Any]) -> None:
        """Append an arbitrary record (e.g. a final metrics snapshot)."""
        self._write(dict(payload))

    def close(self) -> None:
        if self._owns and not self._fh.closed:
            self._fh.close()
        else:
            self._fh.flush()


class PerfettoSink(Sink):
    """Accumulates Chrome ``trace_event`` records.

    Spans become complete ("X") events on thread ``pid`` (one trace
    thread per virtual processor); instants become "i" events.  Call
    :meth:`write` (or :meth:`close` after constructing with a path) to
    produce the JSON file.
    """

    def __init__(self, path: Optional[str] = None, *,
                 process_name: str = "repro virtual machine") -> None:
        self.path = path
        self.process_name = process_name
        self.trace_events: List[Dict[str, Any]] = []

    def _tid(self, pid: int) -> int:
        # Chrome wants non-negative thread ids; fold the "no
        # processor" pid -1 onto a dedicated control thread.
        return pid if pid >= 0 else 10_000

    def emit_span(self, span: Span) -> None:
        self.trace_events.append({
            "name": span.name, "ph": "X", "ts": span.start,
            "dur": max(span.duration, 0), "pid": 0,
            "tid": self._tid(span.pid),
            "args": {k: _jsonable(v) for k, v in span.attrs},
        })

    def emit_event(self, event: Event) -> None:
        self.trace_events.append({
            "name": event.name, "ph": "i", "ts": event.ts, "pid": 0,
            "tid": self._tid(event.pid), "s": "t",
            "args": {k: _jsonable(v) for k, v in event.attrs},
        })

    def thread_names(self, nprocs: int) -> List[Dict[str, Any]]:
        """Metadata records labelling the virtual processors."""
        meta = [{"name": "process_name", "ph": "M", "pid": 0,
                 "args": {"name": self.process_name}}]
        for pid in range(nprocs):
            meta.append({"name": "thread_name", "ph": "M", "pid": 0,
                         "tid": pid, "args": {"name": f"proc {pid}"}})
        meta.append({"name": "thread_name", "ph": "M", "pid": 0,
                     "tid": 10_000, "args": {"name": "control"}})
        return meta

    def write(self, path: Optional[str] = None, *,
              nprocs: Optional[int] = None) -> str:
        """Write the accumulated trace; returns the path written."""
        path = path or self.path
        if path is None:
            raise ValueError("PerfettoSink needs a path to write to")
        n = nprocs if nprocs is not None else 1 + max(
            (e.get("tid", 0) for e in self.trace_events
             if e.get("tid", 0) < 10_000), default=0)
        write_chrome_trace(path, self.thread_names(n) + self.trace_events)
        return path

    def close(self) -> None:
        if self.path is not None:
            self.write()


class MultiSink(Sink):
    """Fans every record out to several sinks."""

    def __init__(self, *sinks: Sink) -> None:
        self.sinks = tuple(sinks)

    def emit_event(self, event: Event) -> None:
        for s in self.sinks:
            s.emit_event(event)

    def emit_span(self, span: Span) -> None:
        for s in self.sinks:
            s.emit_span(span)

    def close(self) -> None:
        for s in self.sinks:
            s.close()


def _jsonable(value: Any) -> Any:
    """Best-effort plain-builtin conversion for record payloads."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def chrome_trace_of_run(run: Any, *, name: str = "doall"
                        ) -> List[Dict[str, Any]]:
    """Convert a recorded ``DoallRun`` into ``trace_event`` records.

    ``run`` is duck-typed (``items``, ``proc_finish``, ``quit_index``)
    so this module never imports the runtime package.  Combine with
    :func:`write_chrome_trace` to get a loadable file::

        write_chrome_trace("run.json", chrome_trace_of_run(run))
    """
    out: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": f"repro {name} schedule"}},
    ]
    for pid in range(len(run.proc_finish)):
        out.append({"name": "thread_name", "ph": "M", "pid": 0,
                    "tid": pid, "args": {"name": f"proc {pid}"}})
    for item in run.items:
        out.append({
            "name": f"iter {item.index}", "ph": "X", "ts": item.start,
            "dur": max(item.end - item.start, 0), "pid": 0,
            "tid": item.pid,
            "args": {"index": item.index,
                     "outcome": item.outcome or "done"},
        })
        if item.outcome == "quit":
            out.append({"name": "QUIT", "ph": "i", "ts": item.end,
                        "pid": 0, "tid": item.pid, "s": "g",
                        "args": {"index": item.index}})
    if run.skipped:
        out.append({"name": "skipped", "ph": "i", "ts": run.makespan,
                    "pid": 0, "tid": 0, "s": "g",
                    "args": {"count": len(run.skipped),
                             "first": min(run.skipped),
                             "last": max(run.skipped)}})
    return out


def write_chrome_trace(path: str, trace_events: List[Dict[str, Any]],
                       *, metadata: Optional[Dict[str, Any]] = None) -> str:
    """Write ``trace_events`` as a Chrome/Perfetto JSON trace file."""
    doc: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs",
                      "clock": "virtual cycles (1 cycle = 1 us)"},
    }
    if metadata:
        doc["otherData"].update(metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, default=_jsonable)
    return path
