"""Regression tests for idempotent shared-memory segment release.

The per-call atexit guard (PR 3) and the service arena (PR 8) can both
end up releasing the *same* segment — e.g. an arena segment the
pool already unlinked when the per-call sweep fires at exit.  Before
:func:`repro.runtime.shm.release_segment`, the second unlink raised
``FileNotFoundError`` inside ``SharedMemory.unlink`` *before* the
resource-tracker unregister, leaving a stale registration that warned
about "leaked shared_memory objects" at interpreter shutdown.
"""

from __future__ import annotations

import gc
import subprocess
import sys
from multiprocessing import shared_memory

import numpy as np

from repro.ir.store import Store
from repro.runtime.shm import (
    SharedStore,
    live_shared_stores,
    release_segment,
    sweep_shared_stores,
)


def test_release_segment_twice_is_safe():
    seg = shared_memory.SharedMemory(create=True, size=4096)
    release_segment(seg, unlink=True)
    # The second release must neither raise nor warn — the segment is
    # gone and its tracker registration already cleared.
    release_segment(seg, unlink=True)


def test_release_segment_after_external_unlink():
    # Somebody else (another sweeper, another process) unlinked the
    # segment first: release_segment must swallow the FileNotFoundError
    # *and* clear the stale resource-tracker registration.
    seg = shared_memory.SharedMemory(create=True, size=4096)
    other = shared_memory.SharedMemory(name=seg.name)
    other.close()
    other.unlink()
    release_segment(seg, unlink=True)


def test_sweep_shared_stores_idempotent():
    store = Store()
    store["a"] = np.arange(16, dtype=np.int64)
    shared = SharedStore.export(store)
    assert live_shared_stores() >= 1
    assert sweep_shared_stores() >= 1
    assert live_shared_stores() == 0
    # Second sweep finds nothing and — critically — does not trip over
    # the segments the first sweep already unlinked.
    assert sweep_shared_stores() == 0
    shared.close(unlink=True)   # triple-release of the same segments


def test_dropped_unclosed_store_releases_its_segments():
    # A SharedStore that is garbage-collected without close() must not
    # leak: _LIVE is weak (the sweep can no longer see the store), so a
    # per-store finalizer releases the segments at collection time.
    store = Store()
    store["a"] = np.arange(16, dtype=np.int64)
    spec = SharedStore.export(store).spec()   # export dropped here
    gc.collect()
    assert live_shared_stores() == 0
    name = spec.arrays[0].shm_name
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        pass   # segment was unlinked by the finalizer
    else:
        release_segment(seg, unlink=True)
        raise AssertionError("dropped store leaked segment %s" % name)


def test_double_sweep_emits_no_tracker_warnings():
    # The observable symptom of the historical bug was a
    # resource_tracker warning at interpreter exit — assert its absence
    # end-to-end in a fresh interpreter.
    code = (
        "import numpy as np\n"
        "from repro.ir.store import Store\n"
        "from repro.runtime.shm import SharedStore, sweep_shared_stores\n"
        "store = Store()\n"
        "store['a'] = np.arange(64, dtype=np.int64)\n"
        "shared = SharedStore.export(store)\n"
        "assert sweep_shared_stores() == 1\n"
        "assert sweep_shared_stores() == 0\n"
        "shared.close(unlink=True)\n"
    )
    proc = subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr
    assert "leaked shared_memory" not in proc.stderr


# -- journal lease sweep (PR 9): crashed-generation reclamation -----------

def _leased_journal(tmp_path, n_segments=2):
    """A journal naming live segments leased to an incomplete job."""
    from repro.service.journal import JobJournal
    from repro.workloads.zoo import make_zoo

    zl = next(iter(make_zoo(48)))
    journal = JobJournal(tmp_path)
    journal.record_admitted("crashed", loop=zl.loop,
                            store=zl.make_store())
    segs = [shared_memory.SharedMemory(create=True, size=4096)
            for _ in range(n_segments)]
    journal.record_lease("crashed", [s.name for s in segs])
    for s in segs:
        s.close()       # only the (dead) pool held these open
    return journal, [s.name for s in segs]


def test_journal_sweep_reclaims_crashed_generation(tmp_path):
    journal, names = _leased_journal(tmp_path)
    assert journal.sweep_stale_segments() == len(names)
    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        release_segment(seg, unlink=True)
        raise AssertionError(f"journal sweep leaked segment {name}")
    journal.close()


def test_journal_sweep_is_idempotent_across_resume_attempts(tmp_path):
    # A second --resume (or a sweep racing the dying pool's own
    # release) must find nothing and must not double-unlink.
    journal, names = _leased_journal(tmp_path)
    assert journal.sweep_stale_segments() == len(names)
    assert journal.sweep_stale_segments() == 0
    journal.close()


def test_journal_sweep_skips_completed_jobs_segments(tmp_path):
    # Terminal jobs' leases belong to a generation that shut down
    # cleanly — their names must not be touched even if a live segment
    # happens to carry the same name.
    from repro.service.journal import JobJournal
    from repro.workloads.zoo import make_zoo

    zl = next(iter(make_zoo(48)))
    journal = JobJournal(tmp_path)
    journal.record_admitted("clean", loop=zl.loop,
                            store=zl.make_store())
    seg = shared_memory.SharedMemory(create=True, size=4096)
    try:
        journal.record_lease("clean", [seg.name])
        journal.record_done("clean", zl.make_store())
        assert journal.sweep_stale_segments() == 0
        # Still attachable: the sweep left the completed job's segment.
        probe = shared_memory.SharedMemory(name=seg.name)
        probe.close()
    finally:
        release_segment(seg, unlink=True)
        journal.close()
