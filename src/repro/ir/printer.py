"""Pretty-printer: render IR trees as readable pseudo-Fortran.

Used by error messages, ``repr`` helpers, examples and documentation;
the output format intentionally mirrors the paper's figures
(``while (cond) ... endwhile``).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir.nodes import (
    ArrayAssign,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    Exit,
    Expr,
    ExprStmt,
    For,
    If,
    Loop,
    Next,
    Stmt,
    UnaryOp,
    Var,
)

__all__ = ["format_expr", "format_stmt", "format_loop"]

_PREC = {
    "or": 1, "and": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "//": 5, "%": 5,
    "**": 6,
}


def format_expr(e: Expr, prec: int = 0) -> str:
    """Render an expression, parenthesizing by precedence."""
    if isinstance(e, Const):
        return repr(e.value)
    if isinstance(e, Var):
        return e.name
    if isinstance(e, BinOp):
        if e.op in ("min", "max"):
            return f"{e.op}({format_expr(e.left)}, {format_expr(e.right)})"
        p = _PREC[e.op]
        s = f"{format_expr(e.left, p)} {e.op} {format_expr(e.right, p + 1)}"
        return f"({s})" if p < prec else s
    if isinstance(e, UnaryOp):
        if e.op == "abs":
            return f"abs({format_expr(e.operand)})"
        sep = " " if e.op == "not" else ""
        return f"{e.op}{sep}{format_expr(e.operand, 7)}"
    if isinstance(e, ArrayRef):
        return f"{e.array}[{format_expr(e.index)}]"
    if isinstance(e, Next):
        return f"next({e.list_name}, {format_expr(e.ptr)})"
    if isinstance(e, Call):
        args = ", ".join(format_expr(a) for a in e.args)
        return f"{e.fn}({args})"
    raise TypeError(f"unknown expression {type(e).__name__}")


def _format_block(stmts: Sequence[Stmt], indent: int) -> List[str]:
    lines: List[str] = []
    for s in stmts:
        lines.extend(format_stmt(s, indent))
    return lines


def format_stmt(s: Stmt, indent: int = 0) -> List[str]:
    """Render one statement as a list of indented lines."""
    pad = "  " * indent
    if isinstance(s, Assign):
        return [f"{pad}{s.name} = {format_expr(s.expr)}"]
    if isinstance(s, ArrayAssign):
        return [f"{pad}{s.array}[{format_expr(s.index)}] = {format_expr(s.expr)}"]
    if isinstance(s, ExprStmt):
        return [f"{pad}{format_expr(s.expr)}"]
    if isinstance(s, If):
        lines = [f"{pad}if {format_expr(s.cond)}:"]
        lines.extend(_format_block(s.then, indent + 1) or [f"{pad}  pass"])
        if s.orelse:
            lines.append(f"{pad}else:")
            lines.extend(_format_block(s.orelse, indent + 1))
        return lines
    if isinstance(s, Exit):
        return [f"{pad}exit"]
    if isinstance(s, For):
        hdr = f"{pad}for {s.var} in [{format_expr(s.lo)}, {format_expr(s.hi)}):"
        return [hdr] + (_format_block(s.body, indent + 1) or [f"{pad}  pass"])
    raise TypeError(f"unknown statement {type(s).__name__}")


def format_loop(loop: Loop) -> str:
    """Render a whole loop in the paper's ``while ... endwhile`` style."""
    lines: List[str] = [f"# loop {loop.name!r}"]
    lines.extend(_format_block(loop.init, 0))
    lines.append(f"while {format_expr(loop.cond)}:")
    lines.extend(_format_block(loop.body, 1) or ["  pass"])
    lines.append("endwhile")
    return "\n".join(lines)
