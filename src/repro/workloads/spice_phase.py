"""The whole SPICE LOAD phase: capacitor + BJT + MOSFET device loops.

Section 9: "Since the structure of Loop 40 is identical to those for
the evaluation of transistor models (subroutines BJT and MOSFET), the
same parallelization techniques can also be used on these loops.  We
remark that approximately 40% of the sequential execution time of
SPICE is spent in subroutine LOAD, which calls subroutines BJT and
MOSFET."

This module models that whole phase: three device lists (capacitors,
BJTs, MOSFETs) with increasing per-device model-evaluation cost, each
traversed by a Loop-40-shaped WHILE loop, plus the Amdahl projection
of whole-application speedup from parallelizing just the LOAD phase.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.executors.general import run_general1, run_general2, run_general3
from repro.executors.sequential import run_sequential
from repro.ir.functions import FunctionTable
from repro.ir.nodes import (
    Assign,
    Call,
    Const,
    ExprStmt,
    Next,
    Var,
    WhileLoop,
    ne_,
)
from repro.ir.store import Store
from repro.runtime.machine import Machine
from repro.structures.linkedlist import build_chain
from repro.workloads.base import Method, Workload

__all__ = ["DEVICE_MODELS", "make_device_loop", "load_phase_speedup",
           "amdahl_application_speedup"]

#: Device model -> (per-device evaluation cost, typical list length
#: share).  BJT and MOSFET models are far more expensive than the
#: linear capacitor stamp.
DEVICE_MODELS: Dict[str, Tuple[int, float]] = {
    "capacitor": (38, 0.5),
    "bjt": (140, 0.2),
    "mosfet": (210, 0.3),
}


def _eval_model(kind: str):
    def impl(ctx, dev: int):
        bias = ctx.read("vbias", dev)
        g = abs(bias) * 1e-3 + 1e-12
        ctx.write("gmat", dev, g)
        ctx.write("rhs", dev, g * 0.5)
        return 0
    impl.__name__ = f"eval_{kind}"
    return impl


def make_device_loop(kind: str, n_devices: int, *,
                     seed: int = 7) -> Workload:
    """One Loop-40-shaped traversal for a device class."""
    try:
        cost, _share = DEVICE_MODELS[kind]
    except KeyError:
        raise KeyError(f"unknown device model {kind!r}; choose from "
                       f"{sorted(DEVICE_MODELS)}") from None
    chain = build_chain(n_devices, scramble=True,
                        rng=np.random.default_rng(seed + len(kind)))
    funcs = FunctionTable()
    funcs.register(f"eval_{kind}", _eval_model(kind), cost=cost,
                   reads=("vbias",), writes=("gmat", "rhs"))
    loop = WhileLoop(
        init=[Assign("tmp", Const(chain.head))],
        cond=ne_(Var("tmp"), Const(-1)),
        body=[ExprStmt(Call(f"eval_{kind}", [Var("tmp")])),
              Assign("tmp", Next("devs", Var("tmp")))],
        name=f"spice-load-{kind}",
    )

    def make_store() -> Store:
        r = np.random.default_rng(seed)
        return Store({
            "devs": chain,
            "vbias": r.normal(0.7, 0.2, n_devices),
            "gmat": np.zeros(n_devices),
            "rhs": np.zeros(n_devices),
            "tmp": 0,
        })

    return Workload(
        name=f"spice-{kind}",
        description=f"SPICE LOAD: {kind} model evaluation list",
        loop=loop,
        funcs=funcs,
        make_store=make_store,
        methods=(
            Method("General-1 (locks)", run_general1),
            Method("General-2 (static)", run_general2),
            Method("General-3 (no locks)", run_general3),
        ),
    )


def load_phase_speedup(machine: Machine, *, n_total: int = 1200,
                       method_label: str = "General-3 (no locks)"
                       ) -> Tuple[float, Dict[str, float]]:
    """Speedup of the whole LOAD phase (all three device loops).

    The loops run back to back (as LOAD calls them); the phase speedup
    is the ratio of summed sequential to summed parallel times.
    Returns ``(phase_speedup, per_loop_speedups)``.
    """
    t_seq_total = 0
    t_par_total = 0
    per_loop: Dict[str, float] = {}
    for kind, (_cost, share) in DEVICE_MODELS.items():
        w = make_device_loop(kind, max(8, int(n_total * share)))
        seq = run_sequential(w.loop, w.make_store(), machine, w.funcs)
        st = w.make_store()
        res = w.method(method_label).runner(w.loop, st, machine, w.funcs)
        t_seq_total += seq.t_par
        t_par_total += res.t_par
        per_loop[kind] = res.speedup(seq.t_par)
    return t_seq_total / t_par_total, per_loop


def amdahl_application_speedup(phase_speedup: float,
                               load_fraction: float = 0.40) -> float:
    """Whole-SPICE speedup from parallelizing only the LOAD phase.

    Amdahl over the paper's "approximately 40% of the sequential
    execution time of SPICE is spent in subroutine LOAD".
    """
    return 1.0 / ((1.0 - load_fraction)
                  + load_fraction / phase_speedup)
