"""The ``Store``: all program state a loop reads and writes.

A :class:`Store` maps names to scalars, NumPy arrays, and
:class:`~repro.structures.linkedlist.LinkedList` objects.  It is the
single source of truth for loop semantics: the sequential interpreter
and every parallel executor mutate a store, and the framework's central
correctness invariant is that they end in *equal* stores.

Checkpoint/restore (Section 4 of the paper) is implemented here as
whole-store deep copies; the finer-grained strategies (time-stamped
undo, privatization backups) live in :mod:`repro.speculation`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Tuple

import numpy as np

from repro.errors import IRError
from repro.structures.linkedlist import LinkedList

__all__ = ["Store"]

Scalar = (int, float, bool, np.integer, np.floating, np.bool_)


class Store:
    """A named heap of scalars, arrays, and linked lists.

    Parameters
    ----------
    bindings:
        Initial name → value mapping.  Array values are converted to
        NumPy arrays; scalars pass through; linked lists are stored by
        reference.
    """

    __slots__ = ("_vars",)

    def __init__(self, bindings: Mapping[str, Any] | None = None) -> None:
        self._vars: Dict[str, Any] = {}
        if bindings:
            for name, value in bindings.items():
                self[name] = value

    # -- mapping protocol ---------------------------------------------------
    def __getitem__(self, name: str) -> Any:
        try:
            return self._vars[name]
        except KeyError:
            raise IRError(f"undefined variable {name!r}") from None

    def __setitem__(self, name: str, value: Any) -> None:
        if isinstance(value, LinkedList) or isinstance(value, Scalar):
            self._vars[name] = value
        elif isinstance(value, np.ndarray):
            self._vars[name] = value
        elif isinstance(value, (list, tuple)):
            self._vars[name] = np.asarray(value)
        else:
            raise IRError(
                f"store value for {name!r} must be scalar, ndarray, or "
                f"LinkedList, got {type(value).__name__}")

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __iter__(self) -> Iterator[str]:
        return iter(self._vars)

    def __len__(self) -> int:
        return len(self._vars)

    def names(self) -> Tuple[str, ...]:
        """All bound names, in insertion order."""
        return tuple(self._vars)

    def arrays(self) -> Tuple[str, ...]:
        """Names bound to NumPy arrays."""
        return tuple(n for n, v in self._vars.items()
                     if isinstance(v, np.ndarray))

    def scalars(self) -> Tuple[str, ...]:
        """Names bound to scalar values."""
        return tuple(n for n, v in self._vars.items() if isinstance(v, Scalar))

    def lists(self) -> Tuple[str, ...]:
        """Names bound to linked lists."""
        return tuple(n for n, v in self._vars.items()
                     if isinstance(v, LinkedList))

    # -- checkpointing ------------------------------------------------------
    def copy(self) -> "Store":
        """Deep-copy every binding (the paper's full checkpoint)."""
        out = Store()
        for name, value in self._vars.items():
            if isinstance(value, np.ndarray):
                out._vars[name] = value.copy()
            elif isinstance(value, LinkedList):
                out._vars[name] = value.copy()
            else:
                out._vars[name] = value
        return out

    def restore_from(self, checkpoint: "Store") -> None:
        """Overwrite this store's contents from ``checkpoint`` in place."""
        self._vars.clear()
        for name, value in checkpoint.copy()._vars.items():
            self._vars[name] = value

    # -- comparison -----------------------------------------------------------
    def equals(self, other: "Store", *, rtol: float = 0.0,
               atol: float = 0.0) -> bool:
        """Structural equality of two stores.

        Float arrays compare with the given tolerances (exact by
        default — parallel executors are expected to produce bitwise
        identical results because iterations are independent).
        """
        if set(self._vars) != set(other._vars):
            return False
        for name, mine in self._vars.items():
            theirs = other._vars[name]
            if isinstance(mine, np.ndarray):
                if not isinstance(theirs, np.ndarray):
                    return False
                if mine.shape != theirs.shape:
                    return False
                if rtol == 0.0 and atol == 0.0:
                    if not np.array_equal(mine, theirs):
                        return False
                elif not np.allclose(mine, theirs, rtol=rtol, atol=atol):
                    return False
            elif isinstance(mine, LinkedList):
                if mine != theirs:
                    return False
            else:
                if isinstance(theirs, (np.ndarray, LinkedList)):
                    return False
                if mine != theirs:
                    return False
        return True

    def diff(self, other: "Store") -> Dict[str, str]:
        """Human-readable description of differing bindings (test aid)."""
        out: Dict[str, str] = {}
        for name in set(self._vars) | set(other._vars):
            if name not in self._vars:
                out[name] = "missing on left"
            elif name not in other._vars:
                out[name] = "missing on right"
            else:
                a, b = self._vars[name], other._vars[name]
                if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
                    if a.shape != b.shape:
                        out[name] = f"shape {a.shape} != {b.shape}"
                    elif not np.array_equal(a, b):
                        idx = np.flatnonzero(np.ravel(a != b))[:5]
                        out[name] = f"differs at flat indices {idx.tolist()}"
                elif a != b:
                    out[name] = f"{a!r} != {b!r}"
        return out

    def __repr__(self) -> str:
        kinds = {n: type(v).__name__ for n, v in self._vars.items()}
        return f"Store({kinds})"
