"""Unit tests for the fault-tolerant supervisor
(`repro.runtime.supervisor`): ladder construction, watchdog
classification, and supervised recovery end to end on tiny loops."""

import queue
import threading

import numpy as np
import pytest

from repro.analysis.loopinfo import analyze_loop
from repro.errors import (
    BarrierStalled,
    LadderExhausted,
    PlanError,
    WorkerCrashed,
    WorkerHung,
)
from repro.ir.functions import FunctionTable
from repro.ir.interp import SequentialInterp
from repro.ir.nodes import ArrayAssign, Assign, Const, Var, WhileLoop, le_
from repro.ir.store import Store
from repro.obs import MemorySink, names, tracing
from repro.runtime.costs import FREE
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.supervisor import (
    ResiliencePolicy,
    Watchdog,
    _build_ladder,
    run_supervised,
)


# ---------------------------------------------------------------------------
# policy and ladder construction
# ---------------------------------------------------------------------------

class TestResiliencePolicy:
    def test_backoff_disabled_by_default(self):
        p = ResiliencePolicy()
        assert p.backoff_for(1) == 0.0 and p.backoff_for(5) == 0.0

    def test_backoff_exponential_and_capped(self):
        p = ResiliencePolicy(backoff_base_s=0.1, backoff_cap_s=0.4)
        assert p.backoff_for(1) == pytest.approx(0.1)
        assert p.backoff_for(2) == pytest.approx(0.2)
        assert p.backoff_for(3) == pytest.approx(0.4)
        assert p.backoff_for(9) == pytest.approx(0.4)   # capped


class TestBuildLadder:
    def test_procs_four_workers_full_ladder(self):
        rungs = _build_ladder("procs", 4, ResiliencePolicy())
        assert [(r.stage, r.mode, r.workers) for r in rungs] == [
            ("initial", "procs", 4),
            ("redistribute", "procs", 3),
            ("reduce", "procs", 1),
            ("partial-restart", "procs", 4),
            ("threads", "threads", 2),
            ("sequential", "sequential", 1),
        ]

    def test_threads_mode_has_no_threads_rung(self):
        rungs = _build_ladder("threads", 2, ResiliencePolicy())
        assert [r.stage for r in rungs] == \
            ["initial", "redistribute", "partial-restart", "sequential"]
        assert all(r.mode != "procs" for r in rungs)

    def test_policy_can_strip_every_fallback(self):
        policy = ResiliencePolicy(redistribute=False,
                                  max_reduced_retries=0,
                                  allow_partial_restart=False,
                                  allow_threads=False,
                                  allow_sequential=False)
        rungs = _build_ladder("procs", 4, policy)
        assert [r.stage for r in rungs] == ["initial"]

    def test_single_worker_skips_redistribute(self):
        rungs = _build_ladder("procs", 1, ResiliencePolicy())
        assert [r.stage for r in rungs] == \
            ["initial", "partial-restart", "threads", "sequential"]


# ---------------------------------------------------------------------------
# watchdog classification (fake handles, no real workers)
# ---------------------------------------------------------------------------

class _FakeProc:
    """Quacks like multiprocessing.Process for the poll loop."""

    def __init__(self, alive=True, exitcode=None):
        self._alive = alive
        self.exitcode = exitcode

    def is_alive(self):
        return self._alive


class _FakeThread:
    """Quacks like threading.Thread: alive flag, no exitcode."""

    def __init__(self, alive=True):
        self._alive = alive

    def is_alive(self):
        return self._alive


class _FakeCoord:
    def __init__(self):
        self.abort = threading.Event()
        self.barrier = threading.Barrier(2)
        self.results = queue.Queue()


def _watchdog(deadline_s=30.0):
    return Watchdog(ResiliencePolicy(deadline_s=deadline_s,
                                     poll_interval_s=0.01))


class TestWatchdogClassify:
    def test_healthy_run_is_unclassified(self):
        wd = _watchdog()
        wd._handles = [_FakeProc(), _FakeThread()]
        import time
        wd._t0 = time.perf_counter()
        assert wd._classify() is None

    def test_dead_process_with_nonzero_exitcode_is_crash(self):
        wd = _watchdog()
        wd._handles = [_FakeProc(), _FakeProc(alive=False, exitcode=-11)]
        import time
        wd._t0 = time.perf_counter()
        fault = wd._classify()
        assert isinstance(fault, WorkerCrashed)
        assert fault.worker == 1 and fault.exitcode == -11

    def test_clean_exit_race_is_not_a_crash(self):
        wd = _watchdog()
        wd._handles = [_FakeProc(alive=False, exitcode=0)]
        import time
        wd._t0 = time.perf_counter()
        assert wd._classify() is None

    def test_dead_thread_is_indistinguishable_from_finish(self):
        wd = _watchdog()
        wd._handles = [_FakeThread(alive=False)]
        import time
        wd._t0 = time.perf_counter()
        assert wd._classify() is None

    def test_deadline_overrun_is_hang_or_barrier_by_phase(self):
        import time
        wd = _watchdog(deadline_s=0.001)
        wd._handles = [_FakeProc()]
        wd._t0 = time.perf_counter() - 1.0
        wd.phase = "gather"
        assert isinstance(wd._classify(), WorkerHung)
        wd.phase = "barrier"
        assert isinstance(wd._classify(), BarrierStalled)

    def test_wake_parent_aborts_everything(self):
        wd = _watchdog()
        coord = _FakeCoord()
        wd._coord = coord
        fault = WorkerCrashed("boom", worker=1)
        wd._wake_parent(fault)
        assert coord.abort.is_set()
        assert coord.barrier.broken
        assert coord.results.get_nowait() == ("fault", 1, None)

    def test_poll_loop_detects_and_stops(self):
        import time
        wd = _watchdog()
        coord = _FakeCoord()
        handle = _FakeProc(alive=False, exitcode=17)
        wd.start([handle], coord, time.perf_counter())
        try:
            deadline = time.perf_counter() + 2.0
            while wd.fault is None and time.perf_counter() < deadline:
                time.sleep(0.01)
            assert isinstance(wd.fault, WorkerCrashed)
            assert coord.abort.is_set()
        finally:
            wd.stop()


# ---------------------------------------------------------------------------
# run_supervised end to end (tiny loop, 2 workers)
# ---------------------------------------------------------------------------

def _doall_loop():
    loop = WhileLoop(
        [Assign("i", Const(1))],
        le_(Var("i"), Var("n")),
        [ArrayAssign("out", Var("i"), Var("i") * 2),
         Assign("i", Var("i") + 1)],
        name="supervised-doall",
    )
    st = Store()
    st["n"] = 37
    st["out"] = np.zeros(64, dtype=np.int64)
    return loop, FunctionTable(), st


def _reference(loop, funcs, store):
    ref = store.copy()
    SequentialInterp(loop, funcs, FREE).run(ref)
    return ref


FAST = ResiliencePolicy(deadline_s=5.0, poll_interval_s=0.01)


class TestRunSupervised:
    def test_clean_run_stays_on_initial_rung(self):
        loop, funcs, st = _doall_loop()
        ref = _reference(loop, funcs, st)
        info = analyze_loop(loop, funcs)
        res = run_supervised(info, st, funcs, mode="procs",
                             scheme="doall", workers=2, u=96,
                             policy=FAST)
        assert st.equals(ref)
        resil = res.stats["resilience"]
        assert resil["rung"] == "initial" and resil["attempts"] == 1
        assert resil["faults"] == []

    def test_startup_crash_recovers_on_redistribute(self):
        loop, funcs, st = _doall_loop()
        ref = _reference(loop, funcs, st)
        info = analyze_loop(loop, funcs)
        plan = FaultPlan(specs=(FaultSpec(kind="crash", worker=1,
                                          at_iter=0),))
        sink = MemorySink()
        with tracing(sink) as trc:
            res = run_supervised(info, st, funcs, mode="procs",
                                 scheme="doall", workers=2, u=96,
                                 policy=FAST, fault_plan=plan)
        assert st.equals(ref)
        resil = res.stats["resilience"]
        assert resil["rung"] == "redistribute"
        assert resil["workers"] == 1 and resil["attempts"] == 2
        assert [f["kind"] for f in resil["faults"]] == ["crash"]
        # obs: the fault, the retry, and the fallback are all recorded
        assert trc.metrics.value(names.M_FAULTS) == 1
        assert trc.metrics.value(names.M_FAULT_CRASH) == 1
        assert trc.metrics.value(names.M_RETRIES) == 1
        assert sink.by_name(names.EV_FAULT)
        assert sink.by_name(names.EV_RETRY)
        assert sink.by_name(names.EV_FALLBACK)

    def test_persistent_fault_falls_to_sequential(self):
        loop, funcs, st = _doall_loop()
        ref = _reference(loop, funcs, st)
        info = analyze_loop(loop, funcs)
        # worker 0 crashes at startup on every parallel attempt, so
        # the ladder must walk all the way down to the Section-5 rung.
        plan = FaultPlan(specs=(FaultSpec(
            kind="crash", worker=0, at_iter=0,
            attempts=tuple(range(8))),))
        policy = ResiliencePolicy(deadline_s=2.0, poll_interval_s=0.01)
        res = run_supervised(info, st, funcs, mode="procs",
                             scheme="doall", workers=2, u=96,
                             policy=policy, fault_plan=plan)
        assert st.equals(ref)
        assert res.fallback_sequential
        assert res.scheme.startswith("supervised[")
        resil = res.stats["resilience"]
        assert resil["rung"] == "sequential"
        assert len(resil["faults"]) >= 2

    def test_exhausted_ladder_raises_with_cause(self):
        loop, funcs, st = _doall_loop()
        info = analyze_loop(loop, funcs)
        plan = FaultPlan(specs=(FaultSpec(kind="crash", worker=0,
                                          at_iter=0),))
        policy = ResiliencePolicy(deadline_s=2.0, poll_interval_s=0.01,
                                  redistribute=False,
                                  max_reduced_retries=0,
                                  allow_threads=False,
                                  allow_sequential=False)
        with pytest.raises(LadderExhausted) as exc_info:
            run_supervised(info, st, funcs, mode="procs",
                           scheme="doall", workers=2, u=96,
                           policy=policy, fault_plan=plan)
        assert isinstance(exc_info.value.__cause__, WorkerCrashed)

    def test_store_restored_between_attempts(self):
        # The init block mutates the live store before workers start;
        # a retry must see the checkpointed initial scalars, not the
        # half-initialized state of the faulted attempt.
        loop, funcs, st = _doall_loop()
        ref = _reference(loop, funcs, st)
        info = analyze_loop(loop, funcs)
        plan = FaultPlan(specs=(FaultSpec(kind="crash", worker=1,
                                          at_iter=0),))
        run_supervised(info, st, funcs, mode="procs", scheme="doall",
                       workers=2, u=96, policy=FAST, fault_plan=plan)
        assert st.equals(ref)


class TestChaosSalvage:
    def test_raise_at_iter_cells_contain_and_salvage(self):
        from repro.runtime.supervisor import chaos_matrix
        report = chaos_matrix(mode="procs", workers=2,
                              kinds=("raise-at-iter",), deadline_s=5.0)
        assert report.all_recovered
        for row in report.rows:
            # contained internally: no ladder descent at all
            assert row.rung == "initial", row
            if not row.scheme.startswith("speculative"):
                # fault at iteration 7 -> committed prefix [1, 6];
                # speculative cells may clamp further via the PD test.
                assert row.salvaged == 6, row
        assert "salv" in report.render()


class TestApiGuards:
    def test_sim_backend_rejects_resilience(self):
        from repro import Machine, parallelize
        loop, funcs, st = _doall_loop()
        with pytest.raises(PlanError, match="real backends only"):
            parallelize(loop, st, Machine(2), funcs, resilience=True)

    def test_fault_plan_implies_supervision_via_api(self):
        from repro import Machine, parallelize
        loop, funcs, st = _doall_loop()
        plan = FaultPlan(specs=(FaultSpec(kind="crash", worker=1,
                                          at_iter=0),))
        outcome = parallelize(loop, st, Machine(2), funcs,
                              backend="procs", workers=2,
                              min_speedup=0.0, fault_plan=plan)
        assert outcome.verified
        resil = outcome.result.stats["resilience"]
        assert resil["attempts"] == 2
        assert [f["kind"] for f in resil["faults"]] == ["crash"]
