"""Cost-model calibration: predicted vs measured, per run.

The Section 7 model earns its keep only if its predictions track the
virtual machine's measurements.  This module runs a workload twice —
once through the planner's *predictive* path (profile + ``predict``)
and once for real — and reports the relative error of the predicted
parallel time and attainable speedup.

Heavy imports (planner, executors, workloads) happen inside functions:
the runtime and executor layers import :mod:`repro.obs.tracer`, which
initializes this package, so module-level imports here would cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["CalibrationRow", "CalibrationReport", "calibrate_workload",
           "run_calibration", "DEFAULT_CALIBRATION_WORKLOADS"]

#: Workload specs the calibration report covers by default (the two
#: the paper's Figures 6 and 7 revolve around).
DEFAULT_CALIBRATION_WORKLOADS: Tuple[str, ...] = ("spice", "track")


@dataclass(frozen=True)
class CalibrationRow:
    """One workload's predicted-vs-measured comparison.

    Times are virtual cycles.  ``predicted_*`` comes from the planner's
    :class:`~repro.planner.costmodel.Prediction` (or the trivial
    sequential prediction when the planner kept the loop sequential);
    ``measured_*`` from actually executing the plan.
    """

    workload: str
    scheme: str
    procs: int
    t_seq: int
    predicted_t_par: float
    measured_t_par: int
    predicted_speedup: float
    measured_speedup: float

    @property
    def t_par_rel_error(self) -> float:
        """``(predicted - measured) / measured`` for the parallel time."""
        if not self.measured_t_par:
            return 0.0
        return (self.predicted_t_par - self.measured_t_par) \
            / self.measured_t_par

    @property
    def speedup_rel_error(self) -> float:
        """``(predicted - measured) / measured`` for the speedup."""
        if not self.measured_speedup:
            return 0.0
        return (self.predicted_speedup - self.measured_speedup) \
            / self.measured_speedup


@dataclass(frozen=True)
class CalibrationReport:
    """All rows plus aggregate error statistics."""

    procs: int
    rows: Tuple[CalibrationRow, ...]

    @property
    def mean_abs_rel_error(self) -> float:
        """Mean |relative error| of the predicted parallel time."""
        if not self.rows:
            return 0.0
        return sum(abs(r.t_par_rel_error) for r in self.rows) \
            / len(self.rows)

    @property
    def max_abs_rel_error(self) -> float:
        if not self.rows:
            return 0.0
        return max(abs(r.t_par_rel_error) for r in self.rows)

    def render(self) -> str:
        """Human-readable table (what ``repro report --calibration``
        prints)."""
        head = (f"Cost-model calibration @ {self.procs} processors "
                f"(virtual cycles)")
        lines = [head, "=" * len(head),
                 f"{'workload':<18s} {'scheme':<26s} {'T_par pred':>12s} "
                 f"{'T_par meas':>12s} {'err%':>7s} {'Sp pred':>8s} "
                 f"{'Sp meas':>8s}"]
        for r in self.rows:
            lines.append(
                f"{r.workload:<18s} {r.scheme:<26s} "
                f"{r.predicted_t_par:12.0f} {r.measured_t_par:12d} "
                f"{100 * r.t_par_rel_error:+6.1f}% "
                f"{r.predicted_speedup:8.2f} {r.measured_speedup:8.2f}")
        lines.append("")
        lines.append(f"mean |T_par error| = "
                     f"{100 * self.mean_abs_rel_error:.1f}%   "
                     f"max |T_par error| = "
                     f"{100 * self.max_abs_rel_error:.1f}%")
        return "\n".join(lines)


def calibrate_workload(workload, machine) -> CalibrationRow:
    """Predict, then measure, one workload on ``machine``.

    The planner profiles a fresh sample store (its normal predictive
    path); the measurement executes the chosen plan on another fresh
    store.  When the plan is sequential the prediction degenerates to
    ``T_seq`` (trivially exact) — the row is still reported so the
    report shows *why* nothing was parallelized.
    """
    from repro.errors import PlanError
    from repro.executors.sequential import run_sequential
    from repro.planner.select import execute_plan, plan_loop

    plan = plan_loop(workload.loop, machine, workload.funcs,
                     sample_store=workload.make_store())

    seq_store = workload.make_store()
    t_seq = run_sequential(workload.loop, seq_store, machine,
                           workload.funcs).t_par

    run_store = workload.make_store()
    try:
        result = execute_plan(plan, run_store, machine, workload.funcs)
    except PlanError as exc:
        if "upper bound" not in str(exc):
            raise
        result = execute_plan(plan, run_store, machine, workload.funcs,
                              strip=max(64, 8 * machine.nprocs))

    pred = plan.prediction
    if plan.scheme == "sequential" or pred is None:
        predicted_t_par: float = float(t_seq)
        predicted_sp = 1.0
    else:
        predicted_t_par = pred.t_ipar + pred.t_b + pred.t_d + pred.t_a
        predicted_sp = pred.sp_at

    measured_sp = result.speedup(t_seq)
    return CalibrationRow(
        workload=workload.name,
        scheme=result.scheme,
        procs=machine.nprocs,
        t_seq=t_seq,
        predicted_t_par=predicted_t_par,
        measured_t_par=result.t_par,
        predicted_speedup=predicted_sp,
        measured_speedup=measured_sp,
    )


def run_calibration(specs: Optional[Sequence[str]] = None,
                    *, procs: int = 8) -> CalibrationReport:
    """Calibrate the cost model across a set of workload specs.

    ``specs`` uses the CLI's workload syntax ("spice", "track",
    "mcsparse:<input>", "ma28:<input>:<loop>"); defaults to
    :data:`DEFAULT_CALIBRATION_WORKLOADS`.
    """
    from repro.obs import names
    from repro.obs.tracer import get_tracer
    from repro.runtime.machine import Machine
    from repro.workloads import workload_from_spec

    machine = Machine(procs)
    rows: List[CalibrationRow] = []
    for spec in (specs or DEFAULT_CALIBRATION_WORKLOADS):
        row = calibrate_workload(workload_from_spec(spec), machine)
        rows.append(row)
        trc = get_tracer()
        if trc.enabled:
            trc.event(names.EV_CALIBRATION, row.measured_t_par,
                      workload=row.workload, scheme=row.scheme,
                      predicted_t_par=row.predicted_t_par,
                      measured_t_par=row.measured_t_par,
                      rel_error=row.t_par_rel_error)
    return CalibrationReport(procs=procs, rows=tuple(rows))
