"""The persistent worker pool: pre-forked workers, message-coordinated
strips, heartbeats, per-job degradation ladder, graceful drain.

Relationship to the per-call backend
------------------------------------
:func:`~repro.runtime.procs.run_parallel_real` owns everything
correctness-critical — dispatcher supply, overshoot quarantine, PD
merge, ordered reconciliation — and exposes an ``engine`` seam for the
middle it does *not* need to own: spawning workers, driving strips,
gathering records.  :class:`_PoolEngine` fills that seam with a
protocol that works on **pre-forked** workers:

* coordination state (take-lock, index counter, QUIT minimum, strip
  horizon, abort event, heartbeat array, per-worker job queues, one
  results queue) is created once per pool *generation* and inherited
  by every worker at fork time;
* a job travels to each participating worker as a courier-encoded
  blob over its job queue (pre-forked workers cannot inherit the
  task, and real tasks contain lambdas — see
  :mod:`repro.service.courier`);
* the per-call strip barrier becomes messages: a worker that drains
  the strip sends ``sdone`` and waits for ``go`` (horizon extended)
  or ``end``; mp queues are FIFO per producer, so when the parent has
  a worker's ``sdone`` it already has all of that worker's chunks —
  which is what makes a dropped result message *deterministically*
  detectable as ``received < expected``;
* workers heartbeat into a shared array (per chunk and per wait
  tick); the :class:`_HeartbeatMonitor` classifies a dead process as
  :class:`~repro.errors.WorkerCrashed`, a stale heartbeat or job
  deadline overrun as :class:`~repro.errors.WorkerHung`;
* every worker→parent message carries the job id, so records from a
  cancelled attempt can never contaminate a retry.

Recovery is two-tier: polite cancellation (abort flag → workers ack
and return to idle; dead slots are reaped, their queues drained, and
fresh processes forked onto the *same* inherited state — legal under
``fork`` at any time) and, when cancellation cannot quiesce within
its deadline, a full **recycle** (kill the generation, rebuild the
shared state, respawn everyone).  Either way the pool keeps accepting
jobs; the interrupted job is retried on the next rung of its
:func:`~repro.runtime.supervisor.build_pool_ladder` ladder.
"""

from __future__ import annotations

import queue as _thread_queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    ExecutionError,
    IRError,
    JobCancelled,
    LadderExhausted,
    LeaseExpired,
    PoolClosed,
    PoolError,
    PoolOverloaded,
    RealBackendError,
    ResultLost,
    WorkerCrashed,
    WorkerFault,
    WorkerHung,
)
from repro.executors.base import ParallelResult
from repro.ir.functions import FunctionTable
from repro.ir.interp import IterOutcome
from repro.ir.store import Store
from repro.obs import names as _ev
from repro.obs.phases import get_profiler
from repro.obs.tracer import get_tracer, set_tracer
from repro.runtime.faults import FaultPlan, InjectedCrash
from repro.runtime.procs import (
    _NO_QUIT,
    _POLL_S,
    _Cell,
    _fold_records,
    _run_indices,
    _take_dynamic,
    _take_static,
    _validate_shadow_payloads,
    _Walk,
    _WriteBuffer,
    run_parallel_real,
)
from repro.runtime.shm import attach_store
from repro.runtime.supervisor import (
    ResiliencePolicy,
    _fault_summary,
    _record_fault,
    _record_outcome,
    _run_sequential_rung,
    build_pool_ladder,
)
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    CircuitBreaker,
    RetryPolicy,
)
from repro.service.arenas import Arena, ArenaConfig
from repro.service.courier import dumps as _courier_dumps
from repro.service.courier import loads as _courier_loads
from repro.speculation.privatize import CompositeHooks

try:
    from repro.speculation.pdtest import ShadowArrays
except ImportError:          # pragma: no cover - pdtest always present
    ShadowArrays = None

__all__ = ["PoolConfig", "WorkerPool", "get_default_pool",
           "close_default_pool"]

#: How long polite cancellation waits for live workers to ack before
#: escalating to a full pool recycle.
_CANCEL_TIMEOUT_S = 5.0


@dataclass(frozen=True)
class PoolConfig:
    """Sizing, liveness, and policy knobs for one :class:`WorkerPool`."""

    workers: int = 2                   #: pre-forked worker count
    liveness_deadline_s: float = 5.0   #: stale-heartbeat threshold
    job_deadline_s: float = 60.0       #: per-attempt wall ceiling
    lease_ttl_s: float = 30.0          #: arena lease TTL (renewed/strip)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    resilience: ResiliencePolicy = field(
        default_factory=lambda: ResiliencePolicy(backoff_base_s=0.0))
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    arena: ArenaConfig = field(default_factory=ArenaConfig)


# ---------------------------------------------------------------------------
# Shared state (one per pool generation, inherited by workers at fork)
# ---------------------------------------------------------------------------

class _PoolShared:
    """Fork-inherited coordination state for one pool generation."""

    def __init__(self, workers: int) -> None:
        import multiprocessing as mp
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None)
        self.ctx = ctx
        self.workers = workers
        self.lock = ctx.Lock()
        self.counter = ctx.Value("q", 1, lock=False)
        self.quit_at = ctx.Value("q", _NO_QUIT, lock=False)
        self.horizon = ctx.Value("q", 0, lock=False)
        self.abort = ctx.Event()
        self.beats = ctx.Array("d", workers, lock=False)
        self.results = ctx.Queue()
        self.jobqs = [ctx.Queue() for _ in range(workers)]

    def reset_job(self, first: int, horizon: int) -> None:
        """Re-arm the strip coordination for the next job (parent only,
        called while every participating worker is idle)."""
        self.counter.value = first
        self.quit_at.value = _NO_QUIT
        self.horizon.value = horizon

    def close_queues(self) -> None:
        """Release queue fds at generation teardown (parent side)."""
        for q in [self.results, *self.jobqs]:
            try:
                q.close()
                q.join_thread()
            except (OSError, AssertionError):
                pass


class _JobCoord:
    """The worker-side coordination view (duck-types ``_Coord`` for
    :func:`~repro.runtime.procs._take_dynamic` /
    :func:`~repro.runtime.procs._run_indices`)."""

    __slots__ = ("lock", "counter", "quit_at", "horizon", "abort")

    def __init__(self, shared: _PoolShared) -> None:
        self.lock = shared.lock
        self.counter = shared.counter
        self.quit_at = shared.quit_at
        self.horizon = shared.horizon
        self.abort = shared.abort

    def propose_quit(self, k: int) -> None:
        with self.lock:
            if k < self.quit_at.value:
                self.quit_at.value = k


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _pool_worker_main(slot: int, shared: _PoolShared) -> None:
    """Pool worker entry point: idle on the job queue forever.

    Messages: ``("job", jid, nworkers, blob)`` starts a job on this
    slot, ``("stop",)`` exits; anything else (a ``go``/``end`` left
    over from a cancelled job) is ignored — job-scoped messages only
    have meaning inside :func:`_run_pool_job`, which filters by jid.
    """
    set_tracer(None)    # never inherit the parent's file-backed sinks
    while True:
        shared.beats[slot] = time.monotonic()
        try:
            msg = shared.jobqs[slot].get(timeout=0.2)
        except _thread_queue.Empty:
            continue
        if msg[0] == "stop":
            return
        if msg[0] != "job":
            continue
        _, jid, nworkers, blob = msg
        _run_pool_job(slot, jid, nworkers, blob, shared)


def _run_pool_job(slot: int, jid: int, nworkers: int, blob: bytes,
                  shared: _PoolShared) -> None:
    """Execute one job on this worker (see the module-docstring
    protocol).  Mirrors ``_worker_main``'s containment discipline:
    iteration faults are contained records, a worker-level error stops
    this worker's take loop but keeps it in the protocol, and an
    injected crash looks like sudden death (``os._exit`` under the
    fork start method)."""
    coord = _JobCoord(shared)
    attached = None
    failed = False
    shadows = None
    try:
        try:
            task = _courier_loads(blob)
            attached = attach_store(task.store_spec)
            store = attached.store
        except BaseException:
            # Setup failure (courier decode, store attach): report the
            # error but keep the full quiesce protocol, so the parent
            # sees jobdone strictly after it sent "end".
            shared.results.put(
                ("error", slot, (jid, traceback.format_exc())))
            while True:
                shared.results.put(("sdone", slot, (jid, None)))
                verdict = _await_go_or_end(slot, jid, shared)
                if verdict == "go":
                    continue
                if verdict == "cancel":
                    shared.results.put(("cancelled", slot, (jid, None)))
                    return
                break
            _finish_job(slot, jid, shared, None, True)
            return
        from repro.ir.interp import IterationRunner
        from repro.runtime.costs import FREE
        runner = IterationRunner(task.loop, task.funcs, FREE,
                                 dispatcher_stmts=task.dispatcher_stmts)
        buffer = _WriteBuffer()
        if task.shadow_arrays:
            shadows = ShadowArrays(store, task.shadow_arrays)
            hooks = CompositeHooks(shadows, buffer)
        else:
            hooks = buffer
        walk_state = (_Walk(task.init_value, task.first)
                      if task.supply == "walk" else None)
        stream = _Cell(task.first + slot)
        fp = task.fault_plan
        if fp:
            try:
                fp.fire_startup(slot, abort_check=coord.abort.is_set)
            except InjectedCrash:
                # An injected startup hang released by the abort flag:
                # ack the cancellation so the parent's recovery doesn't
                # wait out its deadline (and recycle) for a worker that
                # is in fact alive and back to idling.
                shared.results.put(("cancelled", slot, (jid, None)))
                return
        while True:
            if shared.abort.is_set():
                shared.results.put(("cancelled", slot, (jid, None)))
                return
            shared.beats[slot] = time.monotonic()
            indices = None
            if not failed:
                if task.schedule == "static":
                    indices = _take_static(stream, nworkers, coord,
                                           task.chunk)
                else:
                    indices = _take_dynamic(coord, task.chunk)
            if indices is None:
                spayload = None
                if (task.strip_shadows and shadows is not None
                        and not failed):
                    # Cumulative mark snapshot at the strip boundary:
                    # the parent PD-tests it to bound the committed
                    # prefix a durability checkpoint may persist.
                    spayload = ({name: (shadows.w1[name].copy(),
                                        shadows.w2[name].copy(),
                                        shadows.r1[name].copy(),
                                        shadows.r2[name].copy())
                                 for name in shadows.arrays},
                                shadows.accesses)
                shared.results.put(("sdone", slot, (jid, spayload)))
                verdict = _await_go_or_end(slot, jid, shared)
                if verdict == "go":
                    continue
                if verdict == "cancel":
                    shared.results.put(("cancelled", slot, (jid, None)))
                    return
                break    # "end" (or "stop" — finish then re-idle)
            try:
                recs = _run_indices(slot, indices, task, coord, store,
                                    runner, buffer, hooks, walk_state)
                if fp and fp.drops_chunk(slot, indices):
                    continue    # injected lost-result: never queued
                shared.results.put(("chunk", slot, (jid, recs)))
            except InjectedCrash:
                # An injected hang released by the abort flag: the
                # pool worker survives (unlike a per-call worker) and
                # acks the cancellation on its way back to idle.
                shared.results.put(("cancelled", slot, (jid, None)))
                return
            except BaseException:
                failed = True
                coord.propose_quit(0)
                shared.results.put(
                    ("error", slot, (jid, traceback.format_exc())))
        payload = None
        if task.shadow_arrays and shadows is not None and not failed:
            payload = ({name: (shadows.w1[name], shadows.w2[name],
                               shadows.r1[name], shadows.r2[name])
                        for name in shadows.arrays}, shadows.accesses)
        if fp:
            payload = fp.corrupt_shadow_payload(slot, payload)
        _finish_job(slot, jid, shared, payload, False)
    finally:
        if attached is not None:
            attached.close()


def _await_go_or_end(slot: int, jid: int, shared: _PoolShared) -> str:
    """Strip-quiesced wait: the pool's replacement for the double
    barrier.  Returns ``"go"``, ``"end"``, or ``"cancel"``."""
    while True:
        shared.beats[slot] = time.monotonic()
        if shared.abort.is_set():
            return "cancel"
        try:
            msg = shared.jobqs[slot].get(timeout=0.05)
        except _thread_queue.Empty:
            continue
        if msg[0] == "go" and msg[1] == jid:
            return "go"
        if msg[0] == "end" and msg[1] == jid:
            return "end"
        if msg[0] == "stop":
            shared.jobqs[slot].put(msg)   # re-queue for the idle loop
            return "end"
        # stale message from a previous job: ignore


def _finish_job(slot: int, jid: int, shared: _PoolShared,
                shadow_payload, errored: bool) -> None:
    """Send the end-of-job ack (with any shadow payload)."""
    shared.results.put(("jobdone", slot, (jid, shadow_payload, errored)))


# ---------------------------------------------------------------------------
# Parent side: heartbeat monitor
# ---------------------------------------------------------------------------

class _HeartbeatMonitor:
    """Liveness monitor for one pool job attempt.

    Implements the same monitor protocol as the supervisor's
    :class:`~repro.runtime.supervisor.Watchdog` (``start``/``stop``/
    ``fault``/``phase``) but classifies from the pool's heartbeat
    array instead of barrier phases: a dead participant process is a
    **crash**; a participant whose heartbeat goes stale past the
    liveness deadline, or a job running past its deadline, is a
    **hang**.  On detection it sets the generation abort flag (so
    injected hangs and take loops release) and wakes the parent's
    gather wait with a ``("fault", slot, (jid, None))`` sentinel.
    """

    def __init__(self, pool: "WorkerPool", jid: int,
                 liveness_deadline_s: float, job_deadline_s: float,
                 poll_interval_s: float = 0.02) -> None:
        self.pool = pool
        self.jid = jid
        self.liveness_deadline_s = liveness_deadline_s
        self.job_deadline_s = job_deadline_s
        self.poll_interval_s = poll_interval_s
        self.phase = "run"
        self.fault: Optional[WorkerFault] = None
        self._participants: List[int] = []
        self._shared: Optional[_PoolShared] = None
        self._t0 = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self, participants, shared, t0: float) -> None:
        self._participants = list(participants)
        self._shared = shared
        self._t0 = t0
        self._stop.clear()
        self._thread = threading.Thread(target=self._poll_loop,
                                        name="repro-pool-heartbeat",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Idempotent (called by both the engine and the run's finally)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            fault = self._classify()
            if fault is not None:
                self.fault = fault
                self._wake_parent(fault)
                return

    def _classify(self) -> Optional[WorkerFault]:
        now = time.monotonic()
        elapsed = time.perf_counter() - self._t0
        shared = self._shared
        for slot in self._participants:
            proc = self.pool._proc_for(slot)
            if proc is not None and not proc.is_alive():
                exitcode = proc.exitcode
                return WorkerCrashed(
                    f"pool worker {slot} died mid-job "
                    f"(exitcode={exitcode})",
                    phase=self.phase, worker=slot, elapsed_s=elapsed,
                    exitcode=exitcode)
            beat = shared.beats[slot] if shared is not None else now
            if now - beat > self.liveness_deadline_s:
                return WorkerHung(
                    f"pool worker {slot} heartbeat stale for "
                    f"{now - beat:.1f}s (deadline "
                    f"{self.liveness_deadline_s:.1f}s)",
                    phase=self.phase, worker=slot, elapsed_s=elapsed)
        if elapsed > self.job_deadline_s:
            return WorkerHung(
                f"pool job exceeded its {self.job_deadline_s:.1f}s "
                f"deadline in phase {self.phase!r}",
                phase=self.phase, elapsed_s=elapsed)
        return None

    def _wake_parent(self, fault: WorkerFault) -> None:
        shared = self._shared
        if shared is None:
            return
        try:
            shared.abort.set()
        except (OSError, ValueError):
            pass
        try:
            shared.results.put(("fault", fault.worker, (self.jid, None)))
        except (OSError, ValueError):
            pass


def _check_monitor(monitor) -> None:
    fault = monitor.fault
    if fault is not None:
        raise fault


# ---------------------------------------------------------------------------
# Parent side: the engine (plugs into run_parallel_real's seam)
# ---------------------------------------------------------------------------

class _JournalBinding:
    """Glue between one journaled job and the engine's strip loop.

    Holds the journal handle plus the job's idempotency key, appends
    the ``lease`` record when the arena lease is granted, and turns
    each committed strip boundary into a persisted
    :class:`~repro.speculation.checkpoint.IntervalCheckpoint`: the
    contiguous DONE prefix — intersected with the PD-valid prefix for
    speculative jobs, so a journaled speculative state is never ahead
    of what the PD test vouches for — applied (writes, then merged
    remainder scalars, then the re-derived dispatcher value) to a
    scratch copy of the parent store.  Journaling is best-effort: a
    failed append must never fail the job it was protecting, so
    errors are swallowed into a tracer event.
    """

    def __init__(self, journal, key: str, *, speculative: bool,
                 privatize: Tuple[str, ...] = ()) -> None:
        self.journal = journal
        self.key = key
        self.speculative = bool(speculative)
        self.privatize = tuple(privatize)
        self._last_prefix = 0

    def on_lease(self, spec) -> None:
        names = [seg.shm_name for seg in spec.arrays]
        names += [seg.shm_name for seg in spec.list_pools]
        try:
            self.journal.record_lease(self.key, names)
        except OSError:
            pass

    def on_strip(self, task, store, gathered, strip_payloads) -> None:
        try:
            self._checkpoint(task, store, gathered, strip_payloads)
        except Exception:
            trc = get_tracer()
            if trc.enabled:
                trc.event(_ev.EV_JOURNAL_RECORD, 0, kind="checkpoint",
                          job=self.key, error=traceback.format_exc(
                              limit=2))

    def _checkpoint(self, task, store, gathered, strip_payloads) -> None:
        from repro.ir.interp import IterationRunner
        from repro.runtime.costs import FREE
        from repro.runtime.procs import (
            _done_prefix,
            _merged_shadows,
            _replay_dispatcher,
        )
        from repro.speculation.checkpoint import IntervalCheckpoint
        from repro.speculation.pdtest import max_valid_prefix

        prefix = _done_prefix(gathered, task.first, _NO_QUIT)
        if self.speculative and task.shadow_arrays:
            if not strip_payloads:
                return
            merged = _merged_shadows(store, task.shadow_arrays,
                                     strip_payloads)
            prefix = min(prefix, max_valid_prefix(
                merged, privatized=self.privatize))
        if prefix < task.first or prefix <= self._last_prefix:
            return
        # Commit the prefix exactly the way reconciliation would:
        # writes in iteration order, then the merged remainder
        # scalars, then the dispatcher advanced to d(prefix+1).
        scratch = store.copy()
        for k in sorted(gathered.writes):
            if k > prefix:
                continue
            for (array, idx), value in gathered.writes[k].items():
                scratch[array][idx] = value
        merged_locals: Dict[str, Any] = {}
        for k in sorted(gathered.locals):
            if k <= prefix:
                merged_locals.update(gathered.locals[k])
        for name, value in merged_locals.items():
            if name != task.disp_var:
                scratch[name] = value
        if task.supply == "closed":
            d = task.init_value + task.step * (prefix + 1 - task.first)
        else:
            runner = IterationRunner(
                task.loop, task.funcs, FREE,
                dispatcher_stmts=task.dispatcher_stmts)
            d = _replay_dispatcher(runner, scratch, task.funcs,
                                   task.disp_var, task.init_value,
                                   prefix + 1 - task.first)
        scratch[task.disp_var] = d
        self.journal.record_checkpoint(
            self.key, IntervalCheckpoint(scratch, next_iter=prefix + 1))
        self._last_prefix = prefix


class _PoolEngine:
    """One job attempt's engine: lease, dispatch, strips, gather."""

    def __init__(self, pool: "WorkerPool", workers: int,
                 binding: Optional[_JournalBinding] = None) -> None:
        self.pool = pool
        self.workers = workers
        self.jid = pool._next_jid()
        self.binding = binding

    # run_parallel_real's engine protocol
    def execute(self, task, store, gathered, *, monitor, strip,
                horizon0, speculative, barrier_timeout, queue_timeout,
                prof, t0):
        pool = self.pool
        shared = pool._shared
        jid = self.jid
        n = max(1, min(self.workers, shared.workers))
        fp = task.fault_plan
        expire_lease = bool(fp and fp.expires_lease())
        with prof.phase("pool.lease", arrays=len(store.arrays())):
            lease = pool.arena.lease(
                store, ttl_s=0.0 if expire_lease else None)
        trc = get_tracer()
        if trc.enabled:
            trc.count(_ev.M_POOL_LEASES)
        task.store_spec = lease.spec
        task.workers = n
        if self.binding is not None:
            self.binding.on_lease(lease.spec)
            if speculative and task.shadow_arrays:
                task.strip_shadows = True
        shared.reset_job(task.first, horizon0)
        now = time.monotonic()
        for slot in range(n):
            shared.beats[slot] = now   # fresh grace for the new job
        with prof.phase("pool.dispatch", workers=n):
            blob = _courier_dumps(task)
            for slot in range(n):
                shared.jobqs[slot].put(("job", jid, n, blob))
        monitor.start(range(n), shared, t0)
        t_setup = time.perf_counter()
        term_found = False
        try:
            with prof.phase("body", scheme="pool"):
                while True:
                    strip_payloads: List = []
                    self._await_strip(jid, n, gathered, monitor,
                                      queue_timeout, t0, shared,
                                      strip_payloads)
                    pool.arena.sweep()
                    if not lease.valid():
                        raise LeaseExpired(
                            f"arena lease {lease.token} for job {jid} "
                            f"expired mid-job (sweeper revoked the "
                            f"segments)",
                            phase="gather",
                            elapsed_s=time.perf_counter() - t0)
                    if not expire_lease:
                        lease.renew()
                    if pool._draining:
                        raise JobCancelled(
                            f"pool drain cancelled job {jid} at a "
                            f"strip boundary",
                            phase="gather",
                            elapsed_s=time.perf_counter() - t0)
                    if gathered.error is None:
                        if task.schedule == "static":
                            expected = (shared.horizon.value
                                        - task.first + 1)
                        else:
                            expected = shared.counter.value - task.first
                        if gathered.received < expected:
                            raise ResultLost(
                                f"all {n} pool workers quiesced but "
                                f"{expected - gathered.received} of "
                                f"{expected} result records never "
                                f"arrived",
                                phase="gather",
                                elapsed_s=time.perf_counter() - t0)
                    term_found = any(
                        o in (IterOutcome.TERMINATED, IterOutcome.EXITED)
                        for o in gathered.outcomes.values())
                    if self.binding is not None \
                            and gathered.error is None:
                        self.binding.on_strip(task, store, gathered,
                                              strip_payloads)
                    if (gathered.error is not None or term_found
                            or gathered.faults or strip is None):
                        break
                    from repro.runtime.procs import _MAX_HORIZON
                    if shared.horizon.value + strip > _MAX_HORIZON:
                        raise ExecutionError(
                            f"loop {task.loop.name!r} exceeded "
                            f"{_MAX_HORIZON} iterations without "
                            f"terminating")
                    shared.horizon.value += strip
                    for slot in range(n):
                        shared.jobqs[slot].put(("go", jid))
            for slot in range(n):
                shared.jobqs[slot].put(("end", jid))
            self._await_jobdone(jid, n, gathered, monitor,
                                queue_timeout, t0, task)
            if speculative and task.shadow_arrays:
                with prof.phase("pd-merge", stage="collect"):
                    _validate_shadow_payloads(gathered, t0)
            return term_found, t_setup
        except BaseException:
            pool._recover(jid, n)
            raise
        finally:
            monitor.stop()
            lease.release()

    def _await_strip(self, jid, n, gathered, monitor, timeout, t0,
                     shared, strip_payloads=None) -> None:
        """Consume results until all ``n`` participants sent ``sdone``.

        Per-producer FIFO means a worker's chunks always precede its
        ``sdone``, so returning here implies every queued record of
        this strip has been folded.  When a journaled speculative job
        ships cumulative shadow snapshots with its ``sdone``\\ s
        (``task.strip_shadows``), they are collected into
        ``strip_payloads`` for the boundary checkpoint's PD test."""
        monitor.phase = "gather"
        deadline = time.monotonic() + timeout
        quiesced = set()
        try:
            while len(quiesced) < n:
                _check_monitor(monitor)
                try:
                    kind, slot, (mjid, payload) = shared.results.get(
                        timeout=_POLL_S)
                except _thread_queue.Empty:
                    if time.monotonic() > deadline:
                        raise WorkerHung(
                            f"pool strip did not quiesce within "
                            f"{timeout:.1f}s ({len(quiesced)} of {n} "
                            f"workers reported)",
                            phase="gather",
                            elapsed_s=time.perf_counter() - t0) \
                            from None
                    continue
                if kind == "fault":
                    _check_monitor(monitor)
                    continue
                if mjid != jid:
                    continue            # stale: a cancelled attempt
                if kind == "chunk":
                    _fold_records(gathered, payload)
                elif kind == "sdone":
                    quiesced.add(slot)
                    if payload is not None and strip_payloads is not None:
                        strip_payloads.append(payload)
                elif kind == "error":
                    gathered.error = payload
                # "cancelled"/"jobdone" for this jid cannot occur here
        finally:
            monitor.phase = "run"

    def _await_jobdone(self, jid, n, gathered, monitor, timeout, t0,
                       task) -> None:
        """Collect each participant's end-of-job ack (and shadows)."""
        monitor.phase = "shadow"
        deadline = time.monotonic() + timeout
        done = set()
        try:
            while len(done) < n:
                _check_monitor(monitor)
                try:
                    kind, slot, (mjid, *rest) = \
                        self.pool._shared.results.get(timeout=_POLL_S)
                except _thread_queue.Empty:
                    if time.monotonic() > deadline:
                        raise ResultLost(
                            f"timed out waiting for pool job acks "
                            f"({len(done)} of {n} received)",
                            phase="shadow",
                            elapsed_s=time.perf_counter() - t0) \
                            from None
                    continue
                if kind == "fault":
                    _check_monitor(monitor)
                    continue
                if mjid != jid:
                    continue
                if kind == "jobdone":
                    done.add(slot)
                    shadow_payload = rest[0]
                    if task.shadow_arrays:
                        gathered.shadow_payloads.append(shadow_payload)
                elif kind == "error" and gathered.error is None:
                    gathered.error = rest[0]
        finally:
            monitor.phase = "run"


# ---------------------------------------------------------------------------
# The pool itself
# ---------------------------------------------------------------------------

class WorkerPool:
    """A persistent, fault-tolerant parallelization service.

    One instance owns one generation of pre-forked workers, a leased
    shm :class:`~repro.service.arenas.Arena`, an
    :class:`~repro.service.admission.AdmissionController` and a
    per-scheme :class:`~repro.service.admission.CircuitBreaker`.
    Jobs run one at a time (the admission queue provides the
    backpressure surface); every job walks its own
    :func:`~repro.runtime.supervisor.build_pool_ladder` ladder, so a
    faulting job degrades without poisoning the pool.
    """

    def __init__(self, config: Optional[PoolConfig] = None, *,
                 journal=None) -> None:
        self.config = config or PoolConfig()
        self.arena = Arena(self.config.arena)
        self.admission = AdmissionController(self.config.admission)
        self.breaker = CircuitBreaker(self.config.breaker_threshold,
                                      self.config.breaker_cooldown_s)
        #: Optional :class:`~repro.service.journal.JobJournal`: jobs
        #: submitted with a ``job_key`` are write-ahead journaled
        #: (admitted/lease/checkpoint/terminal) for crash recovery.
        self.journal = journal
        self._shared: Optional[_PoolShared] = None
        self._procs: List = []
        self._lifecycle = threading.RLock()
        self._draining = False
        self._closed = False
        self._prev_handlers: Optional[Dict] = None
        self._jid_lock = threading.Lock()
        self._jid = 0
        # health counters
        self.jobs_submitted = 0
        self.jobs_ok = 0
        self.jobs_failed = 0
        self.retries = 0
        self.respawns = 0
        self.recycles = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Fork the worker generation (idempotent)."""
        with self._lifecycle:
            if self._closed:
                raise PoolClosed("pool has been shut down")
            if self._shared is None:
                self._spawn_generation()
        return self

    def _spawn_generation(self) -> None:
        # Start the shm resource tracker *before* forking: workers
        # must inherit the parent's tracker, or each worker's first
        # segment attach forks a private tracker that warns about
        # "leaked" segments (the parent unlinked them) at exit.
        from multiprocessing import resource_tracker
        resource_tracker.ensure_running()
        shared = _PoolShared(self.config.workers)
        now = time.monotonic()
        procs = []
        for slot in range(self.config.workers):
            shared.beats[slot] = now
            procs.append(self._fork_worker(shared, slot))
        self._shared = shared
        self._procs = procs

    def _fork_worker(self, shared: _PoolShared, slot: int):
        proc = shared.ctx.Process(target=_pool_worker_main,
                                  args=(slot, shared), daemon=True)
        proc.start()
        return proc

    def _proc_for(self, slot: int):
        procs = self._procs
        return procs[slot] if slot < len(procs) else None

    def _next_jid(self) -> int:
        with self._jid_lock:
            self._jid += 1
            return self._jid

    # -- recovery ----------------------------------------------------------
    def _recover(self, jid: int, participants: int) -> None:
        """Quiesce after a failed/cancelled attempt: cancel live
        workers, reap + respawn dead ones, escalate to a recycle if
        the generation will not settle."""
        shared = self._shared
        if shared is None:
            return
        shared.abort.set()
        trc = get_tracer()
        need_ack = set()
        for slot in range(participants):
            proc = self._proc_for(slot)
            if proc is not None and proc.is_alive():
                need_ack.add(slot)
        deadline = time.monotonic() + _CANCEL_TIMEOUT_S
        acked: set = set()
        while acked < need_ack and time.monotonic() < deadline:
            try:
                kind, slot, (mjid, *_rest) = shared.results.get(
                    timeout=_POLL_S)
            except _thread_queue.Empty:
                # a worker may have died *during* cancellation
                for slot in list(need_ack - acked):
                    proc = self._proc_for(slot)
                    if proc is not None and not proc.is_alive():
                        need_ack.discard(slot)
                continue
            if mjid != jid:
                continue
            if kind in ("cancelled", "jobdone", "sdone") \
                    and slot in need_ack:
                if kind in ("cancelled", "jobdone"):
                    acked.add(slot)
            # chunks/errors of the doomed attempt: drop
        if acked < need_ack:
            self._recycle()
            return
        # reap + respawn dead participants onto the same generation
        for slot in range(participants):
            proc = self._proc_for(slot)
            if proc is None or proc.is_alive():
                continue
            proc.join(timeout=1.0)
            self._drain_jobq(shared, slot)
            self._procs[slot] = self._fork_worker(shared, slot)
            self.respawns += 1
            if trc.enabled:
                trc.count(_ev.M_POOL_RESPAWNS)
                trc.event(_ev.EV_POOL_REAP, 0, worker=slot,
                          exitcode=proc.exitcode, job=jid)
        shared.abort.clear()

    @staticmethod
    def _drain_jobq(shared: _PoolShared, slot: int) -> None:
        """Empty a dead worker's job queue so its replacement cannot
        consume a stale job (whose lease is already released)."""
        while True:
            try:
                shared.jobqs[slot].get_nowait()
            except _thread_queue.Empty:
                return

    def _recycle(self) -> None:
        """The big hammer: kill the generation and refork everything.

        Used when polite cancellation cannot quiesce (e.g. a worker
        died holding the take lock).  Fresh queues mean stale messages
        are structurally impossible afterwards."""
        with self._lifecycle:
            shared, procs = self._shared, self._procs
            self._shared, self._procs = None, []
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=5.0)
            if shared is not None:
                shared.close_queues()
            self.recycles += 1
            self.respawns += len(procs)
            if not self._closed:
                self._spawn_generation()

    # -- submission --------------------------------------------------------
    def submit(
        self,
        info,
        store: Store,
        funcs: FunctionTable,
        *,
        scheme: str = "doall",
        workers: Optional[int] = None,
        chunk: Optional[int] = None,
        u: Optional[int] = None,
        strip: Optional[int] = None,
        speculative: bool = False,
        test_arrays: Tuple[str, ...] = (),
        privatize: Tuple[str, ...] = (),
        fault_plan: Optional[FaultPlan] = None,
        policy: Optional[ResiliencePolicy] = None,
        strict_exceptions: bool = False,
        sp_at: Optional[float] = None,
        deadline_s: Optional[float] = None,
        resume=None,
        job_key: Optional[str] = None,
    ) -> ParallelResult:
        """Run one job through the pool (see class docstring).

        Raises :class:`~repro.errors.PoolOverloaded` (or its deadline
        subclass) when admission sheds the job — the store is
        untouched — and :class:`~repro.errors.PoolClosed` after
        :meth:`close`.  System faults inside the job never escape raw:
        the per-job ladder either recovers or raises the structured
        taxonomy (:class:`~repro.errors.LadderExhausted` at worst).

        ``job_key`` names the job in the pool's attached journal (if
        any): admitted/lease/checkpoint records are written ahead of
        the work they cover and a terminal done/failed record follows
        the outcome.  Jobs the serialization layer cannot persist
        (e.g. multi-dimensional arrays) run un-journaled rather than
        failing.  ``resume`` (a :class:`~repro.runtime.procs
        .ResumeState`) starts the non-speculative ladder rungs from a
        previously committed prefix — the journal replay path.
        """
        trc = get_tracer()
        if trc.enabled:
            trc.count(_ev.M_POOL_JOBS)
            trc.gauge(_ev.M_POOL_QUEUE_DEPTH, self.admission.depth)
        self.jobs_submitted += 1
        if self._closed:
            raise PoolClosed("pool has been shut down")
        if self._draining:
            raise PoolOverloaded("pool is draining", reason="draining",
                                 depth=self.admission.depth,
                                 capacity=self.admission.config.capacity)
        w_asked = workers if workers is not None else self.config.workers
        try:
            w_eff = self.admission.gate_workers(sp_at, w_asked)
        except PoolOverloaded as ov:
            if trc.enabled:
                trc.count(_ev.M_POOL_SHED)
                trc.event(_ev.EV_POOL_SHED, 0, reason=ov.reason,
                          depth=ov.depth, capacity=ov.capacity,
                          sp_at=ov.sp_at)
            raise
        # Write-ahead: the job is journaled the moment it joins the
        # queue, so a pool killed while this job *waits* still replays
        # it at --resume (the queued jobs are the ones a crash loses
        # silently otherwise).
        if self.journal is not None and job_key is not None:
            try:
                self.journal.record_admitted(
                    job_key, loop=info.loop, store=store,
                    scheme=scheme, speculative=speculative,
                    workers=workers, u=u, strip=strip, chunk=chunk,
                    test_arrays=tuple(test_arrays),
                    privatize=tuple(privatize), deadline_s=deadline_s)
            except IRError:
                job_key = None      # unserializable: run un-journaled
        prof = get_profiler()
        tq0 = time.perf_counter()
        try:
            with prof.phase("pool.queue", depth=self.admission.depth):
                self.admission.enter(deadline_s=deadline_s)
        except PoolOverloaded as ov:
            if trc.enabled:
                trc.count(_ev.M_POOL_SHED)
                trc.event(_ev.EV_POOL_SHED, 0, reason=ov.reason,
                          depth=ov.depth, capacity=ov.capacity)
            if self.journal is not None and job_key is not None:
                # A clean shed is terminal: the caller was told, the
                # store is untouched, and replay must not run it.
                self.journal.record_failed(job_key, f"shed: {ov.reason}")
            raise
        if trc.enabled:
            trc.observe(_ev.M_POOL_QUEUE_WAIT,
                        time.perf_counter() - tq0)
        try:
            self.start()
            result = self._run_job(
                info, store, funcs, scheme=scheme, workers=w_eff,
                chunk=chunk, u=u, strip=strip, speculative=speculative,
                test_arrays=test_arrays, privatize=privatize,
                fault_plan=fault_plan, policy=policy,
                strict_exceptions=strict_exceptions,
                base_resume=resume, job_key=job_key)
        except PoolError:
            raise               # shed/cancelled: the job may rerun
        except BaseException as exc:
            if self.journal is not None and job_key is not None:
                self.journal.record_failed(job_key, repr(exc))
            raise
        finally:
            self.admission.leave()
        if self.journal is not None and job_key is not None:
            self.journal.record_done(job_key, store)
        return result

    def _run_job(self, info, store, funcs, *, scheme, workers, chunk,
                 u, strip, speculative, test_arrays, privatize,
                 fault_plan, policy, strict_exceptions,
                 base_resume=None, job_key=None
                 ) -> ParallelResult:
        """Walk the pool ladder for one admitted job (mirrors
        :func:`~repro.runtime.supervisor.run_supervised`)."""
        policy = policy or self.config.resilience
        trc = get_tracer()
        t0 = time.perf_counter()
        checkpoint = store.copy()
        use_pool = self.breaker.allows_pool(scheme)
        if trc.enabled and not use_pool:
            trc.event(_ev.EV_POOL_BREAKER, 0, scheme=scheme,
                      state=self.breaker.state(scheme))
        ladder = build_pool_ladder(policy, workers)
        if not use_pool:
            ladder = [r for r in ladder if r.mode != "pool"]
        faults: List[Dict[str, Any]] = []
        last_fault: Optional[RealBackendError] = None
        attempt = 0
        pool_attempts = 0
        outcome = "fault"
        jid_token = self._jid + 1   # stable jitter seed for this job
        binding = None
        if self.journal is not None and job_key is not None:
            # One binding for the whole ladder, so the journaled
            # committed prefix only ever advances across attempts.
            binding = _JournalBinding(self.journal, job_key,
                                      speculative=speculative,
                                      privatize=tuple(privatize))
        try:
            for rung in ladder:
                if rung.mode == "pool" \
                        and pool_attempts > self.config.retry.max_retries:
                    continue    # retry budget spent: degrade out
                if rung.mode == "pool" and self._draining:
                    continue    # drain: finish degraded, not on the pool
                resume = None
                if rung.stage == "partial-restart":
                    resume = getattr(last_fault, "salvage", None)
                    if resume is None or speculative:
                        continue
                if self._draining and rung.mode == "threads":
                    # Drain checkpoint-finish: resume the cancelled
                    # job from its salvaged committed prefix.
                    salvage = getattr(last_fault, "salvage", None)
                    if salvage is not None and not speculative:
                        resume = salvage
                if resume is None and base_resume is not None \
                        and not speculative:
                    # Journal replay: every parallel rung starts from
                    # the persisted committed prefix, not iteration 0.
                    resume = base_resume
                if attempt:
                    store.restore_from(checkpoint)
                    if rung.mode == "pool":
                        backoff = self.config.retry.backoff_for(
                            attempt, token=jid_token)
                    else:
                        backoff = policy.backoff_for(attempt)
                    if trc.enabled:
                        trc.event(_ev.EV_RETRY, 0, rung=rung.stage,
                                  mode=rung.mode, workers=rung.workers,
                                  attempt=attempt, backoff_s=backoff)
                        trc.count(_ev.M_RETRIES)
                        if rung.mode == "pool":
                            trc.count(_ev.M_POOL_RETRIES)
                        trc.observe(_ev.M_RETRY_BACKOFF, backoff)
                    if backoff:
                        time.sleep(backoff)
                    self.retries += 1 if rung.mode == "pool" else 0

                if rung.mode == "sequential":
                    reason = (getattr(last_fault, "kind", "fault")
                              if last_fault is not None else "policy")
                    result = _run_sequential_rung(info, store, funcs,
                                                  t0, reason)
                    _record_outcome(trc, result, rung, attempt, faults,
                                    reason=reason)
                    outcome = "ok"
                    self.jobs_ok += 1
                    if trc.enabled:
                        trc.count(_ev.M_POOL_JOBS_OK)
                    return result

                armed = (fault_plan.for_attempt(attempt)
                         if fault_plan else None)
                if rung.mode == "pool":
                    pool_attempts += 1
                    engine = _PoolEngine(self, rung.workers, binding)
                    monitor = _HeartbeatMonitor(
                        self, engine.jid,
                        self.config.liveness_deadline_s,
                        self.config.job_deadline_s)
                    run_kwargs = dict(mode="procs", engine=engine,
                                      monitor=monitor)
                else:
                    from repro.runtime.supervisor import Watchdog
                    run_kwargs = dict(mode="threads",
                                      monitor=Watchdog(policy))
                try:
                    result = run_parallel_real(
                        info, store, funcs,
                        scheme=scheme, workers=rung.workers,
                        chunk=chunk, u=u, strip=strip,
                        speculative=speculative,
                        test_arrays=test_arrays, privatize=privatize,
                        fault_plan=armed,
                        barrier_timeout=policy.deadline_s,
                        queue_timeout=policy.deadline_s,
                        strict_exceptions=strict_exceptions,
                        partial_restart=policy.allow_partial_restart,
                        resume=resume, **run_kwargs)
                except WorkerFault as fault:
                    last_fault = fault
                    faults.append(_fault_summary(fault))
                    _record_fault(trc, fault, rung, attempt)
                    if rung.mode == "pool":
                        tripped = self.breaker.record_fault(
                            scheme, fault.kind)
                        if tripped:
                            if trc.enabled:
                                trc.event(_ev.EV_POOL_BREAKER, 0,
                                          scheme=scheme, state="open",
                                          kind=fault.kind)
                            use_pool = False
                            ladder = [r for r in ladder
                                      if r.mode != "pool"
                                      or r.stage == "partial-restart"]
                    attempt += 1
                    continue
                except RealBackendError as fault:
                    last_fault = fault
                    faults.append(_fault_summary(fault))
                    _record_fault(trc, fault, rung, attempt)
                    attempt += 1
                    continue
                if rung.mode == "pool":
                    self.breaker.record_success(scheme)
                if resume is not None:
                    spec = result.stats.setdefault("spec", {})
                    spec["salvaged_iters"] = max(
                        spec.get("salvaged_iters", 0),
                        resume.salvaged_iters)
                    spec["partial_restarts"] = \
                        spec.get("partial_restarts", 0) + 1
                _record_outcome(trc, result, rung, attempt, faults)
                result.stats.setdefault("pool", {}).update({
                    "pool_attempts": pool_attempts,
                    "breaker": self.breaker.state(scheme),
                })
                outcome = "ok"
                self.jobs_ok += 1
                if trc.enabled:
                    trc.count(_ev.M_POOL_JOBS_OK)
                return result
            raise LadderExhausted(
                f"every rung of the pool ladder failed for loop "
                f"{info.loop.name!r} ({len(faults)} faults: "
                f"{[f['kind'] for f in faults]})") from last_fault
        except BaseException:
            if outcome != "ok":
                self.jobs_failed += 1
                if trc.enabled:
                    trc.count(_ev.M_POOL_JOBS_FAILED)
            raise
        finally:
            if trc.enabled:
                wall = time.perf_counter() - t0
                trc.span(_ev.EV_POOL_JOB, 0, max(1, int(wall * 1e9)),
                         loop=info.loop.name, scheme=scheme,
                         workers=workers, attempts=attempt + 1,
                         outcome=outcome)

    # -- drain / shutdown --------------------------------------------------
    def drain(self, timeout_s: float = 30.0) -> bool:
        """Stop admitting, finish/checkpoint in-flight work, park.

        In-flight jobs are cancelled at their next strip boundary and
        finish degraded from their salvaged committed prefix (the
        ``IntervalCheckpoint`` path); new submits are shed with
        ``reason="draining"``.  Returns True when the pool quiesced
        within ``timeout_s``.  The pool may be :meth:`close`\\ d (or
        re-opened by clearing nothing — drain is terminal here; use
        ``close`` afterwards).
        """
        self._draining = True
        deadline = time.monotonic() + timeout_s
        quiesced = False
        while time.monotonic() < deadline:
            if self.admission.depth == 0:
                quiesced = True
                break
            time.sleep(0.02)
        return quiesced

    def close(self, timeout_s: float = 10.0) -> None:
        """Drain, stop the workers, release the arena (idempotent).

        Also restores any SIGTERM/SIGINT handlers displaced by
        :meth:`install_signal_handlers` — the pool's disposition must
        not outlive the pool."""
        with self._lifecycle:
            if self._closed:
                return
            self._draining = True
            self.drain(timeout_s)
            self._closed = True
            shared, procs = self._shared, self._procs
            self._shared, self._procs = None, []
            prev, self._prev_handlers = self._prev_handlers, None
        if prev is not None:
            import signal
            for signum, handler in prev.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, TypeError, OSError):
                    pass    # not the main thread / handler not settable
        if shared is not None:
            for slot in range(len(procs)):
                try:
                    shared.jobqs[slot].put(("stop",))
                except (OSError, ValueError):
                    pass
            for proc in procs:
                proc.join(timeout=5.0)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
            shared.close_queues()
        self.arena.close()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain-and-close.

        The handlers being replaced are saved and reinstated by
        :meth:`close`, so a pool that shuts down cleanly leaves the
        process's signal disposition exactly as it found it."""
        import signal

        def _handler(signum, frame):
            self.close()
            raise SystemExit(128 + signum)

        prev = {
            signal.SIGTERM: signal.signal(signal.SIGTERM, _handler),
            signal.SIGINT: signal.signal(signal.SIGINT, _handler),
        }
        if self._prev_handlers is None:     # keep the oldest originals
            self._prev_handlers = prev

    # -- health ------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """Structured health report (the chaos/soak/CI artifact)."""
        alive = sum(1 for p in self._procs if p.is_alive())
        return {
            "closed": self._closed,
            "draining": self._draining,
            "workers": {"configured": self.config.workers,
                        "alive": alive,
                        "respawns": self.respawns,
                        "recycles": self.recycles},
            "jobs": {"submitted": self.jobs_submitted,
                     "ok": self.jobs_ok,
                     "failed": self.jobs_failed,
                     "shed": self.admission.shed,
                     "retries": self.retries,
                     "queue_depth": self.admission.depth},
            "arena": self.arena.stats(),
            "breakers": self.breaker.snapshot(),
        }


# ---------------------------------------------------------------------------
# Module-level default pool (what ``backend="pool"`` routes through)
# ---------------------------------------------------------------------------

_default_pool: Optional[WorkerPool] = None
_default_lock = threading.Lock()


def get_default_pool(workers: Optional[int] = None,
                     config: Optional[PoolConfig] = None) -> WorkerPool:
    """The process-wide pool ``parallelize(backend="pool")`` uses.

    Created lazily on first use; a ``workers`` ask larger than the
    current pool recreates it (jobs are degraded, never upgraded,
    silently).  Closed automatically at interpreter exit.
    """
    global _default_pool
    with _default_lock:
        if _default_pool is not None and _default_pool._closed:
            _default_pool = None
        if _default_pool is not None and workers is not None \
                and workers > _default_pool.config.workers:
            _default_pool.close()
            _default_pool = None
        if _default_pool is None:
            cfg = config or PoolConfig(workers=workers or 2)
            _default_pool = WorkerPool(cfg)
            import atexit
            atexit.register(close_default_pool)
        return _default_pool


def close_default_pool() -> None:
    """Close and forget the default pool (idempotent)."""
    global _default_pool
    with _default_lock:
        pool, _default_pool = _default_pool, None
    if pool is not None:
        pool.close()
