"""MCSPARSE ``DFACT`` Loop 500 analog (paper Section 9, Figures 8-11).

The original searches a sparse matrix for an acceptable pivot in a
*non-deterministic* manner — "the program is designed to be
insensitive to the order in which the columns and rows of the matrix
are searched".  The paper fuses the (originally sequential) column
WHILE loop with the parallel row search into a single **WHILE-DOANY**
over the whole matrix: RV terminator, overshoot allowed, and *no
backups or time-stamps needed* because the search order is
immaterial.

Each iteration probes one candidate: computes its Markowitz cost
``(r-1)(c-1)`` from the row/column counts and tests numerical
acceptability; the first acceptable candidate exits the loop with the
pivot recorded.  Available parallelism — and therefore the obtained
speedup — "is strongly dependent on the data input": how deep the
search runs and how expensive each probe is vary per matrix, which is
why the paper reports four inputs (7.0 / 6.8 / 4.8 / 5.7 on gematt11 /
gematt12 / orsreg1 / saylr4).

The four inputs here are synthetic matrices with the corresponding
Harwell-Boeing profiles; the acceptability threshold is calibrated per
input so the search depth matches the relative parallelism the paper
saw.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.executors.doany import run_while_doany
from repro.ir.functions import FunctionTable
from repro.ir.nodes import (
    Assign,
    Call,
    Const,
    Exit,
    If,
    Var,
    WhileLoop,
    gt_,
    le_,
)
from repro.ir.store import Store
from repro.structures.sparse import HB_PROFILES, generate_hb_like
from repro.workloads.base import Method, Workload

__all__ = ["make_mcsparse_dfact500", "MCSPARSE_INPUTS"]

#: Input name -> (matrix scale, probe cost, target search depth).
#: Depths are calibrated so the relative speedups track Figures 8-11:
#: the gematt matrices expose a deep, work-rich search (near-linear
#: speedup); orsreg1's regular structure finds a pivot quickly (least
#: parallelism); saylr4 sits between.
MCSPARSE_INPUTS = {
    "gematt11": (0.12, 70, 420),
    "gematt12": (0.12, 70, 260),
    "orsreg1": (0.10, 32, 58),
    "saylr4": (0.10, 48, 120),
}


def _probe_cost(ctx, cand: int):
    """Probe one candidate: Markowitz cost from the count arrays."""
    r = ctx.read("rownnz", cand)
    c = ctx.read("colnnz", cand)
    return (r - 1) * (c - 1)


def _probe_stable(ctx, cand: int):
    """Numerical stability test: |diagonal| above the threshold."""
    d = ctx.read("diagmag", cand)
    return 1 if d >= ctx.load("stab") else 0


def make_mcsparse_dfact500(input_name: str = "gematt11", *,
                           seed: int = 500) -> Workload:
    """Build the Loop 500 analog for one of the four paper inputs."""
    try:
        scale, probe_cost, depth = MCSPARSE_INPUTS[input_name]
    except KeyError:
        raise KeyError(f"unknown MCSPARSE input {input_name!r}; choose "
                       f"from {sorted(MCSPARSE_INPUTS)}") from None
    profile = HB_PROFILES[input_name]
    rng = np.random.default_rng(
        seed + zlib.crc32(input_name.encode()) % 1000)
    matrix = generate_hb_like(profile, scale=scale, rng=rng)
    n = matrix.n

    # Candidate order: a fixed permutation of the rows (the fused
    # row+column search enumerates candidates in some order; DOANY
    # makes the order irrelevant).
    order = rng.permutation(n).astype(np.int64)
    diagmag = np.zeros(n)
    for i in range(n):
        row = matrix.row(i)
        vals = matrix.row_values(i)
        j = np.searchsorted(row, i)
        diagmag[i] = abs(vals[j]) if j < row.size and row[j] == i else 0.0

    # Calibrate acceptability so the sequential search exits at
    # exactly `depth` candidates — the per-input available parallelism
    # the paper stresses ("strongly dependent on the data input").
    rownnz = matrix.row_nnz.copy().astype(np.int64)
    colnnz = matrix.col_nnz.copy().astype(np.int64)
    stab = float(np.quantile(diagmag[diagmag > 0], 0.3))
    target = min(depth, n)
    mk_limit = int(np.quantile(
        (rownnz - 1) * (np.maximum(colnnz, 1) - 1), 0.5))
    for pos in range(target - 1):
        cand = order[pos]
        # Disqualify: numerically unacceptable (fails the stability
        # test), which works even when the Markowitz cost is 0.
        if (rownnz[cand] - 1) * (colnnz[cand] - 1) <= mk_limit \
                and diagmag[cand] >= stab:
            diagmag[cand] = stab * 0.5
    # Qualify the target candidate.
    tgt = order[target - 1]
    rownnz[tgt] = 2
    colnnz[tgt] = 2
    diagmag[tgt] = max(diagmag[tgt], stab * 2)

    funcs = FunctionTable()
    funcs.register("probe_cost", _probe_cost, cost=probe_cost,
                   reads=("rownnz", "colnnz"))
    funcs.register("probe_stable", _probe_stable, cost=12,
                   reads=("diagmag",))

    loop = WhileLoop(
        init=[Assign("k", Const(1)),
              Assign("pivot", Const(-1)),
              Assign("pivot_cost", Const(0))],
        cond=le_(Var("k"), Var("ncand")),
        body=[
            Assign("cand", Call("cand_at", [Var("k")])),
            Assign("mcost", Call("probe_cost", [Var("cand")])),
            If(gt_(Call("probe_stable", [Var("cand")]), 0),
               [If(le_(Var("mcost"), Var("mklimit")),
                   [Assign("pivot", Var("cand")),
                    Assign("pivot_cost", Var("mcost")),
                    Exit()])]),
            Assign("k", Var("k") + 1),
        ],
        name=f"mcsparse-dfact-loop500[{input_name}]",
    )
    funcs.register("cand_at", lambda ctx, k: ctx.read("cand_order", k - 1),
                   cost=2, reads=("cand_order",))

    def make_store() -> Store:
        return Store({
            "cand_order": order.copy(),
            "rownnz": rownnz.copy(),
            "colnnz": colnnz.copy(),
            "diagmag": diagmag.copy(),
            "stab": stab,
            "mklimit": mk_limit,
            "ncand": n,
            "k": 0, "pivot": -1, "pivot_cost": 0, "cand": 0, "mcost": 0,
        })

    return Workload(
        name=f"mcsparse-dfact500[{input_name}]",
        description=("MCSPARSE DFACT loop 500: WHILE-DOANY pivot "
                     "search; RV terminator, overshoot allowed, no "
                     "backups or time-stamps (order-insensitive)"),
        loop=loop,
        funcs=funcs,
        make_store=make_store,
        methods=(
            Method("WHILE-DOANY", run_while_doany),
        ),
        paper_speedups={
            "WHILE-DOANY": {"gematt11": 7.0, "gematt12": 6.8,
                            "orsreg1": 4.8, "saylr4": 5.7}[input_name],
        },
        expects_store_equality=False,
    )
