"""The speculative driver: PD-tested parallel execution with fallback.

Section 5 of the paper end to end: when cross-iteration dependences
cannot be analyzed statically, execute the WHILE loop speculatively as
a DOALL (via any of the Section 3 schemes) with the PD test's shadow
marking, optionally privatizing suspect arrays; after the run, the
fully parallel analysis decides validity.  On failure — or on any
exception inside an iteration — restore the checkpoint and re-execute
sequentially.  The total time then includes both the failed attempt
and the sequential run, which is exactly the slowdown Section 7 bounds
by ``O(T_seq / p)`` relative overhead.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from repro.analysis.recurrence import RecKind
from repro.errors import SpeculationFailed
from repro.ir.functions import FunctionTable
from repro.ir.interp import SequentialInterp
from repro.ir.store import Store
from repro.obs import names as _ev
from repro.obs.tracer import get_tracer
from repro.runtime.machine import Machine
from repro.speculation.hashshadow import HashShadowArrays
from repro.speculation.pdtest import ShadowArrays, analyze_pd
from repro.speculation.privatize import PrivateArrays

from repro.executors.associative import run_associative_prefix
from repro.executors.base import ParallelResult
from repro.executors.general import run_general3
from repro.executors.induction import run_induction2
from repro.executors.sequential import ensure_info

__all__ = ["run_speculative", "default_test_arrays"]


def default_test_arrays(info) -> Tuple[str, ...]:
    """Arrays the PD test must watch: unanalyzable accesses on arrays
    the loop writes (paper Section 5: the test is applied to each
    shared variable whose accesses cannot be analyzed)."""
    written = info.effects.array_writes
    suspicious = {
        s.access.array for s in info.subscripts
        if s.unknown and s.access.array in written
    }
    # Arrays touched only through opaque intrinsics have no subscript
    # records; treat every written array as suspect then.
    if info.effects.opaque:
        suspicious |= set(written)
    return tuple(sorted(suspicious))


def _default_scheme(info) -> Callable[..., ParallelResult]:
    disp = info.dispatcher
    if disp is not None and not disp.irregular:
        if disp.kind is RecKind.INDUCTION:
            return run_induction2
        if disp.kind is RecKind.AFFINE:
            return run_associative_prefix
    return run_general3


def run_speculative(
    loop_or_info, store: Store, machine: Machine, funcs: FunctionTable, *,
    scheme: Optional[Callable[..., ParallelResult]] = None,
    test_arrays: Optional[Iterable[str]] = None,
    privatize: Iterable[str] = (),
    sparse_shadow: bool = False,
    u: Optional[int] = None,
    strip: Optional[int] = None,
) -> ParallelResult:
    """Speculatively parallelize; fall back to sequential on hazards.

    Parameters
    ----------
    scheme:
        Underlying DOALL scheme (chosen from the dispatcher kind when
        omitted).
    test_arrays:
        Arrays to run the PD test on; defaults to every written array
        with unanalyzable accesses.
    privatize:
        Arrays to privatize during the speculative run (validity then
        uses the privatization criterion for them, and their values are
        published by time-stamped copy-out).
    sparse_shadow:
        Use hash-table shadow structures (Section 4's memory
        optimization for sparse access patterns).
    """
    info = ensure_info(loop_or_info, funcs)
    runner = scheme or _default_scheme(info)
    tested = tuple(test_arrays) if test_arrays is not None \
        else default_test_arrays(info)
    privatized = tuple(privatize)

    if sparse_shadow:
        shadow_hook = HashShadowArrays(store, tested)
    else:
        shadow_hook = ShadowArrays(store, tested)
    priv_hook = PrivateArrays(privatized) if privatized else None
    extra = (priv_hook,) if priv_hook else ()

    backup = store.copy()

    def sequential_fallback(t_wasted: int, reason: str) -> ParallelResult:
        store.restore_from(backup)
        interp = SequentialInterp(info.loop, funcs, machine.cost)
        res = interp.run(store)
        restore_t = machine.parallel_work_time(
            sum(backup[a].size for a in backup.arrays())
            * machine.cost.restore_word)
        trc = get_tracer()
        if trc.enabled:
            trc.event(_ev.EV_SPEC_FALLBACK, t_wasted, reason=reason,
                      wasted_cycles=t_wasted, loop=info.loop.name)
            trc.count(_ev.M_FALLBACKS)
            trc.count(_ev.M_WASTED_CYCLES, t_wasted)
        return ParallelResult(
            scheme=f"speculative[{reason}]->sequential",
            n_iters=res.n_iters,
            exited_in_body=res.exited_in_body,
            t_par=t_wasted + restore_t + res.cycles,
            makespan=res.cycles,
            t_after=t_wasted + restore_t,
            executed=res.n_iters,
            fallback_sequential=True,
            stats={"wasted_cycles": t_wasted, "reason": reason},
        )

    try:
        if isinstance(shadow_hook, HashShadowArrays):
            # The scheme's core calls analyze_pd on a ShadowArrays-like
            # object; hand it the sparse hook and densify afterwards.
            result = runner(info, store, machine, funcs, u=u, strip=strip,
                            shadows=None, force_checkpoint=True,
                            extra_hooks=(shadow_hook,) + extra)
            dense = shadow_hook.densify()
            pd = analyze_pd(dense, machine,
                            last_valid=result.n_iters
                            if info.may_overshoot else None)
            result.pd = pd
            result.t_after += pd.analysis_time
            result.t_par += pd.analysis_time
        else:
            result = runner(info, store, machine, funcs, u=u, strip=strip,
                            shadows=shadow_hook, force_checkpoint=True,
                            extra_hooks=extra)
            pd = result.pd
    except SpeculationFailed as exc:
        return sequential_fallback(0, "exception")

    valid = pd.valid_with_privatized(privatized) if pd.per_array \
        else pd.valid_as_is
    if not valid:
        return sequential_fallback(result.t_par, "pd-failed")

    trc = get_tracer()
    if priv_hook is not None:
        report = priv_hook.copy_out(store, result.n_iters)
        t_copy = machine.parallel_work_time(
            report.copied_words * machine.cost.array_write)
        result.t_after += t_copy
        result.t_par += t_copy
        result.stats["copy_out"] = report
        if trc.enabled:
            trc.event(_ev.EV_COPY_OUT, result.t_par,
                      words=report.copied_words,
                      arrays=sorted(privatized))
            trc.count(_ev.M_COPY_OUT_WORDS, report.copied_words)

    result.scheme = f"speculative[{result.scheme}]"
    result.stats["tested_arrays"] = tested
    result.stats["privatized_arrays"] = privatized
    result.stats["shadow_words"] = shadow_hook.words
    if trc.enabled:
        trc.count(_ev.M_SHADOW_WORDS, shadow_hook.words)
        if pd is not None and pd.per_array:
            trc.event(_ev.EV_PD_VERDICT, result.t_par,
                      scheme=result.scheme, valid=valid,
                      arrays=sorted(pd.per_array))
    return result
