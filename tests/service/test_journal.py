"""The write-ahead job journal: records, scanning, sweep, replay.

The durability contract under test (docs/service.md, "Durability &
failover"): every admitted job either reaches a terminal record or is
replayed by ``resume_jobs`` to a final store bit-identical to what an
uninterrupted run would have produced — resuming from the last
committed strip checkpoint, not iteration 0, whenever one was
journaled before the crash.

Crashes are simulated by truncating the journal's tail (dropping the
terminal ``done`` record a completed run appended), which leaves the
log byte-identical to what a SIGKILL between the last checkpoint and
completion leaves behind; the *whole-process* SIGKILL version of the
same drill lives in ``test_durability.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.loopinfo import analyze_loop
from repro.executors.speculative import default_test_arrays
from repro.ir.interp import SequentialInterp
from repro.runtime.costs import FREE
from repro.service.journal import (
    JobJournal,
    default_job_key,
    resume_jobs,
)
from repro.service.pool import PoolConfig, WorkerPool
from repro.workloads.zoo import make_zoo


@pytest.fixture(scope="module")
def zoo():
    return {z.name: z for z in make_zoo(48)}


def _oracle(zl):
    ref = zl.make_store()
    SequentialInterp(zl.loop, zl.funcs, FREE).run(ref)
    return ref


def _drop_done(journal: JobJournal, key: str) -> None:
    """Crash-sim: sever the job's terminal record from the log."""
    journal.close()
    with open(journal.path, "r", encoding="utf-8") as fh:
        lines = [ln for ln in fh
                 if not (json.loads(ln).get("t") == "done"
                         and json.loads(ln).get("job") == key)]
    with open(journal.path, "w", encoding="utf-8") as fh:
        fh.writelines(lines)


# -- record writers / scan ------------------------------------------------

def test_admitted_is_idempotent_per_key(tmp_path, zoo):
    zl = zoo["mono-induction/RI"]
    j = JobJournal(tmp_path)
    assert j.record_admitted("k", loop=zl.loop, store=zl.make_store())
    assert not j.record_admitted("k", loop=zl.loop,
                                 store=zl.make_store())
    # One admitted record on disk, not two.
    kinds = [json.loads(ln)["t"] for ln in open(j.path)]
    assert kinds == ["admitted"]
    j.close()


def test_admitted_idempotency_survives_reopen(tmp_path, zoo):
    zl = zoo["mono-induction/RI"]
    j = JobJournal(tmp_path)
    j.record_admitted("k", loop=zl.loop, store=zl.make_store())
    j.close()
    # A fresh handle (the post-crash reopen) seeds its dedup set from
    # disk — resubmission stays a no-op across process lifetimes.
    j2 = JobJournal(tmp_path)
    assert not j2.record_admitted("k", loop=zl.loop,
                                  store=zl.make_store())
    j2.close()


def test_scan_folds_lifecycle_and_result_roundtrip(tmp_path, zoo):
    zl = zoo["mono-induction/RI"]
    ref = _oracle(zl)
    j = JobJournal(tmp_path)
    j.record_admitted("a", loop=zl.loop, store=zl.make_store(),
                      scheme="doall", u=96)
    j.record_lease("a", ["seg-1", "seg-2"])
    j.record_lease("a", ["seg-2", "seg-3"])     # dedup, keep order
    j.record_done("a", ref)
    j.record_admitted("b", loop=zl.loop, store=zl.make_store())
    scan = j.scan()
    assert scan.torn == 0
    a, b = scan.jobs["a"], scan.jobs["b"]
    assert a.outcome == "done" and not a.incomplete
    assert a.segments == ("seg-1", "seg-2", "seg-3")
    assert b.incomplete
    assert [x.key for x in scan.incomplete()] == ["b"]
    # result_for round-trips the journaled final store bit-exactly.
    assert j.result_for("a").equals(ref)
    assert j.result_for("b") is None
    j.close()


def test_scan_tolerates_torn_tail_and_garbage(tmp_path, zoo):
    zl = zoo["mono-induction/RI"]
    j = JobJournal(tmp_path)
    j.record_admitted("a", loop=zl.loop, store=zl.make_store())
    j.close()
    with open(j.path, "a", encoding="utf-8") as fh:
        fh.write('{"t": "done", "job": "a", "store": {"trunc\n')
        fh.write("not json at all\n")
        fh.write('{"missing": "mandatory fields"}\n')
    scan = j.scan()
    assert scan.torn == 3
    # The torn terminal record must NOT complete the job.
    assert scan.jobs["a"].incomplete


def test_records_without_admitted_count_torn(tmp_path):
    j = JobJournal(tmp_path)
    with open(j.path, "a", encoding="utf-8") as fh:
        fh.write('{"t": "lease", "job": "ghost", "segments": []}\n')
    scan = j.scan()
    assert scan.torn == 1 and not scan.jobs


def test_default_job_key_is_content_addressed(zoo):
    zl = zoo["mono-induction/RI"]
    k1 = default_job_key(zl.loop, zl.make_store(), "doall")
    k2 = default_job_key(zl.loop, zl.make_store(), "doall")
    assert k1 == k2                     # same job, same key
    assert k1 != default_job_key(zl.loop, zl.make_store(), "general-3")
    assert k1 != default_job_key(zl.loop, zl.make_store(), "doall",
                                 salt="run-2")


# -- pool integration: write-ahead + checkpoints --------------------------

def test_pool_journals_admitted_checkpoints_and_done(tmp_path, zoo):
    zl = zoo["mono-induction/RI"]
    info = analyze_loop(zl.loop, zl.funcs)
    ref = _oracle(zl)
    j = JobJournal(tmp_path)
    pool = WorkerPool(PoolConfig(workers=2), journal=j)
    try:
        st = zl.make_store()
        pool.submit(info, st, zl.funcs, scheme="doall", u=96,
                    strip=16, job_key="jk")
        assert st.equals(ref)
    finally:
        pool.close()
    job = j.scan().jobs["jk"]
    assert job.outcome == "done"
    assert job.n_checkpoints >= 2       # strip boundaries committed
    assert job.segments                 # the lease was journaled
    # The admitted record precedes every checkpoint (write-ahead).
    kinds = [json.loads(ln)["t"] for ln in open(j.path)]
    assert kinds.index("admitted") < kinds.index("checkpoint")
    j.close()


def test_pool_without_job_key_runs_unjournaled(tmp_path, zoo):
    zl = zoo["mono-induction/RI"]
    info = analyze_loop(zl.loop, zl.funcs)
    j = JobJournal(tmp_path)
    pool = WorkerPool(PoolConfig(workers=2), journal=j)
    try:
        st = zl.make_store()
        pool.submit(info, st, zl.funcs, scheme="doall", u=96)
        assert st.equals(_oracle(zl))
    finally:
        pool.close()
    assert not j.scan().jobs
    j.close()


# -- crash-sim replay: both resume modes ----------------------------------

def test_resume_nonspeculative_from_checkpoint(tmp_path, zoo):
    zl = zoo["mono-induction/RI"]
    info = analyze_loop(zl.loop, zl.funcs)
    ref = _oracle(zl)
    j = JobJournal(tmp_path)
    pool = WorkerPool(PoolConfig(workers=2), journal=j)
    try:
        pool.submit(info, zl.make_store(), zl.funcs, scheme="doall",
                    u=96, strip=16, job_key="crash")
    finally:
        pool.close()
    _drop_done(j, "crash")

    j2 = JobJournal(tmp_path)
    assert [x.key for x in j2.scan().incomplete()] == ["crash"]
    pool2 = WorkerPool(PoolConfig(workers=2), journal=j2)
    try:
        outs = resume_jobs(j2, pool2, funcs_for=lambda job: zl.funcs)
    finally:
        pool2.close()
    (out,) = outs
    assert out.mode == "pool-resume"
    assert out.resumed_from > 1         # committed prefix, not iter 0
    assert out.store.equals(ref)        # bit-identical to the oracle
    # The replay reached a terminal record: a second resume is a no-op.
    assert not j2.scan().incomplete()
    pool3 = WorkerPool(PoolConfig(workers=2), journal=j2)
    try:
        assert resume_jobs(j2, pool3) == []
    finally:
        pool3.close()
    j2.close()


def test_resume_speculative_continues_sequentially(tmp_path, zoo):
    zl = zoo["mono-induction/RV"]
    info = analyze_loop(zl.loop, zl.funcs)
    ref = _oracle(zl)
    j = JobJournal(tmp_path)
    pool = WorkerPool(PoolConfig(workers=2), journal=j)
    try:
        pool.submit(info, zl.make_store(), zl.funcs, scheme="doall",
                    u=96, strip=16, speculative=True,
                    test_arrays=default_test_arrays(info),
                    job_key="spec")
    finally:
        pool.close()
    _drop_done(j, "spec")

    j2 = JobJournal(tmp_path)
    pool2 = WorkerPool(PoolConfig(workers=2), journal=j2)
    try:
        outs = resume_jobs(j2, pool2, funcs_for=lambda job: zl.funcs)
    finally:
        pool2.close()
    (out,) = outs
    # Speculative prefixes cannot be resumed *into* the pool
    # (run_parallel_real rejects speculative ResumeStates), so replay
    # restores the PD-validated checkpoint and finishes sequentially.
    assert out.mode == "sequential-continue"
    assert out.resumed_from > 1
    assert out.store.equals(ref)
    assert not j2.scan().incomplete()
    j2.close()


def test_resume_without_checkpoint_reruns_from_scratch(tmp_path, zoo):
    zl = zoo["general/RI"]
    ref = _oracle(zl)
    j = JobJournal(tmp_path)
    j.record_admitted("fresh", loop=zl.loop, store=zl.make_store(),
                      scheme="general-3", u=96)
    pool = WorkerPool(PoolConfig(workers=2), journal=j)
    try:
        outs = resume_jobs(j, pool, funcs_for=lambda job: zl.funcs)
    finally:
        pool.close()
    (out,) = outs
    assert out.mode == "pool-fresh" and out.resumed_from == 1
    assert out.scheme == "general-3"    # original scheme honored
    assert out.store.equals(ref)
    j.close()


def test_resume_journals_unresolvable_jobs_as_failed(tmp_path):
    from repro.workloads.bench import make_doall_bench

    bench = make_doall_bench(16, 1_000)
    j = JobJournal(tmp_path)
    j.record_admitted("needs-funcs", loop=bench.loop,
                      store=bench.make_store(), u=24)
    pool = WorkerPool(PoolConfig(workers=2), journal=j)
    try:
        # No funcs_for: the loop's `crunch` intrinsic is unresolvable
        # — the job must fail *terminally* (journaled), not crash the
        # resume pass or stay incomplete forever.
        outs = resume_jobs(j, pool)
    finally:
        pool.close()
    assert outs == []
    job = j.scan().jobs["needs-funcs"]
    assert job.outcome == "failed"
    assert "crunch" in job.error
    j.close()
