"""Source-level differential fuzzing of the Python frontend.

The third fuzzer cell.  Where :mod:`repro.fuzz.generator` draws random
IR, this module draws random *Python source* — real ``while`` loops in
the frontend's supported subset — and differentially checks the whole
``@parallelize`` path against the one oracle that cannot be wrong about
Python semantics: ``exec`` of the very same source.

For every draw:

1. the source is lifted (:func:`~repro.frontend.pyfront.lift_source`);
   a :class:`~repro.errors.FrontendError` on a generated in-subset
   program is itself a finding;
2. a bounded ``exec`` of the source against fresh bindings establishes
   ground truth (a step budget makes a non-terminating edit impossible
   to smuggle in — see :func:`bounded_exec`);
3. the lifted IR's sequential interpretation must reproduce the
   ``exec`` store exactly (*frontend fidelity* — the lift itself under
   test);
4. every applicable sim scheme
   (:func:`~repro.testing.check_equivalence`), the planner-chosen
   scheme on each requested real backend
   (:func:`~repro.api.parallelize`), and the vectorized kernel tier
   must all agree with that same ground truth.

Failing draws are shrunk *at the source level* (statement deletion and
integer-constant reduction via ``ast``, re-validated by a bounded
ground-truth run) and frozen as JSON entries — storing the Python
source text itself — under ``tests/corpus/pysource/``, which tier-1
replays deterministically forever after.

Shapes cover the frontend features PR 10 added on top of the classic
taxonomy: ``while True`` + ``break``, chained comparisons, ``len()``
bounds, tuple-assignment swaps, accumulator reductions, linked-list
chases, RV sentinel scans, affine dispatchers, and float stencils.
"""

from __future__ import annotations

import ast
import json
import random
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.dependence import Verdict
from repro.errors import (
    FrontendError,
    KernelFallback,
    RealBackendError,
    ReproError,
)
from repro.executors.sequential import ensure_info
from repro.ir.functions import FunctionTable
from repro.ir.interp import SequentialInterp
from repro.ir.serialize import store_from_obj, store_to_obj
from repro.ir.store import Store
from repro.kernels import run_kernel
from repro.obs import names as _ev
from repro.obs.tracer import get_tracer
from repro.runtime.costs import FREE
from repro.runtime.machine import Machine
from repro.structures.linkedlist import build_chain

from repro.fuzz.campaign import _SEED_STRIDE, Finding, FuzzConfig, FuzzReport
from repro.fuzz.oracle import Discrepancy, OracleVerdict

__all__ = [
    "SHAPES", "PySourceProgram", "generate_source_program",
    "bounded_exec", "check_source_program",
    "SourceShrinkResult", "shrink_source",
    "SourceCorpusEntry", "source_entry_to_obj", "source_entry_from_obj",
    "save_source_entry", "load_source_corpus", "replay_source_entry",
    "render_source_repro", "run_frontend_campaign",
    "DEFAULT_SOURCE_CORPUS",
]

#: Default pysource corpus location, relative to the repository root.
DEFAULT_SOURCE_CORPUS = Path("tests") / "corpus" / "pysource"

#: Sentinel planted for RV (data-dependent) exits; generated write
#: values are non-negative, so the loop can never fabricate it.
SENTINEL = -7

#: Execution-step budget multiplier for :func:`bounded_exec`; each
#: generated iteration costs a handful of traced line events.
_STEPS_PER_ITER = 32

#: Builtins exposed to ``exec`` ground truth — exactly the intrinsics
#: the frontend subset knows about, nothing else.
_EXEC_BUILTINS = {"abs": abs, "min": min, "max": max, "len": len,
                  "range": range, "True": True, "False": False}


@dataclass(frozen=True)
class PySourceProgram:
    """One synthesized Python-source program with its bindings.

    Attributes
    ----------
    source:
        A bare statement fragment (init assignments + one ``while``
        loop) in the frontend subset; both ``lift_source`` and ``exec``
        consume it verbatim.
    store_obj:
        JSON-safe initial bindings (:func:`repro.ir.serialize
        .store_to_obj` format) — materialized fresh for every run, on
        both sides of the differential.
    cell:
        Shape label ``"pysource/<shape>"`` (one of :data:`SHAPES`,
        prefixed).
    shape:
        Generator shape plus active mutators (diagnostic label).
    u:
        A sound upper bound on the exit iteration, forwarded to every
        scheme.
    seed:
        The draw's seed, for exact regeneration.
    n_iters:
        Sequential iteration count established at generation time.
    """

    source: str
    store_obj: Dict
    cell: str
    shape: str
    u: int
    seed: int
    n_iters: int = 0
    #: kept for :class:`~repro.fuzz.campaign.FuzzReport` compatibility —
    #: the source generator only emits clean (non-raising) programs.
    raises: Optional[str] = None
    poisoned: bool = False

    def make_store(self) -> Store:
        """Materialize fresh bindings as a :class:`Store`."""
        return store_from_obj(self.store_obj)

    def make_namespace(self) -> Dict:
        """Materialize fresh bindings as an ``exec`` namespace."""
        store = self.make_store()
        return {name: store[name] for name in store.names()}


# -- bounded exec ground truth ---------------------------------------------

class StepBudgetExceeded(RuntimeError):
    """A :func:`bounded_exec` run outlived its step budget."""


def bounded_exec(source: str, namespace: Dict, *,
                 max_steps: int = 100_000,
                 filename: str = "<pysource>") -> None:
    """``exec`` one source fragment under a hard line-event budget.

    Ground truth must never hang the fuzzer: a shrinking edit (or a
    generator bug) that produces a non-terminating loop trips
    :class:`StepBudgetExceeded` after ``max_steps`` traced line events
    instead of spinning forever.  The budget only meters the frame the
    ``exec`` creates; the caller's frame runs untraced.
    """
    code = compile(source, filename, "exec")
    steps = 0

    def tracer(frame, event, arg):
        nonlocal steps
        if event == "line":
            steps += 1
            if steps > max_steps:
                raise StepBudgetExceeded(
                    f"exec of {filename} exceeded {max_steps} steps")
        return tracer

    old = sys.gettrace()
    sys.settrace(tracer)
    try:
        exec(code, {"__builtins__": dict(_EXEC_BUILTINS)}, namespace)
    finally:
        sys.settrace(old)


# -- shape builders ---------------------------------------------------------

@dataclass
class _SrcDraft:
    """Mutable scaffolding a shape builder fills in."""

    lines: List[str] = field(default_factory=list)
    store: Dict = field(default_factory=dict)   # name -> python value
    u: int = 0
    shape: str = ""


def _int_array(rng: random.Random, n: int, lo: int = 0,
               hi: int = 40) -> np.ndarray:
    return np.asarray([rng.randint(lo, hi) for _ in range(n)],
                      dtype=np.int64)


def _shape_counter(rng: random.Random) -> _SrcDraft:
    """Monotonic counter scan with an elementwise write (DOALL row)."""
    n = rng.randint(6, 20)
    s = rng.choice((1, 1, 2))
    k, c = rng.randint(1, 5), rng.randint(0, 9)
    d = _SrcDraft(shape="counter", u=-(-n // s) + 1)
    d.lines = ["i = 0",
               f"while i < {n}:"]
    if rng.random() < 0.3:
        d.lines += [f"    t = A[i] * {k} + {c}",
                    "    A[i] = t"]
        d.store["t"] = 0
        d.shape += "+temp"
    elif rng.random() < 0.3:
        d.lines += ["    if A[i] % 2 == 0:",
                    f"        A[i] = A[i] * {k} + {c}",
                    "    else:",
                    f"        A[i] = A[i] + {c}"]
        d.shape += "+cond"
    else:
        d.lines += [f"    A[i] = A[i] * {k} + {c}"]
    d.lines += [f"    i = i + {s}"]
    d.store["i"] = 0
    d.store["A"] = _int_array(rng, n + 2)
    return d


def _shape_while_true(rng: random.Random) -> _SrcDraft:
    """``while True`` with a ``break`` threshold (RV exit)."""
    n = rng.randint(5, 18)
    c = rng.randint(1, 9)
    d = _SrcDraft(shape="while_true", u=n + 2)
    d.lines = ["i = 0",
               "while True:",
               f"    if i >= {n}:",
               "        break",
               f"    A[i] = A[i] + {c}",
               "    i = i + 1"]
    d.store["i"] = 0
    d.store["A"] = _int_array(rng, n + 2)
    return d


def _shape_chained(rng: random.Random) -> _SrcDraft:
    """Chained-comparison bound ``0 <= i < n``."""
    n = rng.randint(6, 20)
    s = rng.choice((1, 2))
    k, c = rng.randint(1, 4), rng.randint(0, 9)
    d = _SrcDraft(shape="chained", u=-(-n // s) + 1)
    d.lines = ["i = 0",
               f"while 0 <= i < {n}:",
               f"    A[i] = i * {k} + {c}",
               f"    i = i + {s}"]
    d.store["i"] = 0
    d.store["A"] = _int_array(rng, n + 2)
    return d


def _shape_len_bound(rng: random.Random) -> _SrcDraft:
    """``len(A)`` as the loop bound (runtime-bound synthetic scalar)."""
    n = rng.randint(6, 20)
    s = rng.choice((1, 2))
    k = rng.randint(1, 5)
    d = _SrcDraft(shape="len_bound", u=-(-n // s) + 1)
    d.lines = ["i = 0",
               "while i < len(A):",
               f"    A[i] = A[i] + i * {k}",
               f"    i = i + {s}"]
    d.store["i"] = 0
    d.store["A"] = _int_array(rng, n)
    return d


def _shape_tuple_swap(rng: random.Random) -> _SrcDraft:
    """Fibonacci-style tuple swap feeding an elementwise write."""
    n = rng.randint(5, 16)
    m = rng.randint(10, 99)
    d = _SrcDraft(shape="tuple_swap", u=n + 1)
    d.lines = [f"a = {rng.randint(0, 3)}",
               f"b = {rng.randint(1, 3)}",
               "i = 0",
               f"while i < {n}:",
               f"    A[i] = b % {m}",
               "    a, b = b, a + b",
               "    i = i + 1"]
    d.store["a"] = 0
    d.store["b"] = 0
    d.store["i"] = 0
    d.store["A"] = _int_array(rng, n + 1)
    return d


def _shape_assoc(rng: random.Random) -> _SrcDraft:
    """Affine dispatcher ``r = a*r + b`` (associative-recurrence row)."""
    a = rng.choice((2, 3))
    b = rng.randint(1, 4)
    r0 = rng.randint(1, 5)
    limit = rng.choice((10_000, 100_000))
    m = rng.randint(8, 16)
    w = rng.randint(10, 60)
    # r grows at least geometrically, so iterations <= log_a(limit).
    d = _SrcDraft(shape="assoc", u=40)
    d.lines = [f"r = {r0}",
               f"while r < {limit}:",
               f"    A[r % {m}] = r % {w}",
               f"    r = r * {a} + {b}"]
    d.store["r"] = r0
    d.store["A"] = _int_array(rng, m)
    return d


def _shape_list_chase(rng: random.Random) -> _SrcDraft:
    """Linked-list pointer chase (general-recurrence row)."""
    n = rng.randint(5, 16)
    k, c = rng.randint(1, 5), rng.randint(0, 9)
    lst = build_chain(n, scramble=True,
                      rng=np.random.default_rng(rng.randrange(2**31)))
    d = _SrcDraft(shape="list_chase", u=n + 1)
    d.lines = ["p = lst.head",
               "while p != -1:",
               f"    out[p] = p * {k} + {c}",
               "    p = lst.successor(p)"]
    d.store["p"] = 0
    d.store["lst"] = lst
    d.store["out"] = np.zeros(n, dtype=np.int64)
    return d


def _shape_sentinel(rng: random.Random) -> _SrcDraft:
    """RV sentinel scan over a read-only array."""
    q = rng.randint(4, 14)
    margin = 8
    c = rng.randint(1, 9)
    B = _int_array(rng, q + margin)
    B[q] = SENTINEL
    d = _SrcDraft(shape="sentinel", u=q + 2)
    d.lines = ["i = 0",
               f"while B[i] != {SENTINEL}:",
               f"    A[i] = B[i] + {c}",
               "    i = i + 1"]
    d.store["i"] = 0
    d.store["B"] = B
    d.store["A"] = np.zeros(q + margin, dtype=np.int64)
    return d


def _shape_sum_reduce(rng: random.Random) -> _SrcDraft:
    """Accumulator reduction (dependent remainder → sequential demotion
    on real backends — exactly the planner path PR 10 added)."""
    n = rng.randint(5, 18)
    d = _SrcDraft(shape="sum_reduce", u=n + 1)
    d.lines = ["i = 0",
               f"s = {rng.randint(0, 5)}",
               f"while i < {n}:",
               "    s = s + A[i]",
               "    i = i + 1"]
    d.store["i"] = 0
    d.store["s"] = 0
    d.store["A"] = _int_array(rng, n + 1)
    return d


def _shape_stencil(rng: random.Random) -> _SrcDraft:
    """Float Jacobi-style stencil: per-slot deterministic, so bit-exact
    across every scheme (no reduction reassociation)."""
    n = rng.randint(6, 18)
    d = _SrcDraft(shape="stencil", u=n + 1)
    d.lines = ["i = 1",
               f"while i < {n}:",
               "    B[i] = 0.5 * (A[i - 1] + A[i + 1])",
               "    i = i + 1"]
    rs = np.random.default_rng(rng.randrange(2**31))
    d.store["i"] = 1
    d.store["A"] = rs.uniform(-4.0, 4.0, size=n + 2)
    d.store["B"] = np.zeros(n + 2, dtype=np.float64)
    return d


_SHAPE_BUILDERS: Tuple[Callable[[random.Random], _SrcDraft], ...] = (
    _shape_counter, _shape_while_true, _shape_chained, _shape_len_bound,
    _shape_tuple_swap, _shape_assoc, _shape_list_chase, _shape_sentinel,
    _shape_sum_reduce, _shape_stencil,
)

#: The source-shape cells this generator covers.
SHAPES: Tuple[str, ...] = tuple(
    b.__name__.replace("_shape_", "") for b in _SHAPE_BUILDERS)


def generate_source_program(seed: int) -> PySourceProgram:
    """Draw one Python-source program (deterministic in ``seed``).

    The draw is validated by one bounded ``exec`` ground-truth run at
    generation time, mirroring the IR generator's contract: every
    emitted program terminates within its declared bound.
    """
    rng = random.Random(seed)
    draft = _SHAPE_BUILDERS[rng.randrange(len(_SHAPE_BUILDERS))](rng)
    source = "\n".join(draft.lines) + "\n"
    store = Store()
    for name, value in draft.store.items():
        store[name] = value
    store_obj = store_to_obj(store)

    prog = PySourceProgram(
        source=source, store_obj=store_obj,
        cell=f"pysource/{draft.shape.split('+')[0]}",
        shape=draft.shape, u=draft.u, seed=seed)
    # generation-time ground truth: terminates, and count iterations
    ns = prog.make_namespace()
    bounded_exec(source, ns, max_steps=_STEPS_PER_ITER * (draft.u + 64))
    n_iters = _count_iters(prog)
    return replace(prog, n_iters=n_iters)


def _count_iters(prog: PySourceProgram) -> int:
    """Sequential iteration count (via the lifted IR when liftable)."""
    from repro.frontend.pyfront import lift_source
    try:
        lifted = lift_source(prog.source)
        store = _bind_store(prog, lifted)
        res = SequentialInterp(lifted.loop, FunctionTable(), FREE).run(
            store, max_iters=prog.u + 64)
        return res.n_iters
    except Exception:
        return 0


# -- the exec-differential oracle -------------------------------------------

def _bind_store(prog: PySourceProgram, lifted) -> Store:
    """Fresh bindings plus the frontend's synthetic scalars.

    Mirrors what :mod:`repro.frontend.argbind` does for the decorator:
    ``<A>__len`` from the live array, ``<lst>__head`` from the live
    list, and a zero default for loop-created scalars.
    """
    store = prog.make_store()
    present = set(store.names())
    for arr in lifted.lengths:
        name = f"{arr}__len"
        if name not in present:
            store[name] = int(len(store[arr]))
            present.add(name)
    for lst in lifted.lists:
        name = f"{lst}__head"
        if name not in present:
            store[name] = int(store[lst].head)
            present.add(name)
    for scalar in lifted.scalars:
        if scalar not in present:
            store[scalar] = 0
            present.add(scalar)
    return store


def _diff_vs_exec(namespace: Dict, store: Store,
                  store_obj: Dict) -> Optional[str]:
    """Compare a pipeline-final store against the exec ground truth.

    Only the program's own bindings are compared — the frontend's
    synthetic scalars (``__len`` / ``__head`` / ``__pt*`` temporaries)
    have no ``exec``-side counterpart by construction.
    """
    problems: List[str] = []
    for name, spec in store_obj.items():
        if spec["k"] == "list":
            continue   # linked lists are read-only in the subset
        want = namespace.get(name)
        got = store[name]
        if spec["k"] == "array":
            want_a = np.asarray(want)
            if want_a.shape != got.shape or not np.array_equal(
                    want_a, got):
                problems.append(f"{name}: exec={want_a!r} != {got!r}")
        else:
            same = type(want)(got) == want if want is not None else False
            if not same:
                problems.append(f"{name}: exec={want!r} != {got!r}")
    return "; ".join(problems) or None


def _flag(verdict: OracleVerdict, prog: PySourceProgram, kind: str,
          backend: str, scheme: str, detail: str) -> None:
    verdict.discrepancies.append(Discrepancy(
        kind, backend, scheme, detail, prog.seed, prog.cell))


def check_source_program(
    prog: PySourceProgram,
    *,
    backends: Sequence[str] = ("sim",),
    workers: int = 2,
    kernels: bool = True,
    **_ignored,
) -> OracleVerdict:
    """Differentially test one source program against ``exec``.

    Cells, in order (see the module docstring): lift, bounded-exec
    ground truth, lifted-IR sequential fidelity, the full sim scheme
    matrix, the planner-chosen scheme per real backend, and the kernel
    tier.  Fault injection has no frontend-specific surface, so — unlike
    :func:`repro.fuzz.oracle.check_program` — this oracle takes no
    fault plan (extra keywords are accepted and ignored so the two
    oracles stay call-compatible for the campaign driver).
    """
    from repro.api import parallelize
    from repro.frontend.pyfront import lift_source
    from repro.testing import check_equivalence

    funcs = FunctionTable()
    verdict = OracleVerdict(program=prog)

    # 1. lift — a FrontendError on a generated in-subset program is a
    # frontend bug, the very thing this fuzzer hunts
    verdict.checks += 1
    try:
        lifted = lift_source(prog.source)
    except FrontendError as exc:
        _flag(verdict, prog, "scheme-error", "frontend", "lift", str(exc))
        return verdict
    except Exception as exc:   # totality violation: raw SyntaxError etc.
        _flag(verdict, prog, "unexpected-exception", "frontend", "lift",
              f"{type(exc).__name__}: {exc}")
        return verdict

    # 2. exec ground truth
    truth_ns = prog.make_namespace()
    try:
        bounded_exec(prog.source, truth_ns,
                     max_steps=_STEPS_PER_ITER * (prog.u + 64))
    except Exception as exc:
        _flag(verdict, prog, "unexpected-exception", "exec", "exec",
              f"ground-truth exec raised {type(exc).__name__}: {exc}")
        return verdict

    # 3. lifted-IR sequential fidelity — the lift itself under test
    seq_store = _bind_store(prog, lifted)
    verdict.checks += 1
    try:
        seq_res = SequentialInterp(lifted.loop, funcs, FREE).run(
            seq_store, max_iters=prog.u + 64)
    except Exception as exc:
        _flag(verdict, prog, "unexpected-exception", "frontend",
              "lifted-seq", f"{type(exc).__name__}: {exc}")
        return verdict
    detail = _diff_vs_exec(truth_ns, seq_store, prog.store_obj)
    if detail is not None:
        _flag(verdict, prog, "store-mismatch", "frontend", "lifted-seq",
              detail)
        return verdict   # downstream cells would re-report the same lie
    seq_iters = seq_res.n_iters

    # A provably-dependent remainder (accumulators, tuple-swap
    # recurrences) makes the all-scheme sim fan-out unsound — running
    # Induction-2 on it *must* corrupt the store; only the planner's
    # choice (DOACROSS on sim, sequential demotion on real backends)
    # carries the paper's equivalence claim there.
    try:
        dependent = (ensure_info(lifted.loop, funcs)
                     .dependence.verdict is Verdict.DEPENDENT)
    except ReproError:
        dependent = False

    for backend in backends:
        if backend == "sim" and dependent:
            store = _bind_store(prog, lifted)
            scheme = "plan"
            verdict.checks += 1
            try:
                out = parallelize(
                    lifted.loop, store, Machine(max(2, workers), FREE),
                    funcs, verify=False, u=prog.u, min_speedup=0.0,
                    backend="sim")
                scheme = out.plan.scheme
            except ReproError as exc:
                _flag(verdict, prog, "scheme-error", "sim", scheme,
                      f"{type(exc).__name__}: {exc}")
                continue
            except Exception as exc:
                _flag(verdict, prog, "unexpected-exception", "sim",
                      scheme, f"{type(exc).__name__}: {exc}")
                continue
            detail = _diff_vs_exec(truth_ns, store, prog.store_obj)
            if detail is not None:
                _flag(verdict, prog, "store-mismatch", "sim", scheme,
                      detail)
            if out.result.n_iters != seq_iters:
                _flag(verdict, prog, "iters-mismatch", "sim", scheme,
                      f"lvi={out.result.n_iters} != seq={seq_iters}")
        elif backend == "sim":
            report = check_equivalence(
                lifted.loop, lambda: _bind_store(prog, lifted),
                funcs=funcs, u=prog.u)
            for c in report.checks:
                if not c.applicable:
                    continue
                verdict.checks += 1
                if c.error is not None:
                    _flag(verdict, prog, "scheme-error", "sim", c.scheme,
                          c.error)
                    continue
                if not c.store_matches:
                    _flag(verdict, prog, "store-mismatch", "sim",
                          c.scheme, "final store diverges from the "
                          "lifted sequential reference")
                if c.n_iters is not None and c.n_iters != seq_iters:
                    _flag(verdict, prog, "iters-mismatch", "sim",
                          c.scheme, f"lvi={c.n_iters} != seq={seq_iters}")
        elif backend in ("threads", "procs", "pool"):
            store = _bind_store(prog, lifted)
            scheme = "plan"
            verdict.checks += 1
            try:
                out = parallelize(
                    lifted.loop, store, Machine(max(2, workers), FREE),
                    funcs, verify=False, u=prog.u, min_speedup=0.0,
                    backend=backend, workers=workers, kernels="off")
                scheme = out.plan.scheme
            except RealBackendError as exc:
                _flag(verdict, prog, "fault-escape", backend, scheme,
                      f"{type(exc).__name__}: {exc}")
                continue
            except ReproError as exc:
                _flag(verdict, prog, "scheme-error", backend, scheme,
                      f"{type(exc).__name__}: {exc}")
                continue
            except Exception as exc:
                _flag(verdict, prog, "unexpected-exception", backend,
                      scheme, f"{type(exc).__name__}: {exc}")
                continue
            detail = _diff_vs_exec(truth_ns, store, prog.store_obj)
            if detail is not None:
                _flag(verdict, prog, "store-mismatch", backend, scheme,
                      detail)
            if out.result.n_iters != seq_iters:
                _flag(verdict, prog, "iters-mismatch", backend, scheme,
                      f"lvi={out.result.n_iters} != seq={seq_iters}")
        else:
            raise ValueError(f"unknown backend {backend!r}")

    if kernels:
        _check_kernel_cell(prog, lifted, truth_ns, seq_iters, funcs,
                           verdict, workers=workers)
    return verdict


def _check_kernel_cell(prog: PySourceProgram, lifted, truth_ns: Dict,
                       seq_iters: int, funcs: FunctionTable,
                       verdict: OracleVerdict, *, workers: int) -> None:
    """The vectorized kernel tier as its own differential cell."""
    try:
        info = ensure_info(lifted.loop, funcs)
    except ReproError as exc:
        verdict.skipped.append(f"kernel: analysis refused ({exc})")
        return
    store = _bind_store(prog, lifted)
    verdict.checks += 1
    try:
        result = run_kernel(info, store, funcs, workers=workers, u=prog.u)
    except KernelFallback as exc:
        verdict.checks -= 1
        verdict.skipped.append(f"kernel: {exc.reason}")
        return
    except Exception as exc:
        _flag(verdict, prog, "unexpected-exception", "kernel", "kernel",
              f"{type(exc).__name__}: {exc}")
        return
    detail = _diff_vs_exec(truth_ns, store, prog.store_obj)
    if detail is not None:
        _flag(verdict, prog, "store-mismatch", "kernel", result.scheme,
              detail)
    if result.n_iters != seq_iters:
        _flag(verdict, prog, "iters-mismatch", "kernel", result.scheme,
              f"lvi={result.n_iters} != seq={seq_iters}")


# -- source-level shrinking --------------------------------------------------

@dataclass
class SourceShrinkResult:
    """Outcome of one source-level shrink run."""

    program: PySourceProgram         #: the minimized program
    verdict: OracleVerdict           #: its (still-failing) verdict
    signature: Tuple[Tuple[str, str], ...]
    steps: int
    tried: int


def _signature(v: OracleVerdict) -> frozenset:
    return frozenset((d.kind, d.backend) for d in v.discrepancies)


class _ConstShrinker(ast.NodeTransformer):
    """Replace the ``site``-th eligible integer constant with ``value``."""

    def __init__(self, site: int, value: int) -> None:
        self.site = site
        self.value = value
        self._seen = -1

    def visit_Constant(self, node: ast.Constant):
        if isinstance(node.value, int) and not isinstance(node.value, bool):
            self._seen += 1
            if self._seen == self.site:
                return ast.copy_location(ast.Constant(self.value), node)
        return node


def _const_sites(tree: ast.Module) -> List[int]:
    out: List[int] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            out.append(node.value)
    return out


def _source_candidates(source: str) -> List[str]:
    """Smaller variants of ``source``, biggest cuts first.

    Statement deletions (never the while loop itself), If-flattenings,
    and integer-constant reductions — all through ``ast`` so every
    candidate is syntactically valid by construction.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    out: List[str] = []

    def emit(t: ast.Module) -> None:
        try:
            out.append(ast.unparse(ast.fix_missing_locations(t)) + "\n")
        except Exception:
            pass

    # top-level deletions (keep the while loop)
    for i, node in enumerate(tree.body):
        if isinstance(node, ast.While):
            continue
        t = ast.parse(source)
        del t.body[i]
        emit(t)
    # loop-body statement deletions and If-flattenings
    for i, node in enumerate(tree.body):
        if not isinstance(node, ast.While):
            continue
        for j in range(len(node.body)):
            if len(node.body) == 1:
                break
            t = ast.parse(source)
            del t.body[i].body[j]
            emit(t)
        for j, inner in enumerate(node.body):
            if isinstance(inner, ast.If) and inner.body:
                t = ast.parse(source)
                t.body[i].body[j:j + 1] = ast.parse(source).body[i] \
                    .body[j].body
                emit(t)
    # integer-constant reductions
    for site, value in enumerate(_const_sites(tree)):
        if value in (0, 1, -1, SENTINEL):
            continue
        targets = {value // 2}
        if value > 2:
            targets.add(2)
        targets.discard(value)
        for target in sorted(targets):
            t = _ConstShrinker(site, target).visit(ast.parse(source))
            emit(t)
    return out


def _revalidate_source(prog: PySourceProgram,
                       source: str) -> Optional[PySourceProgram]:
    """Ground-truth a candidate source; None when it breaks the
    termination contract (budget trip or a new exception)."""
    cand = replace(prog, source=source)
    ns = cand.make_namespace()
    try:
        bounded_exec(source, ns,
                     max_steps=_STEPS_PER_ITER * (prog.u + 64))
    except Exception:
        return None
    return cand


def shrink_source(
    prog: PySourceProgram,
    verdict: OracleVerdict,
    check: Callable[[PySourceProgram], OracleVerdict],
    *,
    max_tries: int = 120,
) -> SourceShrinkResult:
    """Greedily minimize a failing source program.

    Same contract as :func:`repro.fuzz.shrink.shrink_program`: an edit
    is kept only when the same failure signature (a subset of the
    original ``(kind, backend)`` set) still reproduces, and every
    candidate is re-validated by a bounded ground-truth run first.
    """
    want = _signature(verdict)
    best, best_verdict = prog, verdict
    steps = tried = 0
    progress = True
    while progress and tried < max_tries:
        progress = False
        for source in _source_candidates(best.source):
            if tried >= max_tries:
                break
            cand = _revalidate_source(best, source)
            if cand is None:
                continue
            tried += 1
            v = check(cand)
            if v.discrepancies and _signature(v) <= want:
                best, best_verdict = cand, v
                steps += 1
                progress = True
                break
    return SourceShrinkResult(program=best, verdict=best_verdict,
                              signature=tuple(sorted(want)), steps=steps,
                              tried=tried)


# -- the pysource corpus -----------------------------------------------------

@dataclass
class SourceCorpusEntry:
    """One persisted source-level regression plus replay configuration.

    Unlike :class:`~repro.fuzz.corpus.CorpusEntry`, the program is
    stored as the *Python source text itself* — the corpus pins the
    frontend's behavior on exact source bytes, not just on the IR it
    happened to produce at find time.
    """

    name: str                        #: filename stem (kebab-case)
    source: str                      #: the Python source fragment
    store_obj: Dict                  #: serialized initial bindings
    cell: str                        #: "pysource/<shape>" label
    u: int                           #: iteration upper bound
    backends: Tuple[str, ...] = ("sim",)
    workers: int = 2
    kernels: bool = True
    note: str = ""                   #: what bug this entry pins
    found_with: Dict = field(default_factory=dict)

    def program(self) -> PySourceProgram:
        """Materialize the entry as a replayable program."""
        return PySourceProgram(
            source=self.source,
            store_obj=self.store_obj,
            cell=self.cell,
            shape=f"corpus:{self.name}",
            u=self.u,
            seed=int(self.found_with.get("seed", -1)),
            n_iters=int(self.found_with.get("n_iters", 0)),
        )


def source_entry_to_obj(entry: SourceCorpusEntry) -> Dict:
    """JSON-safe dict (inverse of :func:`source_entry_from_obj`)."""
    return {
        "name": entry.name,
        "source": entry.source,
        "store": entry.store_obj,
        "cell": entry.cell,
        "u": entry.u,
        "backends": list(entry.backends),
        "workers": entry.workers,
        "kernels": entry.kernels,
        "note": entry.note,
        "found_with": entry.found_with,
    }


def source_entry_from_obj(obj: Dict) -> SourceCorpusEntry:
    """Rebuild a pysource corpus entry from its JSON dict."""
    return SourceCorpusEntry(
        name=obj["name"],
        source=obj["source"],
        store_obj=obj["store"],
        cell=obj["cell"],
        u=int(obj["u"]),
        backends=tuple(obj.get("backends", ("sim",))),
        workers=int(obj.get("workers", 2)),
        kernels=bool(obj.get("kernels", True)),
        note=obj.get("note", ""),
        found_with=obj.get("found_with", {}),
    )


def save_source_entry(entry: SourceCorpusEntry,
                      corpus_dir=DEFAULT_SOURCE_CORPUS) -> Path:
    """Write ``<corpus_dir>/<name>.json``; return the path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"{entry.name}.json"
    path.write_text(json.dumps(source_entry_to_obj(entry), indent=1,
                               sort_keys=True) + "\n")
    return path


def load_source_corpus(
        corpus_dir=DEFAULT_SOURCE_CORPUS) -> List[SourceCorpusEntry]:
    """Load every ``*.json`` entry under ``corpus_dir``, by name."""
    corpus_dir = Path(corpus_dir)
    return [source_entry_from_obj(json.loads(p.read_text()))
            for p in sorted(corpus_dir.glob("*.json"))]


def replay_source_entry(entry: SourceCorpusEntry) -> OracleVerdict:
    """Re-run one pysource entry under its pinned configuration."""
    return check_source_program(
        entry.program(),
        backends=entry.backends,
        workers=entry.workers,
        kernels=entry.kernels,
    )


def render_source_repro(entry_obj: Dict) -> str:
    """A standalone script reproducing one pysource corpus entry."""
    blob = json.dumps(entry_obj, indent=1, sort_keys=True)
    return f'''#!/usr/bin/env python
"""Standalone reproduction for frontend-fuzz finding {entry_obj["name"]!r}.

Run with the repository's ``src/`` on PYTHONPATH:

    PYTHONPATH=src python {entry_obj["name"]}.py
"""
import sys

from repro.fuzz.pysource import replay_source_entry, source_entry_from_obj

ENTRY = {blob}

verdict = replay_source_entry(source_entry_from_obj(ENTRY))
for d in verdict.discrepancies:
    print(f"{{d.kind}} [{{d.backend}}/{{d.scheme}}]: {{d.detail}}")
print(f"checks={{verdict.checks}} "
      f"discrepancies={{len(verdict.discrepancies)}}")
sys.exit(1 if verdict.discrepancies else 0)
'''


# -- the campaign driver ------------------------------------------------------

class FrontendFuzzReport(FuzzReport):
    """A campaign report whose summary speaks in source shapes."""

    def summary(self) -> str:
        lines = [
            f"frontend-fuzz: {self.programs} source programs "
            f"(seed={self.config.seed}, budget={self.config.budget}), "
            f"{self.checks} lift/exec/scheme×backend checks on "
            f"{'/'.join(self.config.backends)}, "
            f"{self.real_draws} real-backend draws",
            f"shapes covered ({len(self.cells)}/{len(SHAPES)}):",
        ]
        for cell, n in sorted(self.cells.items()):
            lines.append(f"  {n:5d}  {cell}")
        if self.findings:
            lines.append(f"{len(self.findings)} DISCREPANCIES:")
            for f in self.findings:
                lines.append(
                    f"  seed={f.seed} [{f.cell}] {','.join(f.kinds)}"
                    f" ({f.shrink_steps} shrink steps)"
                    + (f" -> {f.corpus_path}" if f.corpus_path else ""))
                lines.append(f"    {f.detail}")
        else:
            lines.append("no discrepancies")
        return "\n".join(lines)


def run_frontend_campaign(
        config: FuzzConfig,
        log: Optional[Callable[[str], None]] = None) -> FrontendFuzzReport:
    """Run one source-level differential campaign.

    The driver mirrors :func:`repro.fuzz.campaign.run_campaign`: seeded
    draws (reproducible from ``(budget, seed)`` alone), real backends
    sampled on a logged stride (``max_real``), findings shrunk at the
    source level and frozen into the pysource corpus plus a standalone
    repro script.  ``config.faults`` has no frontend surface and is
    ignored (with a log line, never silently).
    """
    say = log or (lambda _msg: None)
    trc = get_tracer()
    report = FrontendFuzzReport(config=config)
    cells: Dict[str, int] = {}

    if config.faults:
        say("frontend-fuzz: fault injection has no frontend surface; "
            "ignoring --faults for this campaign")

    real_backends = tuple(b for b in config.backends if b != "sim")
    sim_on = "sim" in config.backends
    stride = 1
    if real_backends and config.budget > config.max_real:
        stride = -(-config.budget // config.max_real)   # ceil
        say(f"frontend-fuzz: sampling real backends every {stride} "
            f"draws (max_real={config.max_real} of "
            f"budget={config.budget}); lift/exec/sim still check "
            f"every draw")

    for i in range(config.budget):
        seed = config.seed * _SEED_STRIDE + i
        prog = generate_source_program(seed)
        report.programs += 1
        cells[prog.cell] = cells.get(prog.cell, 0) + 1

        run_real = bool(real_backends) and i % stride == 0
        backends: Tuple[str, ...] = ("sim",) if sim_on else ()
        if run_real:
            backends += real_backends
            report.real_draws += 1

        def run_oracle(p, _bk=backends) -> OracleVerdict:
            return check_source_program(
                p, backends=_bk, workers=config.workers,
                kernels=config.kernels)

        verdict = run_oracle(prog)
        report.checks += verdict.checks
        trc.count(_ev.M_FUZZ_PROGRAMS)
        trc.count(_ev.M_FUZZ_CHECKS, verdict.checks)
        if verdict.ok:
            continue

        report.findings.append(
            _handle_source_finding(prog, verdict, run_oracle, config,
                                   say))
        trc.count(_ev.M_FUZZ_DISCREPANCIES, len(verdict.discrepancies))
        for d in verdict.discrepancies:
            trc.event(_ev.EV_FUZZ_DISCREPANCY, 0, kind=d.kind,
                      backend=d.backend, scheme=d.scheme, seed=d.seed,
                      cell=d.cell)

    report.cells = dict(cells)
    trc.gauge(_ev.M_FUZZ_CELLS, len(cells))
    return report


def _handle_source_finding(prog: PySourceProgram, verdict: OracleVerdict,
                           run_oracle, config: FuzzConfig,
                           say) -> Finding:
    """Shrink, persist, and render one flagged source program."""
    kinds = tuple(sorted({d.kind for d in verdict.discrepancies}))
    first = verdict.discrepancies[0]
    say(f"frontend-fuzz: seed={prog.seed} [{prog.cell}] diverged: "
        f"{first.kind} on {first.backend}/{first.scheme}")

    shrunk: Optional[SourceShrinkResult] = None
    if config.shrink:
        shrunk = shrink_source(prog, verdict, run_oracle,
                               max_tries=config.shrink_tries)
        prog, verdict = shrunk.program, shrunk.verdict
        if shrunk.steps:
            say(f"frontend-fuzz: seed={prog.seed} shrunk in "
                f"{shrunk.steps} steps ({shrunk.tried} oracle runs)")
        get_tracer().count(_ev.M_FUZZ_SHRINK_STEPS, shrunk.steps)

    finding = Finding(seed=prog.seed, cell=prog.cell, shape=prog.shape,
                      kinds=kinds, detail=first.detail,
                      shrink_steps=shrunk.steps if shrunk else 0)

    if config.corpus_dir or config.artifacts_dir:
        entry = SourceCorpusEntry(
            name=f"pyfuzz-{prog.seed}-{first.kind}",
            source=prog.source,
            store_obj=prog.store_obj,
            cell=prog.cell,
            u=prog.u,
            backends=tuple(dict.fromkeys(
                d.backend for d in verdict.discrepancies
                if d.backend in ("sim", "threads", "procs", "pool"))
                or ("sim",)),
            workers=config.workers,
            kernels=config.kernels,
            note=f"auto-found: {first.kind} ({first.detail})",
            found_with={"seed": prog.seed, "n_iters": prog.n_iters,
                        "shape": prog.shape, "kinds": list(kinds)})
        if config.corpus_dir:
            path = save_source_entry(entry, config.corpus_dir)
            finding.corpus_path = str(path)
            get_tracer().count(_ev.M_FUZZ_CORPUS_ENTRIES)
        if config.artifacts_dir:
            adir = Path(config.artifacts_dir)
            adir.mkdir(parents=True, exist_ok=True)
            apath = adir / f"{entry.name}.py"
            apath.write_text(render_source_repro(
                source_entry_to_obj(entry)))
            finding.artifact_path = str(apath)
    return finding
