"""A zoo of small loops covering every Table-1 taxonomy cell.

Used by the taxonomy tests and ``bench_table1_taxonomy``: each entry
declares the cell it should land in, and the observed parallel
behaviour (did the execution overshoot? could the dispatcher be
evaluated in parallel?) must match the cell's verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.analysis.taxonomy import DispatcherClass, ParallelKind
from repro.analysis.terminator import TermClass
from repro.ir.functions import FunctionTable
from repro.ir.nodes import (
    ArrayAssign,
    ArrayRef,
    Assign,
    Const,
    Exit,
    If,
    Loop,
    Next,
    Var,
    WhileLoop,
    eq_,
    le_,
    lt_,
    ne_,
)
from repro.ir.store import Store
from repro.structures.linkedlist import build_chain

__all__ = ["ZooLoop", "make_zoo", "table_mod"]


def table_mod(n: int) -> int:
    """Modulus sizing the zoo's noise/accumulator tables for size ``n``.

    The non-monotonic entries plant their exit condition at index
    ``f(exit_iter) mod m`` and rely on the index walk being injective
    up to the exit, so ``m`` must exceed the planted iteration and be
    coprime with the walk's stride (3) and multiplier (7).  Keeping the
    floor at 257 preserves the historical tables exactly for every
    ``n <= 128``.
    """
    m = max(257, 2 * n + 1)
    while m % 2 == 0 or m % 3 == 0 or m % 7 == 0:
        m += 1
    return m


@dataclass(frozen=True)
class ZooLoop:
    """One zoo entry with its expected Table-1 classification."""

    name: str
    loop: Loop
    funcs: FunctionTable
    make_store: Callable[[], Store]
    expect_dispatcher: DispatcherClass
    expect_terminator: TermClass
    expect_overshoot: bool
    expect_parallel: ParallelKind


def _work_funcs() -> FunctionTable:
    ft = FunctionTable()
    ft.register("zwork", lambda ctx, i: ctx.write("out", int(i) % 64,
                                                  float(i)),
                cost=25, writes=("out",))
    return ft


def make_zoo(n: int = 48) -> Tuple[ZooLoop, ...]:
    """Build one loop per Table-1 cell (eight in total).

    ``n`` scales every entry: the induction loops run ``~n``
    iterations over ``n``-sized arrays, the general-recurrence loops
    chase an ``n``-node list, and the noise/accumulator tables of the
    non-monotonic and associative entries are sized by
    :func:`table_mod` so the planted exits stay exact for any ``n``.
    """
    zoo = []
    m = table_mod(n)

    def mod_(e):
        return BinOp_mod(e, m)

    # -- monotonic induction, RI (threshold on the dispatcher) ---------
    zoo.append(ZooLoop(
        "mono-induction/RI",
        WhileLoop([Assign("i", Const(1))], le_(Var("i"), Var("n")),
                  [ArrayAssign("A", Var("i"), Var("i") * 2),
                   Assign("i", Var("i") + 1)], name="mono-ri"),
        FunctionTable(),
        lambda: Store({"A": np.zeros(n + 2, dtype=np.int64),
                       "n": n, "i": 0}),
        DispatcherClass.MONOTONIC_INDUCTION, TermClass.RI,
        False, ParallelKind.FULL))

    # -- monotonic induction, RV (exit on computed data) ----------------
    def mk_mono_rv() -> Store:
        A = np.zeros(n + 2, dtype=np.int64)
        A[(2 * n) // 3] = 1
        return Store({"A": A, "n": n, "i": 0})
    zoo.append(ZooLoop(
        "mono-induction/RV",
        WhileLoop([Assign("i", Const(1))], le_(Var("i"), Var("n")),
                  [If(eq_(ArrayRef("A", Var("i")), Const(1)), [Exit()]),
                   ArrayAssign("A", Var("i"), Var("i") * 3),
                   Assign("i", Var("i") + 1)], name="mono-rv"),
        FunctionTable(),
        mk_mono_rv,
        DispatcherClass.MONOTONIC_INDUCTION, TermClass.RV,
        True, ParallelKind.FULL))

    # -- "non-monotonic" induction, RI --------------------------------
    # The dispatcher is a plain induction, but the terminator is NOT a
    # threshold on it (it tests a loop-invariant noise table along a
    # wrapping index), so the monotonic no-overshoot exception does not
    # apply: iterations past the exit can evaluate the condition true
    # again.
    def mk_nonmono_ri() -> Store:
        noise = np.zeros(m, dtype=np.int64)
        exit_iter = (2 * n) // 3
        noise[(1 + 3 * (exit_iter - 1)) % m] = 200
        return Store({"noise": noise,
                      "A": np.zeros(m, dtype=np.int64), "i": 0})
    zoo.append(ZooLoop(
        "nonmono-induction/RI",
        WhileLoop([Assign("i", Const(1))],
                  lt_(ArrayRef("noise", mod_(Var("i"))), Const(100)),
                  [ArrayAssign("A", mod_(Var("i") * 7), Var("i")),
                   Assign("i", Var("i") + 3)], name="nonmono-ri"),
        FunctionTable(),
        mk_nonmono_ri,
        DispatcherClass.NONMONOTONIC_INDUCTION, TermClass.RI,
        True, ParallelKind.FULL))

    # -- "non-monotonic" induction, RV -----------------------------------
    def mk_nonmono_rv() -> Store:
        noise = np.zeros(m, dtype=np.int64)
        A = np.zeros(m, dtype=np.int64)
        A[(7 * ((2 * n) // 3)) % m] = -1
        return Store({"noise": noise, "A": A, "i": 0})
    zoo.append(ZooLoop(
        "nonmono-induction/RV",
        WhileLoop([Assign("i", Const(1))],
                  lt_(ArrayRef("noise", mod_(Var("i"))), Const(100)),
                  [If(eq_(ArrayRef("A", mod_(Var("i") * 7)),
                          Const(-1)), [Exit()]),
                   ArrayAssign("A", mod_(Var("i") * 7), Var("i")),
                   Assign("i", Var("i") + 3)], name="nonmono-rv"),
        FunctionTable(),
        mk_nonmono_rv,
        DispatcherClass.NONMONOTONIC_INDUCTION, TermClass.RV,
        True, ParallelKind.FULL))

    # -- associative recurrence, RI (threshold on dispatcher) ----------
    zoo.append(ZooLoop(
        "associative/RI",
        WhileLoop([Assign("r", Const(1))], lt_(Var("r"), Const(1 << 40)),
                  [ArrayAssign("A", mod_(Var("r")), Var("r")),
                   Assign("r", Var("r") * 2 + 1)], name="assoc-ri"),
        FunctionTable(),
        lambda: Store({"A": np.zeros(m, dtype=np.int64), "r": 0}),
        DispatcherClass.ASSOCIATIVE, TermClass.RI,
        False, ParallelKind.PREFIX))

    # -- associative recurrence, RV -------------------------------------
    def mk_assoc_rv() -> Store:
        A = np.zeros(m, dtype=np.int64)
        # decoy sentinel: park the planted exit value on a slot the
        # walk r -> 2r+1 never reads (its indices are (2^k - 1) mod m,
        # at most ord_m(2) distinct slots), so it keeps the terminator
        # RV-classified without ever firing.  The exit that actually
        # fires is the wrap read: iteration 1 writes A[1] = 1, and
        # iteration ord_m(2)+1 re-reads slot 1 — a cross-iteration
        # flow dependence that is simultaneously the loop's organic
        # exit and the seeded PD-test failure the backend-equivalence
        # contract checks, at every table size.
        visited = set()
        r = 1
        for _ in range(128):
            visited.add(r % m)
            r = r * 2 + 1
        slot = next(s for s in range(m - 1, -1, -1) if s not in visited)
        A[slot] = 1
        return Store({"A": A, "r": 0})
    zoo.append(ZooLoop(
        "associative/RV",
        WhileLoop([Assign("r", Const(1))], lt_(Var("r"), Const(1 << 40)),
                  [If(eq_(ArrayRef("A", mod_(Var("r"))), Const(1)),
                      [Exit()]),
                   ArrayAssign("A", mod_(Var("r")), Var("r")),
                   Assign("r", Var("r") * 2 + 1)], name="assoc-rv"),
        FunctionTable(),
        mk_assoc_rv,
        DispatcherClass.ASSOCIATIVE, TermClass.RV,
        True, ParallelKind.PREFIX))

    # -- general recurrence (list), RI (NULL terminator) ----------------
    chain = build_chain(n, scramble=True,
                        rng=np.random.default_rng(7))
    zoo.append(ZooLoop(
        "general/RI",
        WhileLoop([Assign("p", Const(chain.head))],
                  ne_(Var("p"), Const(-1)),
                  [ArrayAssign("B", Var("p"), Var("p") * 2),
                   Assign("p", Next("lst", Var("p")))], name="general-ri"),
        FunctionTable(),
        lambda: Store({"lst": chain, "B": np.zeros(n, dtype=np.int64),
                       "p": 0}),
        DispatcherClass.GENERAL, TermClass.RI,
        False, ParallelKind.NONE))

    # -- general recurrence (list), RV ------------------------------------
    def mk_general_rv() -> Store:
        B = np.zeros(n, dtype=np.int64)
        B[chain.kth(2 * n // 3)] = -1
        return Store({"lst": chain, "B": B, "p": 0})
    zoo.append(ZooLoop(
        "general/RV",
        WhileLoop([Assign("p", Const(chain.head))],
                  ne_(Var("p"), Const(-1)),
                  [If(eq_(ArrayRef("B", Var("p")), Const(-1)), [Exit()]),
                   ArrayAssign("B", Var("p"), Var("p") * 2),
                   Assign("p", Next("lst", Var("p")))], name="general-rv"),
        FunctionTable(),
        mk_general_rv,
        DispatcherClass.GENERAL, TermClass.RV,
        True, ParallelKind.NONE))

    return tuple(zoo)


def BinOp_mod(e, m: int = 257):
    """Helper: ``e mod m`` as an in-range array index."""
    from repro.ir.nodes import BinOp
    return BinOp("%", e, Const(m))
