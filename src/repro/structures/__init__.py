"""Data-structure substrates: linked lists and sparse matrices.

These are the shared data structures the paper's evaluation loops walk:
SPICE-style device chains (:mod:`repro.structures.linkedlist`) and
Harwell-Boeing-profile sparse matrices (:mod:`repro.structures.sparse`).
"""

from repro.structures.linkedlist import LinkedList, build_chain
from repro.structures.sparse import (
    SparseMatrix,
    HBProfile,
    HB_PROFILES,
    generate_hb_like,
)

__all__ = [
    "LinkedList",
    "build_chain",
    "SparseMatrix",
    "HBProfile",
    "HB_PROFILES",
    "generate_hb_like",
]
