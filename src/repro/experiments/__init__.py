"""Experiment harness: figures, tables, and the markdown report."""

from repro.experiments.figures import (
    ALL_FIGURES,
    FigureData,
    figure_6,
    figure_7,
    figure_8_11,
    figure_12_14,
)
from repro.experiments.report import render_report
from repro.experiments.tables import Table1Row, Table2Row, table_1, table_2

__all__ = [
    "ALL_FIGURES", "FigureData",
    "figure_6", "figure_7", "figure_8_11", "figure_12_14",
    "render_report",
    "Table1Row", "Table2Row", "table_1", "table_2",
]
