"""Tests for machine presets and the MA28 analyse-phase driver."""

import pytest

from repro.runtime import (
    ALLIANT_FX80,
    PRESETS,
    Machine,
    alliant_fx80,
    high_latency_memory,
    hw_assisted,
    mpp,
)
from repro.workloads import (
    make_spice_load40,
    measure_speedup,
    run_ma28_analyze,
)


class TestPresets:
    def test_registry_complete(self):
        assert set(PRESETS) == {"alliant", "mpp", "hw", "numa"}

    def test_default_processor_counts(self):
        assert alliant_fx80().nprocs == 8
        assert mpp().nprocs == 256
        assert hw_assisted().nprocs == 8

    def test_hw_assist_zeroes_speculation_costs(self):
        cost = hw_assisted().cost
        assert cost.timestamp_write == 0
        assert cost.shadow_mark == 0
        assert cost.checkpoint_word == 0
        # compute costs untouched
        assert cost.alu == ALLIANT_FX80.alu

    def test_numa_inflates_memory(self):
        cost = high_latency_memory().cost
        assert cost.hop > ALLIANT_FX80.hop
        assert cost.array_read > ALLIANT_FX80.array_read

    def test_mpp_sync_costs_grow(self):
        cost = mpp().cost
        assert cost.fork > ALLIANT_FX80.fork
        assert cost.lock_acquire > ALLIANT_FX80.lock_acquire

    def test_presets_run_workloads_correctly(self):
        w = make_spice_load40(200)
        for name, factory in PRESETS.items():
            m = factory(4)
            sp, _, ok = measure_speedup(
                w, w.method("General-3 (no locks)"), m)
            assert ok, name
            assert sp > 0.3, name


class TestMa28AnalyzeDriver:
    def test_consistency_and_speedup(self):
        r = run_ma28_analyze("gematt12", n_steps=2)
        assert r.steps == 2
        assert r.consistent
        assert len(r.pivots_row) == 2 and len(r.pivots_col) == 2
        assert r.speedup > 2

    def test_deterministic(self):
        a = run_ma28_analyze("orsreg1", n_steps=2)
        b = run_ma28_analyze("orsreg1", n_steps=2)
        assert a.pivots_row == b.pivots_row
        assert a.t_par == b.t_par

    def test_machine_size_matters(self):
        small = run_ma28_analyze("gematt11", n_steps=1,
                                 machine=Machine(2))
        big = run_ma28_analyze("gematt11", n_steps=1,
                               machine=Machine(8))
        assert big.speedup > small.speedup
