"""JSON round-tripping for IR trees and stores.

The fuzzing subsystem (:mod:`repro.fuzz`) persists every failing
program it finds as a corpus entry under ``tests/corpus/`` so the
failure replays deterministically forever after.  That requires the
IR — and the initial :class:`~repro.ir.store.Store` the loop runs
against — to survive a round trip through plain JSON-safe objects
(dicts, lists, strings, numbers) with *structural equality* preserved:
``loop_from_obj(loop_to_obj(loop)) == loop`` for every node kind.

Two deliberate restrictions keep the format honest:

* :class:`~repro.ir.nodes.Call` nodes serialize fine (name + args) but
  the *intrinsic implementations* they reference are Python callables
  and are **not** serialized — a deserialized program that calls
  intrinsics needs a matching :class:`~repro.ir.functions
  .FunctionTable` supplied at replay time.  The fuzzer never generates
  ``Call`` nodes for exactly this reason.
* NumPy arrays serialize as ``{dtype, data}`` pairs; only integer,
  float, and bool dtypes are supported (the only dtypes the IR's
  semantics use).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.errors import IRError
from repro.ir.nodes import (
    ArrayAssign,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    Exit,
    Expr,
    ExprStmt,
    For,
    If,
    Loop,
    Next,
    Stmt,
    UnaryOp,
    Var,
)
from repro.ir.store import Store
from repro.structures.linkedlist import LinkedList

__all__ = [
    "expr_to_obj", "expr_from_obj",
    "stmt_to_obj", "stmt_from_obj",
    "loop_to_obj", "loop_from_obj",
    "store_to_obj", "store_from_obj",
]


# -- expressions ----------------------------------------------------------

def expr_to_obj(e: Expr) -> Dict[str, Any]:
    """Serialize one expression node to a JSON-safe dict."""
    if isinstance(e, Const):
        v = e.value
        if isinstance(v, (np.integer,)):
            v = int(v)
        elif isinstance(v, (np.floating,)):
            v = float(v)
        elif isinstance(v, np.bool_):
            v = bool(v)
        return {"k": "const", "value": v}
    if isinstance(e, Var):
        return {"k": "var", "name": e.name}
    if isinstance(e, BinOp):
        return {"k": "binop", "op": e.op,
                "left": expr_to_obj(e.left), "right": expr_to_obj(e.right)}
    if isinstance(e, UnaryOp):
        return {"k": "unaryop", "op": e.op,
                "operand": expr_to_obj(e.operand)}
    if isinstance(e, ArrayRef):
        return {"k": "arrayref", "array": e.array,
                "index": expr_to_obj(e.index)}
    if isinstance(e, Next):
        return {"k": "next", "list": e.list_name, "ptr": expr_to_obj(e.ptr)}
    if isinstance(e, Call):
        return {"k": "call", "fn": e.fn,
                "args": [expr_to_obj(a) for a in e.args]}
    raise IRError(f"cannot serialize expression node {type(e).__name__}")


def expr_from_obj(obj: Dict[str, Any]) -> Expr:
    """Rebuild an expression node from :func:`expr_to_obj` output."""
    k = obj["k"]
    if k == "const":
        return Const(obj["value"])
    if k == "var":
        return Var(obj["name"])
    if k == "binop":
        return BinOp(obj["op"], expr_from_obj(obj["left"]),
                     expr_from_obj(obj["right"]))
    if k == "unaryop":
        return UnaryOp(obj["op"], expr_from_obj(obj["operand"]))
    if k == "arrayref":
        return ArrayRef(obj["array"], expr_from_obj(obj["index"]))
    if k == "next":
        return Next(obj["list"], expr_from_obj(obj["ptr"]))
    if k == "call":
        return Call(obj["fn"], [expr_from_obj(a) for a in obj["args"]])
    raise IRError(f"unknown serialized expression kind {k!r}")


# -- statements -----------------------------------------------------------

def stmt_to_obj(s: Stmt) -> Dict[str, Any]:
    """Serialize one statement node to a JSON-safe dict."""
    if isinstance(s, Assign):
        return {"k": "assign", "name": s.name, "expr": expr_to_obj(s.expr)}
    if isinstance(s, ArrayAssign):
        return {"k": "arrayassign", "array": s.array,
                "index": expr_to_obj(s.index), "expr": expr_to_obj(s.expr)}
    if isinstance(s, ExprStmt):
        return {"k": "exprstmt", "expr": expr_to_obj(s.expr)}
    if isinstance(s, If):
        return {"k": "if", "cond": expr_to_obj(s.cond),
                "then": [stmt_to_obj(t) for t in s.then],
                "orelse": [stmt_to_obj(t) for t in s.orelse]}
    if isinstance(s, Exit):
        return {"k": "exit"}
    if isinstance(s, For):
        return {"k": "for", "var": s.var, "lo": expr_to_obj(s.lo),
                "hi": expr_to_obj(s.hi),
                "body": [stmt_to_obj(t) for t in s.body]}
    raise IRError(f"cannot serialize statement node {type(s).__name__}")


def stmt_from_obj(obj: Dict[str, Any]) -> Stmt:
    """Rebuild a statement node from :func:`stmt_to_obj` output."""
    k = obj["k"]
    if k == "assign":
        return Assign(obj["name"], expr_from_obj(obj["expr"]))
    if k == "arrayassign":
        return ArrayAssign(obj["array"], expr_from_obj(obj["index"]),
                           expr_from_obj(obj["expr"]))
    if k == "exprstmt":
        return ExprStmt(expr_from_obj(obj["expr"]))
    if k == "if":
        return If(expr_from_obj(obj["cond"]),
                  [stmt_from_obj(t) for t in obj["then"]],
                  [stmt_from_obj(t) for t in obj["orelse"]])
    if k == "exit":
        return Exit()
    if k == "for":
        return For(obj["var"], expr_from_obj(obj["lo"]),
                   expr_from_obj(obj["hi"]),
                   [stmt_from_obj(t) for t in obj["body"]])
    raise IRError(f"unknown serialized statement kind {k!r}")


# -- loops ----------------------------------------------------------------

def loop_to_obj(loop: Loop) -> Dict[str, Any]:
    """Serialize a canonical :class:`~repro.ir.nodes.Loop`."""
    return {
        "k": "loop",
        "name": loop.name,
        "init": [stmt_to_obj(s) for s in loop.init],
        "cond": expr_to_obj(loop.cond),
        "body": [stmt_to_obj(s) for s in loop.body],
    }


def loop_from_obj(obj: Dict[str, Any]) -> Loop:
    """Rebuild a :class:`~repro.ir.nodes.Loop` from :func:`loop_to_obj`."""
    if obj.get("k") != "loop":
        raise IRError(f"expected a serialized loop, got kind {obj.get('k')!r}")
    return Loop([stmt_from_obj(s) for s in obj["init"]],
                expr_from_obj(obj["cond"]),
                [stmt_from_obj(s) for s in obj["body"]],
                name=obj.get("name", "loop"))


# -- stores ---------------------------------------------------------------

_SCALAR_KINDS = (bool, int, float, np.integer, np.floating, np.bool_)


def store_to_obj(store: Store) -> Dict[str, Any]:
    """Serialize a :class:`~repro.ir.store.Store` to a JSON-safe dict.

    Insertion order is preserved (JSON objects keep key order), so the
    round trip reproduces :meth:`Store.names` exactly.
    """
    out: Dict[str, Any] = {}
    for name in store.names():
        value = store[name]
        if isinstance(value, LinkedList):
            out[name] = {"k": "list", "next": value.next.tolist(),
                         "head": int(value.head)}
        elif isinstance(value, np.ndarray):
            if value.ndim != 1:
                raise IRError(
                    f"cannot serialize {value.ndim}-d array {name!r}")
            out[name] = {"k": "array", "dtype": str(value.dtype),
                         "data": value.tolist()}
        elif isinstance(value, _SCALAR_KINDS):
            if isinstance(value, (np.integer,)):
                value = int(value)
            elif isinstance(value, (np.floating,)):
                value = float(value)
            elif isinstance(value, np.bool_):
                value = bool(value)
            out[name] = {"k": "scalar", "value": value}
        else:
            raise IRError(
                f"cannot serialize store value {name!r} of type "
                f"{type(value).__name__}")
    return out


def store_from_obj(obj: Dict[str, Any]) -> Store:
    """Rebuild a fresh :class:`~repro.ir.store.Store` (new arrays/lists)."""
    store = Store()
    for name, spec in obj.items():
        k = spec["k"]
        if k == "list":
            store[name] = LinkedList(np.asarray(spec["next"],
                                                dtype=np.int64),
                                     spec["head"])
        elif k == "array":
            store[name] = np.asarray(spec["data"], dtype=spec["dtype"])
        elif k == "scalar":
            store[name] = spec["value"]
        else:
            raise IRError(f"unknown serialized store kind {k!r}")
    return store


def _roundtrip_check(loop: Loop) -> bool:
    """Debug helper: does ``loop`` survive the round trip structurally?"""
    return loop_from_obj(loop_to_obj(loop)) == loop
