"""Real-parallel execution backend: OS processes over shared memory.

Where :mod:`repro.runtime.machine` *simulates* the paper's schemes in
virtual time and :mod:`repro.runtime.threads` cross-checks them under
the GIL, this module runs them for real: loop iterations execute on
genuine OS processes with GIL-free parallelism, NumPy stores are
placed in :mod:`multiprocessing.shared_memory` segments
(:mod:`repro.runtime.shm`), and work is distributed in *chunks* of
iterations taken from a shared index counter so the IPC cost is
amortized over many iterations.

The execution model mirrors the virtual machine's scheme skeleton
exactly (``executors/base.py``), which is what makes the
backend-equivalence test suite possible:

* **dispatcher supply** — Induction-style loops seed iteration ``k``
  with the closed form ``d(k) = init + step*(k-1)``; every other
  recurrence uses a per-worker *private catch-up walk* (the General-2/3
  strategy), replaying the dispatcher-update statements from the
  worker's previous position.
* **ordered QUIT** — a shared minimum-termination index stops the
  issue of later iterations as soon as any worker observes the
  terminator; iterations already taken may still run (real overshoot,
  just as on the Alliant).
* **buffered writes** — each iteration's shared-array writes are
  captured into a private write set (reads consult the iteration's own
  writes first, then the shared segment).  After the run the parent
  applies the write sets of iterations ``k <= LVI`` *in iteration
  order*, which makes the final store bit-identical to the sequential
  interpreter for every loop the planner admits (independent
  remainders, or privatization-valid speculation), with no undo pass.
* **ordered reconciliation** — the last valid iteration is
  ``min(terminations)`` (minus one unless the loop exited in-body);
  remainder scalars are merged in iteration order and the dispatcher
  scalar is published as ``d(LVI+1)``, exactly like
  ``SchemeCore._publish_scalars``.
* **speculation** — in speculative mode every worker keeps PD-test
  shadow marks (:class:`~repro.speculation.pdtest.ShadowArrays`) for
  its iterations; the parent merges the per-worker two-smallest stamp
  vectors and runs the standard :func:`analyze_pd`.  On an invalid
  verdict the parent salvages the longest PD-valid committed prefix
  (:func:`~repro.speculation.pdtest.max_valid_prefix`) and resumes
  sequentially from its end — a *partial restart* — falling back to
  the full Section 5 restore-and-rerun only when nothing is
  salvageable.
* **exception containment & quarantine** — an ordinary exception
  inside an iteration body is not a run-aborting event: the worker
  records it as :data:`IterOutcome.FAULTED` with a structured
  :class:`~repro.errors.IterationFault` and keeps going.  The parent
  *quarantines* faults: one past the last valid iteration is spurious
  overshoot (the paper's RV terminators overshoot by design) — it is
  discarded and counted; one inside the valid range means the program
  genuinely raises — the validated prefix is committed
  transactionally and the loop re-executes sequentially from the
  faulting iteration, so the user sees the exact sequential exception
  at the exact sequential iteration (exception equivalence).
  Out-of-range speculative writes are trapped by the
  :class:`~repro.runtime.shm.GuardedArray` bounds guards and contained
  the same way instead of corrupting shared memory.

``mode="threads"`` runs the identical orchestration on
``threading.Thread`` workers sharing the parent store directly — no
wall-clock speedup under the GIL, but a fast semantic cross-check used
by the equivalence suite.  See ``docs/backends.md`` for the selection
guide and platform caveats (``fork`` vs ``spawn``).
"""

from __future__ import annotations

import queue as _thread_queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    BarrierStalled,
    ExceptionDivergence,
    ExecutionError,
    IterationFault,
    NullPointerError,
    PlanError,
    RealBackendError,
    ResultLost,
    ShadowCorrupt,
    WorkerFault,
    WorkerHung,
)
from repro.executors.base import ParallelResult
from repro.ir.functions import FunctionTable
from repro.ir.interp import (
    EvalContext,
    IterationRunner,
    IterOutcome,
    MemHooks,
    SequentialInterp,
)
from repro.ir.nodes import Exit, Loop
from repro.ir.store import Store
from repro.ir.visitor import walk
from repro.obs import names as _ev
from repro.obs.phases import PhaseProfiler, get_profiler
from repro.obs.sinks import MemorySink
from repro.obs.tracer import Tracer, get_tracer, set_tracer
from repro.runtime.costs import FREE
from repro.runtime.faults import (
    FaultPlan,
    InjectedCrash,
    InjectedIterationError,
)
from repro.runtime.machine import Machine
from repro.runtime.shm import SharedStore, StoreSpec, attach_store
from repro.speculation.checkpoint import IntervalCheckpoint
from repro.speculation.pdtest import INF as _NO_STAMP
from repro.speculation.pdtest import (
    ShadowArrays,
    analyze_pd,
    max_valid_prefix,
)
from repro.speculation.privatize import CompositeHooks

__all__ = ["RealBackendError", "ResumeState", "run_parallel_real",
           "default_chunk"]

#: Sentinel quit index: "no termination observed yet".
_NO_QUIT = 1 << 62
#: Iteration outcome: skipped because a QUIT preceded it.
_SKIPPED = "skipped"
#: Hard ceiling on strip-mined horizons (mirrors the sequential
#: interpreter's ``max_iters`` safety bound).
_MAX_HORIZON = 10_000_000
#: Barrier/queue timeouts — generous, only there so a crashed worker
#: cannot hang a CI run forever.  The supervisor passes far tighter
#: per-run deadlines through ``barrier_timeout``/``queue_timeout``.
_BARRIER_TIMEOUT = 600.0
_QUEUE_TIMEOUT = 600.0
#: Poll granularity of the parent's blocking waits: every blocking
#: queue get wakes at this period to check the liveness monitor.
_POLL_S = 0.05
#: How long every worker must sit parked at the strip barrier with the
#: result queue empty (and records still missing) before the parent
#: declares a lost result message.  Covers the mp.Queue feeder-thread
#: window where a put is momentarily invisible to the parent.
_LOST_RESULT_GRACE_S = 0.5


class _NullMonitor:
    """Monitor stand-in when no supervisor watches the run.

    The parent-side blocking helpers consult ``monitor.fault`` and
    publish ``monitor.phase``; this stub makes both no-ops so the
    unsupervised path stays branch-free.
    """

    __slots__ = ("phase",)

    def __init__(self) -> None:
        self.phase = "run"

    @property
    def fault(self):
        return None

    def start(self, handles, coord, t0: float) -> None:
        """No-op (protocol compatibility with the supervisor watchdog)."""

    def stop(self) -> None:
        """No-op (protocol compatibility with the supervisor watchdog)."""


def default_chunk(u: Optional[int], workers: int) -> int:
    """Chunk size heuristic: ~8 chunks per worker, clamped to [1, 512].

    Small enough that the QUIT can cut off late iterations, large
    enough that per-chunk IPC (one queue message, one counter bump) is
    amortized.
    """
    if u is None:
        return 64
    return max(1, min(512, u // (8 * workers) or 1))


# ---------------------------------------------------------------------------
# Task description and coordination state
# ---------------------------------------------------------------------------

@dataclass
class _Task:
    """Everything a worker needs (picklable only under ``spawn``;
    under ``fork``/threads it travels by inheritance)."""

    loop: Loop
    funcs: FunctionTable
    dispatcher_stmts: Tuple[int, ...]
    disp_var: str
    supply: str                      #: "closed" | "walk"
    init_value: Any                  #: d(1) — live value after init
    step: Any                        #: closed-form step (supply=="closed")
    schedule: str                    #: "dynamic" | "static"
    chunk: int
    workers: int
    first: int
    shadow_arrays: Tuple[str, ...]   #: PD-tested arrays ("" = none)
    store_spec: Optional[StoreSpec]  #: procs mode only
    fault_plan: Optional[FaultPlan] = None  #: scripted fault injection
    #: Tracing is active in the parent: procs workers build a private
    #: in-memory tracer and ship its records back at exit (telemetry
    #: survives the fork boundary); thread workers share the parent's.
    trace: bool = False
    #: Wall origin (``time.perf_counter_ns`` — CLOCK_MONOTONIC on
    #: Linux, comparable across processes) worker spans rebase to.
    trace_t0_ns: int = 0
    #: Ship a cumulative shadow-mark snapshot with each strip-quiesce
    #: ``sdone`` (pool engine only): lets the parent PD-test the
    #: committed prefix at every strip boundary, so a write-ahead
    #: journal can checkpoint speculative jobs mid-flight.
    strip_shadows: bool = False


@dataclass
class ResumeState:
    """A salvaged committed prefix for partial-restart recovery.

    When a *system* fault (crash, hang, barrier stall, lost result)
    kills a non-speculative run, the parent attaches one of these to
    the propagating :class:`~repro.errors.WorkerFault` (as
    ``fault.salvage``): the contiguous prefix of iterations already
    gathered as DONE, with their buffered writes and merged remainder
    scalars.  The supervisor's ``partial-restart`` rung feeds it back
    through ``run_parallel_real(resume=...)`` so the retry starts at
    ``next_iter`` instead of iteration 1.

    A contiguous DONE prefix is always sequentially valid: iteration
    ``lvi + 1`` evaluates its terminator deterministically, so it can
    only ever be recorded TERMINATED/EXITED — a run of DONEs starting
    at 1 can never extend past the last valid iteration.
    """

    next_iter: int
    writes: Dict[int, Dict[Tuple[str, int], Any]] = field(
        default_factory=dict)
    locals: Dict[str, Any] = field(default_factory=dict)

    @property
    def salvaged_iters(self) -> int:
        """How many committed iterations the retry skips."""
        return self.next_iter - 1


class _Cell:
    """A plain mutable value slot (thread-mode stand-in for mp.Value)."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value


class _Coord:
    """Shared coordination state, mode-agnostic.

    ``counter`` (next unissued index), ``quit_at`` (smallest observed
    termination), ``horizon`` (last index issuable this strip) and
    ``done`` live in shared memory for procs mode; ``barrier`` has
    ``workers + 1`` parties (the parent joins every strip boundary
    twice: once to quiesce, once to release).
    """

    def __init__(self, mode: str, workers: int, first: int,
                 horizon: int) -> None:
        self.mode = mode
        if mode == "procs":
            import multiprocessing as mp
            ctx = mp.get_context(
                "fork" if "fork" in mp.get_all_start_methods() else None)
            self.ctx = ctx
            self.lock = ctx.Lock()
            self.counter = ctx.Value("q", first, lock=False)
            self.quit_at = ctx.Value("q", _NO_QUIT, lock=False)
            self.horizon = ctx.Value("q", horizon, lock=False)
            self.done = ctx.Value("b", 0, lock=False)
            self.barrier = ctx.Barrier(workers + 1)
            self.results = ctx.Queue()
            self.abort = ctx.Event()
        else:
            self.ctx = None
            self.lock = threading.Lock()
            self.counter = _Cell(first)
            self.quit_at = _Cell(_NO_QUIT)
            self.horizon = _Cell(horizon)
            self.done = _Cell(0)
            self.barrier = threading.Barrier(workers + 1)
            self.results = _thread_queue.Queue()
            self.abort = threading.Event()

    def propose_quit(self, k: int) -> None:
        """Record a termination at ``k`` (keep the minimum)."""
        with self.lock:
            if k < self.quit_at.value:
                self.quit_at.value = k


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _WriteBuffer(MemHooks):
    """Capture one iteration's shared-array writes privately.

    Reads consult the current iteration's own writes first (so a
    read-after-write inside one iteration sees the new value), then
    fall through to the shared segment.  The parent applies buffered
    writes in iteration order after the run.
    """

    def __init__(self) -> None:
        self.writes: Dict[Tuple[str, int], Any] = {}

    def begin_iteration(self, iteration: int) -> None:
        """Start a fresh private write set for the next iteration."""
        self.writes = {}

    def redirect_read(self, ctx: EvalContext, array: str, idx: int) -> Any:
        return self.writes.get((array, idx))

    def capture_write(self, ctx: EvalContext, array: str, idx: int,
                      value: Any) -> bool:
        self.writes[(array, idx)] = value
        return True


class _Walk:
    """Per-worker private catch-up walk (General-2/3 supply)."""

    __slots__ = ("k", "value", "exhausted")

    def __init__(self, initial: Any, first: int = 1) -> None:
        self.k = first
        self.value = initial
        self.exhausted = False

    def value_for(self, k: int, runner: IterationRunner, store: Store,
                  funcs: FunctionTable, disp_var: str) -> Any:
        """Dispatcher value for iteration ``k``, or ``None`` when the
        recurrence ran out before reaching it."""
        if self.exhausted:
            return None
        while self.k < k:
            ctx = EvalContext(store, funcs, FREE,
                              local={disp_var: self.value})
            try:
                runner.advance(ctx)
            except NullPointerError:
                self.exhausted = True
                return None
            self.value = ctx.local[disp_var]
            self.k += 1
        return self.value


def _take_dynamic(coord: _Coord, chunk: int) -> Optional[range]:
    """Atomically claim the next chunk of iteration indices."""
    with coord.lock:
        lo = coord.counter.value
        limit = min(coord.horizon.value, coord.quit_at.value)
        if lo > limit:
            return None
        hi = min(lo + chunk, limit + 1)
        coord.counter.value = hi
    return range(lo, hi)


def _take_static(stream: _Cell, stride: int, coord: _Coord,
                 chunk: int) -> Optional[List[int]]:
    """Next chunk of this worker's private mod-p index stream."""
    horizon = coord.horizon.value
    indices: List[int] = []
    while len(indices) < chunk and stream.value <= horizon:
        indices.append(stream.value)
        stream.value += stride
    return indices or None


def _worker_main(wid: int, task: _Task, coord: _Coord,
                 direct_store: Optional[Store] = None) -> None:
    """Worker entry point (process target or thread target).

    Protocol: take chunks until the strip horizon is drained, then
    meet the parent at a double barrier; the parent extends the
    horizon or sets ``done`` between the two waits.  Every taken index
    produces exactly one record on the results queue (executed,
    terminated, or skipped), which is how the parent knows when a
    strip is fully accounted for.

    Fault injection (``task.fault_plan``) hooks in at three points:
    before each iteration (crash/hang), before each barrier arrival
    (stall), and around the result put (drop / shadow corruption).  An
    :class:`InjectedCrash` deliberately bypasses the error reporting —
    an injected crash must look like sudden death, not like a worker
    traceback on the queue.
    """
    attached = None
    failed = False
    shadows: Optional[ShadowArrays] = None
    fp = task.fault_plan
    stall = fp.barrier_delay(wid) if fp else 0.0
    local_trace = direct_store is None
    if local_trace:
        # A forked process inherits the parent's global tracer —
        # possibly one holding an open file sink.  Always replace it:
        # with a private in-memory tracer when tracing is on (records
        # are shipped back on the results queue at exit), with the
        # null tracer otherwise.  Thread workers instead share the
        # parent's tracer directly.
        set_tracer(Tracer(MemorySink()) if task.trace else None)
    trc = get_tracer()
    try:
        if direct_store is not None:
            store = direct_store
        else:
            attached = attach_store(task.store_spec)
            store = attached.store
        runner = IterationRunner(task.loop, task.funcs, FREE,
                                 dispatcher_stmts=task.dispatcher_stmts)
        buffer = _WriteBuffer()
        if task.shadow_arrays:
            shadows = ShadowArrays(store, task.shadow_arrays)
            hooks: MemHooks = CompositeHooks(shadows, buffer)
        else:
            hooks = buffer
        walk_state = (_Walk(task.init_value, task.first)
                      if task.supply == "walk" else None)
        stream = _Cell(task.first + wid)  # static-schedule index stream

        if fp:   # at_iter=0 specs: deterministic startup crash/hang
            try:
                fp.fire_startup(wid, abort_check=coord.abort.is_set)
            except InjectedCrash:
                return  # thread-mode sudden death before any chunk
        while True:
            indices: Optional[Sequence[int]] = None
            if not failed:
                if task.schedule == "static":
                    indices = _take_static(stream, task.workers, coord,
                                           task.chunk)
                else:
                    indices = _take_dynamic(coord, task.chunk)
            if indices is None:
                if stall:
                    time.sleep(stall)
                try:
                    coord.barrier.wait(timeout=_BARRIER_TIMEOUT)
                    coord.barrier.wait(timeout=_BARRIER_TIMEOUT)
                except threading.BrokenBarrierError:
                    return
                if coord.done.value:
                    break
                continue
            try:
                c0 = time.perf_counter_ns() if trc.enabled else 0
                recs = _run_indices(wid, indices, task, coord, store,
                                    runner, buffer, hooks, walk_state)
                if trc.enabled:
                    c1 = time.perf_counter_ns()
                    trc.span(_ev.PHASE_SPAN_PREFIX + "body",
                             (c0 - task.trace_t0_ns) // 1000,
                             (c1 - task.trace_t0_ns) // 1000,
                             pid=wid, first=indices[0], n=len(indices))
                    done = sum(1 for r in recs
                               if r[1] == IterOutcome.DONE)
                    faulted = sum(1 for r in recs
                                  if r[1] == IterOutcome.FAULTED)
                    if done:
                        trc.count(_ev.M_EXECUTED, done)
                    if faulted:
                        trc.count(_ev.M_ITER_FAULTS, faulted)
                if fp and fp.drops_chunk(wid, indices):
                    continue    # injected lost-result: never queued
                coord.results.put(("chunk", wid, recs))
            except InjectedCrash:
                return          # thread-mode sudden death
            except BaseException:
                failed = True
                coord.propose_quit(0)   # stop issuing work everywhere
                coord.results.put(("error", wid, traceback.format_exc()))
        if task.shadow_arrays:
            payload = None
            if shadows is not None and not failed:
                payload = ({name: (shadows.w1[name], shadows.w2[name],
                                   shadows.r1[name], shadows.r2[name])
                            for name in shadows.arrays}, shadows.accesses)
            if fp:
                payload = fp.corrupt_shadow_payload(wid, payload)
            coord.results.put(("shadow", wid, payload))
        if local_trace and trc.enabled:
            coord.results.put(("obs", wid, (trc.metrics.dump(),
                                            list(trc.sink.spans),
                                            list(trc.sink.events))))
    finally:
        if attached is not None:
            attached.close()


def _run_indices(wid: int, indices: Sequence[int], task: _Task,
                 coord: _Coord, store: Store, runner: IterationRunner,
                 buffer: _WriteBuffer, hooks: MemHooks,
                 walk_state: Optional[_Walk]) -> List[Tuple]:
    """Execute one chunk; returns one record per index.

    Record shape: ``(k, outcome, writes, locals)`` where ``writes`` is
    the buffered ``(array, idx) -> value`` map and ``locals`` the
    iteration-private scalars (both ``None`` for skipped indices).
    For a FAULTED outcome the locals slot carries the
    :class:`~repro.errors.IterationFault` record instead.

    Containment: any ordinary ``Exception`` inside the iteration —
    the body raising, a linked-list dispatcher walk running off the
    end of the structure, a :class:`~repro.runtime.shm.GuardedArray`
    bounds trap, an injected ``raise-at-iter`` — becomes a FAULTED
    record and a QUIT proposal at ``k``; the worker keeps running.
    Only :class:`InjectedCrash` (scripted sudden death) escapes.
    """
    recs: List[Tuple] = []
    fp = task.fault_plan
    for k in indices:
        if fp:
            fp.fire_pre_iteration(wid, k, abort_check=coord.abort.is_set)
        if coord.quit_at.value < k:
            recs.append((k, _SKIPPED, None, None))
            continue
        begin = getattr(hooks, "begin_iteration", None)
        if begin is not None:
            begin(k)
        try:
            if fp:
                fp.raises_at(wid, k)
            if walk_state is not None:
                d = walk_state.value_for(k, runner, store, task.funcs,
                                         task.disp_var)
                if d is None:    # recurrence exhausted before reaching k
                    raise NullPointerError(
                        f"dispatcher walk exhausted before iteration {k}")
            else:
                d = task.init_value + task.step * (k - task.first)
            if fp:
                target = fp.oob_target(wid, k)
                if target is not None:
                    name = target or next(iter(store.arrays()), "")
                    if name:    # trip the shared-segment bounds guard
                        store[name][-1] = 0
            local: Dict[str, Any] = {task.disp_var: d}
            ctx = EvalContext(store, task.funcs, FREE, local=local,
                              mem=hooks, iteration=k)
            outcome = runner.run_iteration(ctx)
        except InjectedCrash:
            raise
        except Exception as exc:
            kind = ("injected"
                    if isinstance(exc, InjectedIterationError) else None)
            fault = IterationFault.from_exception(
                exc, iteration=k, worker=wid, kind=kind)
            recs.append((k, IterOutcome.FAULTED, None, fault))
            coord.propose_quit(k)
            continue
        recs.append((k, outcome, dict(buffer.writes), local))
        if outcome in (IterOutcome.TERMINATED, IterOutcome.EXITED):
            coord.propose_quit(k)
    return recs


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

@dataclass
class _Gather:
    """Parent-side accumulation of worker records."""

    outcomes: Dict[int, str] = field(default_factory=dict)
    writes: Dict[int, Dict[Tuple[str, int], Any]] = field(
        default_factory=dict)
    locals: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    faults: Dict[int, IterationFault] = field(default_factory=dict)
    received: int = 0
    skipped: int = 0
    chunks: int = 0
    error: Optional[str] = None
    shadow_payloads: List[Optional[Tuple[Dict, int]]] = field(
        default_factory=list)
    obs_payloads: List[Tuple] = field(default_factory=list)


def _check_monitor(monitor) -> None:
    """Re-raise the liveness monitor's fault, if it has detected one."""
    fault = monitor.fault
    if fault is not None:
        raise fault


def _fold_records(gathered: _Gather, payload) -> None:
    """Fold one chunk's iteration records into the gather state.

    Shared by the per-call gather loop (:func:`_drain`) and the pool
    engine's message-coordinated gather (:mod:`repro.service.pool`),
    so both protocols account records identically.
    """
    gathered.chunks += 1
    for k, outcome, writes, local in payload:
        gathered.received += 1
        if outcome == _SKIPPED:
            gathered.skipped += 1
            continue
        gathered.outcomes[k] = outcome
        if outcome == IterOutcome.FAULTED:
            # the fault record rides the locals slot
            gathered.faults[k] = local
            continue
        if writes:
            gathered.writes[k] = writes
        if local is not None:
            gathered.locals[k] = local


def _parent_barrier(coord: _Coord, monitor, t0: float,
                    timeout: float) -> None:
    """The parent's side of one strip-barrier wait, fault-hardened.

    A broken barrier is never surfaced raw: it is either the liveness
    monitor aborting on a detected fault (re-raised structured) or a
    genuine assembly timeout (:class:`BarrierStalled` with phase and
    elapsed-time context) — satellite fix for the raw
    ``BrokenBarrierError`` escapes of PR 2.
    """
    monitor.phase = "barrier"
    try:
        coord.barrier.wait(timeout=timeout)
    except threading.BrokenBarrierError:
        _check_monitor(monitor)
        raise BarrierStalled(
            f"strip barrier did not assemble within {timeout:.1f}s "
            f"({coord.barrier.n_waiting} of {coord.barrier.parties} "
            f"parties arrived)",
            phase="barrier",
            elapsed_s=time.perf_counter() - t0) from None
    finally:
        monitor.phase = "run"


def _drain(coord: _Coord, gathered: _Gather, expected_total: int,
           monitor, t0: float, workers: int,
           timeout: float = _QUEUE_TIMEOUT) -> None:
    """Consume queue records until the strip is fully accounted for
    (or a worker error / system fault short-circuits the run).

    Blocking gets are chopped into :data:`_POLL_S` slices so the
    liveness monitor's verdicts surface promptly.  Two structured
    failure detections replace the former raw ``queue.Empty`` escape:

    * every worker parked at the strip barrier while records are still
      missing and the queue stays empty for a grace period — a result
      message was lost in flight (:class:`ResultLost`);
    * nothing arrives within ``timeout`` — the workers stopped making
      progress (:class:`WorkerHung`).
    """
    monitor.phase = "gather"
    deadline = time.monotonic() + timeout
    parked_since: Optional[float] = None
    try:
        while gathered.received < expected_total and gathered.error is None:
            _check_monitor(monitor)
            try:
                kind, wid, payload = coord.results.get(timeout=_POLL_S)
            except _thread_queue.Empty:
                now = time.monotonic()
                elapsed = time.perf_counter() - t0
                if now > deadline:
                    raise WorkerHung(
                        f"no worker results for {timeout:.1f}s with "
                        f"{expected_total - gathered.received} of "
                        f"{expected_total} records outstanding",
                        phase="gather", elapsed_s=elapsed) from None
                try:
                    parked = coord.barrier.n_waiting >= workers
                except (OSError, ValueError):
                    parked = False
                if parked:
                    if parked_since is None:
                        parked_since = now
                    elif now - parked_since > _LOST_RESULT_GRACE_S:
                        raise ResultLost(
                            f"all {workers} workers are parked at the "
                            f"strip barrier but "
                            f"{expected_total - gathered.received} of "
                            f"{expected_total} result records never "
                            f"arrived",
                            phase="gather", elapsed_s=elapsed) from None
                else:
                    parked_since = None
                continue
            parked_since = None
            if kind == "fault":      # watchdog sentinel: wake and raise
                _check_monitor(monitor)
                continue
            if kind == "error":
                gathered.error = payload
                return
            if kind == "shadow":     # late shadow from an earlier error path
                gathered.shadow_payloads.append(payload)
                continue
            if kind == "obs":        # early worker telemetry payload
                gathered.obs_payloads.append(payload)
                continue
            _fold_records(gathered, payload)
    finally:
        monitor.phase = "run"


def _collect_shadows(coord: _Coord, gathered: _Gather, workers: int,
                     monitor, t0: float,
                     timeout: float = _QUEUE_TIMEOUT) -> None:
    """Receive the per-worker shadow payloads sent at worker exit."""
    monitor.phase = "shadow"
    deadline = time.monotonic() + timeout
    try:
        while len(gathered.shadow_payloads) < workers:
            _check_monitor(monitor)
            try:
                kind, _wid, payload = coord.results.get(timeout=_POLL_S)
            except _thread_queue.Empty:
                if time.monotonic() > deadline:
                    raise ResultLost(
                        f"timed out waiting for worker shadow marks "
                        f"({len(gathered.shadow_payloads)} of {workers} "
                        f"received)",
                        phase="shadow",
                        elapsed_s=time.perf_counter() - t0) from None
                continue
            if kind == "fault":
                _check_monitor(monitor)
            elif kind == "shadow":
                gathered.shadow_payloads.append(payload)
            elif kind == "obs":
                gathered.obs_payloads.append(payload)
            elif kind == "error" and gathered.error is None:
                gathered.error = payload
    finally:
        monitor.phase = "run"


def _collect_obs(coord: _Coord, gathered: _Gather, workers: int,
                 timeout: float = 2.0) -> None:
    """Best-effort drain of the obs payloads workers send at exit.

    Tracing is telemetry, not semantics: a payload that never arrives
    (a crashed worker, a queue race) is simply missing from the merged
    registry — no fault is raised and the run's result is unaffected.
    """
    deadline = time.monotonic() + timeout
    while len(gathered.obs_payloads) < workers:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        try:
            kind, _wid, payload = coord.results.get(
                timeout=min(_POLL_S, remaining))
        except _thread_queue.Empty:
            continue
        if kind == "obs":
            gathered.obs_payloads.append(payload)
        elif kind == "shadow":
            gathered.shadow_payloads.append(payload)


def _merge_worker_obs(tracer: Tracer,
                      payloads: List[Tuple]) -> int:
    """Fold worker-shipped obs payloads into the parent tracer.

    Each payload is ``(metrics_dump, spans, events)`` as sent by
    :func:`_worker_main`: counters add, histogram samples concatenate
    (:meth:`~repro.obs.metrics.MetricsRegistry.merge_dump`), and the
    records are re-emitted so worker-side ``phase.body`` spans land in
    the parent's sink — one Perfetto timeline across the fork boundary.
    """
    merged = 0
    for payload in payloads:
        if not payload:
            continue
        dump, spans, events = payload
        tracer.metrics.merge_dump(dump)
        for sp in spans:
            tracer.sink.emit_span(sp)
        for evt in events:
            tracer.sink.emit_event(evt)
        merged += 1
    if merged:
        tracer.count(_ev.M_WORKER_OBS_MERGED, merged)
    return merged


def _validate_shadow_payloads(gathered: _Gather, t0: float) -> None:
    """Integrity-check the per-worker shadow stamp vectors.

    Stamps are iteration numbers (>= 1) or the untouched sentinel
    ``INF``; anything else means the payload was corrupted in flight
    (or by fault injection) and the PD verdict built from it would be
    garbage — fail structured instead (:class:`ShadowCorrupt`).
    """
    for payload in gathered.shadow_payloads:
        if payload is None:
            continue
        marks, _accesses = payload
        for name, vectors in marks.items():
            for vec in vectors:
                if len(vec) and bool((np.asarray(vec) < 1).any()):
                    raise ShadowCorrupt(
                        f"shadow stamp vector for array {name!r} "
                        f"contains out-of-range stamps; refusing to "
                        f"run the PD test on corrupted marks",
                        phase="shadow",
                        elapsed_s=time.perf_counter() - t0)


def _merge_stamp_pair(stacks: List[np.ndarray]) -> Tuple[np.ndarray,
                                                         np.ndarray]:
    """Merge per-worker (smallest, second-smallest) stamp vectors.

    Stamps are iteration numbers; equal stamps denote the *same*
    iteration (each iteration runs on exactly one worker), so the
    merged pair is the two smallest **distinct** values across all
    workers' pairs.
    """
    stack = np.stack(stacks)
    m1 = stack.min(axis=0)
    masked = np.where(stack == m1[None, :], _NO_STAMP, stack)
    return m1, masked.min(axis=0)


def _merged_shadows(store: Store, names: Tuple[str, ...],
                    payloads: List[Optional[Tuple[Dict, int]]]
                    ) -> ShadowArrays:
    """Rebuild one global ShadowArrays from per-worker payloads."""
    merged = ShadowArrays(store, names)
    valid = [p for p in payloads if p is not None]
    for name in names:
        w1, w2 = _merge_stamp_pair(
            [p[0][name][0] for p in valid] + [p[0][name][1] for p in valid])
        r1, r2 = _merge_stamp_pair(
            [p[0][name][2] for p in valid] + [p[0][name][3] for p in valid])
        merged.w1[name], merged.w2[name] = w1, w2
        merged.r1[name], merged.r2[name] = r1, r2
    merged.accesses = sum(p[1] for p in valid)
    return merged


def _dispatcher_precedes_exits(loop: Loop,
                               dispatcher_stmts: Sequence[int]) -> bool:
    """Mirror of ``SchemeCore._dispatcher_precedes_exits``."""
    if not dispatcher_stmts:
        return False
    exit_positions = [i for i, s in enumerate(loop.body)
                      if any(isinstance(n, Exit) for n in walk(s))]
    if not exit_positions:
        return False
    return max(dispatcher_stmts) < min(exit_positions)


def _done_prefix(gathered: _Gather, first: int, upto: int) -> int:
    """Largest ``m <= upto`` with every iteration in [first, m] DONE."""
    m = first - 1
    while m + 1 <= upto \
            and gathered.outcomes.get(m + 1) == IterOutcome.DONE:
        m += 1
    return m


def _replay_dispatcher(runner: IterationRunner, store: Store,
                       funcs: FunctionTable, disp_var: str,
                       initial: Any, k: int,
                       faults: Optional[List[IterationFault]] = None
                       ) -> Any:
    """Untimed reconstruction of the dispatcher value ``k`` hops past
    ``initial`` on the parent store (mirror of
    ``executors.supplies._replay``).

    A hop through NULL means the walk ran off the structure — the
    standard spurious-overshoot artifact of linked-list dispatchers.
    It is classified like every other contained fault: recorded as an
    :class:`~repro.errors.IterationFault` on ``faults`` (when given)
    and the last reachable value is published.
    """
    value = initial
    for i in range(k):
        ctx = EvalContext(store, funcs, FREE, local={disp_var: value})
        try:
            runner.advance(ctx)
        except NullPointerError as exc:
            if faults is not None:
                faults.append(IterationFault.from_exception(
                    exc, iteration=i + 1, worker=-1))
            return value
        value = ctx.local[disp_var]
    return value


def run_parallel_real(
    info,
    store: Store,
    funcs: FunctionTable,
    *,
    mode: str = "procs",
    scheme: str = "doall",
    workers: int = 2,
    chunk: Optional[int] = None,
    u: Optional[int] = None,
    strip: Optional[int] = None,
    speculative: bool = False,
    test_arrays: Tuple[str, ...] = (),
    privatize: Tuple[str, ...] = (),
    machine: Optional[Machine] = None,
    fault_plan: Optional[FaultPlan] = None,
    monitor=None,
    barrier_timeout: float = _BARRIER_TIMEOUT,
    queue_timeout: float = _QUEUE_TIMEOUT,
    strict_exceptions: bool = False,
    partial_restart: bool = True,
    resume: Optional[ResumeState] = None,
    engine=None,
) -> ParallelResult:
    """Execute one analyzed loop on real workers (see module docstring).

    Parameters
    ----------
    info:
        The loop's static analysis (``LoopInfo``).
    store:
        Live program state; ends sequentially correct.
    mode:
        ``"procs"`` (OS processes over shared memory) or ``"threads"``
        (same orchestration on GIL-bound threads — semantics only).
    scheme:
        ``"doall"`` (closed-form induction supply, Induction-2 QUIT
        semantics), ``"general-3"`` (dynamic chunks + private walks) or
        ``"general-2"`` (static mod-p streams + private walks).
    workers / chunk:
        Worker count and iteration-chunk size (auto when ``None``).
    u / strip:
        Iteration bound / strip length: with ``strip`` the horizon is
        extended strip by strip (barrier-separated) until a
        termination is observed, mirroring the virtual machine.
    speculative / test_arrays / privatize:
        Run under PD-test shadow marking; on an invalid verdict fall
        back to a sequential re-execution.
    machine:
        Only used for the PD analysis' virtual-time accounting;
        defaults to ``Machine(workers)``.
    fault_plan:
        Scripted fault injection (:class:`~repro.runtime.faults
        .FaultPlan`); ``None`` runs clean.
    monitor:
        A liveness monitor (the supervisor's watchdog).  Protocol:
        ``start(handles, coord, t0)`` / ``stop()`` / readable
        ``fault`` attribute / writable ``phase`` attribute.  ``None``
        installs a no-op stand-in.
    barrier_timeout / queue_timeout:
        Parent-side deadlines for barrier assembly and result
        gathering.  The defaults are generous CI backstops; the
        supervisor passes per-policy deadlines so faults surface in
        milliseconds, not minutes.
    strict_exceptions:
        When True, a contained in-range fault whose sequential replay
        raises a *different* exception type (or none) raises
        :class:`~repro.errors.ExceptionDivergence` instead of silently
        trusting the replay.  Default False: the sequential replay is
        the ground truth.
    partial_restart:
        When True (default), a genuine in-range fault or a PD-test
        failure commits the validated iteration prefix and resumes
        sequentially from its end; False restores the old full-restart
        behavior (everything re-executes from iteration 1).
    resume:
        A :class:`ResumeState` salvaged from a previous faulted
        attempt: its committed prefix is applied after init and the
        workers start at ``resume.next_iter``.  Non-speculative runs
        only (a speculative prefix is only validated by the PD test,
        whose shadows die with the failed attempt).
    engine:
        An alternative *execution engine* replacing the spawn /
        barrier-strip / gather middle of this function while keeping
        everything around it — init, supply setup, salvage, overshoot
        quarantine, PD merge, and ordered reconciliation.  Protocol:
        ``engine.execute(task, store, gathered, monitor=..., strip=...,
        horizon0=..., speculative=..., barrier_timeout=...,
        queue_timeout=..., prof=..., t0=...) -> (term_found, t_setup)``
        must fill ``gathered`` (a :class:`_Gather`, including shadow
        and obs payloads), raise the :class:`WorkerFault` taxonomy on
        system failure, and own its worker lifecycle/teardown.  The
        persistent worker-pool service (:mod:`repro.service.pool`)
        passes its message-coordinated engine here so pool jobs reuse
        the exact per-call semantics without per-job process spawn.

    System failures (a worker crash, hang, barrier stall, lost result
    message, or corrupted shadow payload) raise the structured
    :class:`~repro.errors.WorkerFault` taxonomy — with a
    :class:`ResumeState` attached as ``fault.salvage`` whenever a
    contiguous DONE prefix was already gathered — and recovery is the
    caller's job (see :func:`repro.runtime.supervisor.run_supervised`
    for the degradation ladder the paper's Section-5 fallback
    generalizes into).  The loop's *own* exceptions, by contrast, are
    contained, quarantined, and re-raised exactly as the sequential
    execution would raise them.
    """
    t0 = time.perf_counter()
    trc = get_tracer()
    prof = get_profiler()
    if not prof.enabled and trc.enabled:
        # No profiler installed but a tracer is live: record phases
        # run-locally so the trace still carries the wall breakdown.
        prof = PhaseProfiler()
    pmark = prof.mark()
    trace_t0_ns = time.perf_counter_ns()
    if mode not in ("procs", "threads"):
        raise PlanError(f"unknown real backend mode {mode!r}")
    if scheme not in ("doall", "general-2", "general-3"):
        raise PlanError(f"unknown real-backend scheme {scheme!r}")
    if u is None and strip is None:
        raise PlanError("run_parallel_real needs an iteration bound u "
                        "or a strip length")
    disp = info.dispatcher
    if disp is None:
        raise PlanError(f"loop {info.loop.name!r} has no dispatcher; "
                        f"run it sequentially instead")
    if resume is not None and speculative:
        raise PlanError("partial-restart resume is only valid for "
                        "non-speculative runs (a speculative prefix is "
                        "only validated by the PD test)")
    workers = max(1, int(workers))

    loop = info.loop
    runner = IterationRunner(loop, funcs, FREE,
                             dispatcher_stmts=info.dispatcher_stmts)

    backup = store.copy() if speculative else None

    # Init block runs once, sequentially, on the live store.
    init_ctx = runner.make_ctx(store)
    runner.run_init(init_ctx)

    first = 1
    if resume is not None:
        # Commit the salvaged prefix [1, first-1] before export so the
        # workers see its array writes and the merged remainder
        # scalars; the dispatcher scalar is advanced to d(first) below.
        first = max(1, int(resume.next_iter))
        for k in sorted(resume.writes):
            for (array, idx), value in resume.writes[k].items():
                store[array][idx] = value
        for rname, rvalue in resume.locals.items():
            if rname != disp.var:
                store[rname] = rvalue

    from repro.analysis.recurrence import RecKind
    if scheme == "doall":
        if disp.kind is not RecKind.INDUCTION or disp.step in (None, 0):
            raise PlanError(
                f"doall scheme needs an induction dispatcher with a "
                f"nonzero step; loop {loop.name!r} has {disp.kind.value}")
        # Mirror ClosedFormSupply: analysis may report an integral step
        # as a float; int-ify so the published dispatcher scalar keeps
        # the sequential execution's type.
        step = disp.step
        supply = "closed"
        step = int(step) if float(step).is_integer() else step
    else:
        supply, step = "walk", 0
    init_value = store[disp.var]          # d(1)
    if first > 1:
        if supply == "closed":
            init_value = init_value + step * (first - 1)
        else:
            init_value = _replay_dispatcher(runner, store, funcs,
                                            disp.var, init_value,
                                            first - 1)
        store[disp.var] = init_value      # d(first) is live at resume

    horizon0 = (strip if strip is not None else u) + first - 1
    if chunk is None:
        chunk = default_chunk(u if strip is None else strip, workers)

    monitor = monitor if monitor is not None else _NullMonitor()
    fault_plan = fault_plan.with_mode(mode) if fault_plan else None

    shared: Optional[SharedStore] = None
    spec: Optional[StoreSpec] = None
    procs: List = []
    coord: Optional[_Coord] = None
    term_found = False
    clean_exit = False
    gathered = _Gather()
    try:
        # The shm export lives inside this try so no failure between
        # export and teardown — pickling errors, spawn failures, a
        # detected fault — can leak a /dev/shm segment (the atexit
        # sweep in runtime.shm is the second line of defense).
        if engine is None and mode == "procs":
            with prof.phase("shm-setup", arrays=len(store.arrays())):
                shared = SharedStore.export(store)
                spec = shared.spec()

        task = _Task(
            loop=loop, funcs=funcs,
            dispatcher_stmts=tuple(info.dispatcher_stmts),
            disp_var=disp.var, supply=supply,
            init_value=init_value, step=step,
            schedule="static" if scheme == "general-2" else "dynamic",
            chunk=chunk, workers=workers, first=first,
            shadow_arrays=tuple(test_arrays) if speculative else (),
            store_spec=spec,
            fault_plan=fault_plan,
            trace=trc.enabled, trace_t0_ns=trace_t0_ns,
        )
        if engine is not None:
            # Alternative engine (the pool service): it leases the shm
            # arena, dispatches to its persistent workers, drives the
            # strip protocol over messages, and fills `gathered` —
            # including shadow/obs payloads — raising the WorkerFault
            # taxonomy on system failure.
            term_found, t_setup = engine.execute(
                task, store, gathered, monitor=monitor, strip=strip,
                horizon0=horizon0, speculative=speculative,
                barrier_timeout=barrier_timeout,
                queue_timeout=queue_timeout, prof=prof, t0=t0)
            clean_exit = True
        else:
            coord = _Coord(mode, workers, first, horizon0)

            with prof.phase("spawn", mode=mode, workers=workers):
                if mode == "procs":
                    procs = [coord.ctx.Process(target=_worker_main,
                                               args=(wid, task, coord),
                                               daemon=True)
                             for wid in range(workers)]
                else:
                    procs = [threading.Thread(target=_worker_main,
                                              args=(wid, task, coord,
                                                    store),
                                              daemon=True)
                             for wid in range(workers)]
                for p in procs:
                    p.start()
            monitor.start(procs, coord, t0)
            t_setup = time.perf_counter()

            with prof.phase("body", scheme=scheme):
                while True:
                    _parent_barrier(coord, monitor, t0,
                                    barrier_timeout)   # strip quiesced
                    if task.schedule == "static":
                        expected = coord.horizon.value - first + 1
                    else:
                        expected = coord.counter.value - first
                    _drain(coord, gathered, expected, monitor, t0,
                           workers, queue_timeout)
                    term_found = any(
                        o in (IterOutcome.TERMINATED, IterOutcome.EXITED)
                        for o in gathered.outcomes.values())
                    # A contained fault also ends the strip loop: a
                    # spurious fault is always accompanied by a
                    # termination in the same strip (the true terminator
                    # precedes every overshoot artifact and is never
                    # blocked by the fault's QUIT), so a
                    # fault-without-termination means the program
                    # genuinely raises and extending the horizon would
                    # never converge.
                    if (gathered.error is not None or term_found
                            or gathered.faults or strip is None):
                        coord.done.value = 1
                        _parent_barrier(coord, monitor, t0,
                                        barrier_timeout)
                        break
                    if coord.horizon.value + strip > _MAX_HORIZON:
                        coord.done.value = 1
                        _parent_barrier(coord, monitor, t0,
                                        barrier_timeout)
                        raise ExecutionError(
                            f"loop {loop.name!r} exceeded "
                            f"{_MAX_HORIZON} iterations without "
                            f"terminating")
                    coord.horizon.value += strip
                    _parent_barrier(coord, monitor, t0,
                                    barrier_timeout)   # next strip
            # Workers only send shadow payloads when there are PD-tested
            # arrays (the worker condition is `task.shadow_arrays`); a
            # speculative run with an empty test set must not wait for
            # messages nobody will send.
            if speculative and task.shadow_arrays:
                with prof.phase("pd-merge", stage="collect"):
                    _collect_shadows(coord, gathered, workers, monitor,
                                     t0, queue_timeout)
                    _validate_shadow_payloads(gathered, t0)
            clean_exit = True
    except WorkerFault as wf:
        # A system fault killed the run mid-flight.  For non-speculative
        # runs, any contiguous DONE prefix already gathered is
        # sequentially valid (see ResumeState) — attach it so the
        # supervisor's partial-restart rung can resume instead of
        # re-executing from iteration 1.
        if not speculative:
            m = _done_prefix(gathered, first, _NO_QUIT)
            if m >= first:
                writes = dict(resume.writes) if resume is not None else {}
                for k in sorted(gathered.writes):
                    if k <= m:
                        writes[k] = gathered.writes[k]
                merged = dict(resume.locals) if resume is not None else {}
                for k in sorted(gathered.locals):
                    if k <= m:
                        merged.update(gathered.locals[k])
                merged.pop(disp.var, None)
                wf.salvage = ResumeState(next_iter=m + 1, writes=writes,
                                         locals=merged)
        raise
    finally:
        monitor.stop()
        if coord is not None and not clean_exit:
            # Abnormal exit: release every worker promptly — hung
            # injected threads poll `abort`, barrier waiters get a
            # broken barrier, and stragglers are terminated below.
            coord.done.value = 1
            coord.abort.set()
            coord.barrier.abort()
        join_timeout = 30.0 if clean_exit else 1.0
        for p in procs:
            p.join(timeout=join_timeout)
        if mode == "procs":
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5.0)
        if shared is not None:
            shared.close(unlink=True)
    t_doall = time.perf_counter()

    # Satellite: merge worker-side telemetry (spans, fault.*/exec.*
    # counters) into the parent tracer at reconciliation — in procs
    # mode it arrives as exit-time queue payloads; thread workers
    # already wrote into the shared tracer directly.
    if mode == "procs" and task.trace and coord is not None:
        _collect_obs(coord, gathered, workers)
    if gathered.obs_payloads and trc.enabled:
        _merge_worker_obs(trc, gathered.obs_payloads)

    machine = machine or Machine(workers)
    wall_total = lambda: time.perf_counter() - t0  # noqa: E731

    contained: List[IterationFault] = [
        gathered.faults[k] for k in sorted(gathered.faults)]
    spurious = 0

    def spec_stats(salvaged: int = 0, restarts: int = 0) -> Dict[str, Any]:
        trc = get_tracer()
        if trc.enabled:
            if spurious:
                trc.count(_ev.M_SPEC_SPURIOUS, spurious)
            if salvaged:
                trc.count(_ev.M_SPEC_SALVAGED, salvaged)
            if restarts:
                trc.count(_ev.M_SPEC_PARTIAL_RESTARTS, restarts)
        return {
            "spurious_exceptions": spurious,
            "salvaged_iters": salvaged,
            "partial_restarts": restarts,
            "contained": [f.summary() for f in contained],
        }

    def base_stats() -> Dict[str, Any]:
        return {
            "backend": mode,
            "workers": workers,
            "chunk": chunk,
            "chunks": gathered.chunks,
            "skipped": gathered.skipped,
            "tested_arrays": task.shadow_arrays,
            "privatized_arrays": tuple(privatize),
        }

    def finish(stats: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp the wall-phase breakdown and flush phase spans.

        Runs once per return path, after the last phase has closed, so
        ``stats["phases"]`` covers quarantine/reconcile/fallback time
        and the tracer timeline carries the parent-side ``phase.*``
        spans next to the worker-side ones.
        """
        stats["phases"] = prof.totals_s(since=pmark)
        if trc.enabled:
            prof.flush_to_tracer(trc, t0_ns=trace_t0_ns, since=pmark)
        return stats

    def sequential_fallback(reason: str) -> ParallelResult:
        """Section 5 fallback: discard, restore, re-execute sequentially.

        Satellite fix over PR 2: the fallback result no longer rebuilds
        its stats from scratch — the run's chunk/skip counts and the
        contained-fault record survive into ``stats``.
        """
        assert backup is not None
        with prof.phase("fallback", reason=reason):
            store.restore_from(backup)
            res = SequentialInterp(loop, funcs, FREE).run(store)
        wall = wall_total()
        stats = finish(base_stats())
        stats["reason"] = reason
        stats["spec"] = spec_stats()
        return ParallelResult(
            scheme=f"speculative[{reason}]->sequential",
            n_iters=res.n_iters,
            exited_in_body=res.exited_in_body,
            t_par=max(1, int(wall * 1e9)),
            makespan=max(1, int((t_doall - t_setup) * 1e9)),
            executed=res.n_iters,
            fallback_sequential=True,
            wall_s=wall,
            stats=stats,
        )

    def continue_sequentially(resume_k: int, reason: str,
                              fault: Optional[IterationFault]
                              ) -> ParallelResult:
        """Partial restart: transactionally commit the validated prefix
        ``[1, resume_k - 1]``, then run the loop sequentially from
        iteration ``resume_k`` on the live store.

        The sequential continuation is the ground truth for whatever
        ends the loop: if the program genuinely raises, the exact
        sequential exception propagates at the exact sequential
        iteration with the committed prefix in place (exception
        equivalence); if it terminates cleanly, the contained fault was
        a parallel-only artifact and the run *self-heals*.
        """
        nonlocal spurious
        guard = IntervalCheckpoint(store, next_iter=resume_k)
        with prof.phase("quarantine", resume_k=resume_k, reason=reason):
            try:
                for k in sorted(gathered.writes):
                    if k >= resume_k:
                        continue
                    for (array, idx), value in gathered.writes[k].items():
                        store[array][idx] = value
                prefix_locals: Dict[str, Any] = {}
                for k in sorted(gathered.locals):
                    if k >= resume_k:
                        break
                    prefix_locals.update(gathered.locals[k])
                for lname, lvalue in prefix_locals.items():
                    if lname != disp.var:
                        store[lname] = lvalue
                if supply == "closed":
                    store[disp.var] = init_value + step * (resume_k - first)
                else:
                    store[disp.var] = _replay_dispatcher(
                        runner, store, funcs, disp.var, init_value,
                        resume_k - first, faults=contained)
            except BaseException:
                guard.restore(store)
                raise
            salvaged = resume_k - 1
            replay_exc: Optional[BaseException] = None
            try:
                res = SequentialInterp(loop, funcs, FREE).run(
                    store, run_init=False)
            except Exception as exc:
                replay_exc = exc
        if (strict_exceptions and fault is not None
                and fault.kind in ("exception", "oob-write")):
            got = ("no exception" if replay_exc is None
                   else type(replay_exc).__name__)
            if replay_exc is None \
                    or type(replay_exc).__name__ != fault.exc_type:
                raise ExceptionDivergence(
                    f"contained fault at iteration {fault.iteration} "
                    f"({fault.exc_type}: {fault.message}) diverges "
                    f"from the sequential replay ({got})"
                ) from replay_exc
        if replay_exc is not None:
            raise replay_exc
        if fault is not None:
            spurious += 1   # self-healed: the fault was parallel-only
        wall = wall_total()
        base = f"speculative[{scheme}]" if speculative else scheme
        suffix = "partial" if salvaged else "sequential"
        stats = finish(base_stats())
        stats["reason"] = reason
        stats["spec"] = spec_stats(salvaged=salvaged,
                                   restarts=1 if salvaged else 0)
        return ParallelResult(
            scheme=f"{base}[{reason}]->{suffix}"
                   if not speculative
                   else f"speculative[{reason}]->{suffix}",
            n_iters=salvaged + res.n_iters,
            exited_in_body=res.exited_in_body,
            t_par=max(1, int(wall * 1e9)),
            makespan=max(1, int((t_doall - t_setup) * 1e9)),
            executed=res.n_iters + sum(
                1 for o in gathered.outcomes.values()
                if o == IterOutcome.DONE),
            fallback_sequential=True,
            wall_s=wall,
            stats=stats,
        )

    if gathered.error is not None:
        if speculative:
            return sequential_fallback("exception")
        raise RealBackendError(
            f"worker failed during real-parallel execution of "
            f"{loop.name!r}:\n{gathered.error}")

    if not term_found and not gathered.faults:
        raise ExecutionError(
            f"loop {loop.name!r} did not terminate within its bound "
            f"u={horizon0}; raise the bound or strip-mine")

    lvi: Optional[int] = None
    exited = False
    if term_found:
        term_iters = [k for k, o in gathered.outcomes.items()
                      if o in (IterOutcome.TERMINATED, IterOutcome.EXITED)]
        exit_at = min(term_iters)
        exited = gathered.outcomes[exit_at] == IterOutcome.EXITED
        lvi = exit_at if exited else exit_at - 1

    # -- overshoot quarantine ----------------------------------------------
    # A fault past the last valid iteration is spurious overshoot:
    # discard and count.  A fault at k <= lvi (or any fault when no
    # termination was observed — the program raises before it could
    # terminate) is genuine: commit the prefix and re-raise
    # sequentially.
    genuine = {k: f for k, f in gathered.faults.items()
               if lvi is None or k <= lvi}
    spurious = len(gathered.faults) - len(genuine)

    if genuine:
        resume_k = min(genuine)
        fault = genuine[resume_k]
        # The committed prefix must be contiguous DONE records.
        resume_k = min(resume_k,
                       _done_prefix(gathered, first, resume_k - 1) + 1)
        if speculative and task.shadow_arrays and resume_k > first:
            with prof.phase("pd-merge", stage="prefix"):
                merged = _merged_shadows(store, task.shadow_arrays,
                                         gathered.shadow_payloads)
                prefix_pd = analyze_pd(merged, machine,
                                       last_valid=resume_k - 1)
                prefix_ok = (prefix_pd.valid_with_privatized(privatize)
                             if prefix_pd.per_array
                             else prefix_pd.valid_as_is)
                if not prefix_ok:
                    safe = min(max_valid_prefix(merged,
                                                privatized=privatize),
                               resume_k - 1)
                    resume_k = max(first, safe + 1)
        if not partial_restart:
            resume_k = first
        return continue_sequentially(resume_k, "exception", fault)

    pd = None
    if speculative:
        with prof.phase("pd-merge", stage="analyze"):
            merged = _merged_shadows(store, task.shadow_arrays,
                                     gathered.shadow_payloads)
            pd = analyze_pd(merged, machine,
                            last_valid=lvi if info.may_overshoot else None)
        valid = pd.valid_with_privatized(privatize) if pd.per_array \
            else pd.valid_as_is
        if not valid:
            if partial_restart:
                safe = min(max_valid_prefix(merged, privatized=privatize),
                           lvi)
                safe = min(safe, _done_prefix(gathered, first, safe))
                if safe >= 1:
                    return continue_sequentially(safe + 1, "pd-failed",
                                                 None)
            return sequential_fallback("pd-failed")

    # -- ordered reconciliation (mirror of SchemeCore) ---------------------
    with prof.phase("reconcile"):
        applied_words = 0
        for k in sorted(gathered.writes):
            if k > lvi:
                continue
            for (array, idx), value in gathered.writes[k].items():
                store[array][idx] = value
                applied_words += 1

        merged_locals: Dict[str, Any] = {}
        for k in sorted(gathered.locals):
            if k > lvi:
                break
            merged_locals.update(gathered.locals[k])
        for name, value in merged_locals.items():
            if name != disp.var:
                store[name] = value

        disp_before_exit = _dispatcher_precedes_exits(
            loop, info.dispatcher_stmts)
        final_k = lvi - 1 if (exited and not disp_before_exit) else lvi
        if supply == "closed":
            final_d = init_value + step * (final_k - first + 1)
        else:
            final_d = _replay_dispatcher(runner, store, funcs, disp.var,
                                         init_value, final_k - first + 1,
                                         faults=contained)
        store[disp.var] = final_d

    executed = sum(1 for o in gathered.outcomes.values()
                   if o == IterOutcome.DONE)
    overshot = sum(1 for k, o in gathered.outcomes.items()
                   if o == IterOutcome.DONE and k > lvi)
    wall = wall_total()
    name = f"speculative[{scheme}]" if speculative else scheme
    stats = finish(base_stats())
    stats["applied_words"] = applied_words
    stats["spec"] = spec_stats()
    return ParallelResult(
        scheme=name,
        n_iters=lvi,
        exited_in_body=exited,
        t_par=max(1, int(wall * 1e9)),
        makespan=max(1, int((t_doall - t_setup) * 1e9)),
        t_before=int((t_setup - t0) * 1e9),
        t_after=int((time.perf_counter() - t_doall) * 1e9),
        executed=executed,
        overshot=overshot,
        pd=pd,
        wall_s=wall,
        stats=stats,
    )
