"""Backend equivalence: sim, threads, and procs must agree.

The contract documented in `docs/backends.md`: for every loop the
planner accepts, all three backends produce the *identical* final
store, the same number of valid iterations (QUIT reconciliation), and
the same fallback decisions — only the time unit differs.  The Table-1
zoo exercises every dispatcher/terminator cell, including the seeded
speculative-failure case (associative loops whose PD test fails on
every backend and falls back to sequential re-execution).
"""

import pytest

from repro.api import parallelize
from repro.ir.interp import SequentialInterp
from repro.runtime.costs import FREE
from repro.runtime.machine import Machine
from repro.workloads.zoo import make_zoo

BACKENDS = ("sim", "threads", "procs")
ZOO = {z.name: z for z in make_zoo(48)}

# associative zoo entries are planned speculatively and their PD test
# fails (the reduction carries a flow dependence) — the seeded
# speculative-failure cases of the equivalence contract.
PD_FAIL = ("associative/RI", "associative/RV")


def _run_all_backends(zl, workers=2):
    """parallelize() the loop once per backend; return {backend: (out, store)}.

    The kernel tier is pinned off so the suite keeps exercising the
    *interpreted* executors on every backend — the tier has its own
    equivalence suite under ``tests/kernels/``.
    """
    results = {}
    for backend in BACKENDS:
        st = zl.make_store()
        out = parallelize(zl.loop, st, Machine(workers), zl.funcs,
                          backend=backend, workers=workers,
                          min_speedup=0.0, kernels="off")
        results[backend] = (out, st)
    return results


@pytest.mark.parametrize("name", sorted(ZOO))
class TestZooEquivalence:
    def test_identical_stores_and_iteration_counts(self, name):
        zl = ZOO[name]
        results = _run_all_backends(zl)

        # independent sequential reference
        ref = zl.make_store()
        SequentialInterp(zl.loop, zl.funcs, FREE).run(ref)

        sim_out, sim_store = results["sim"]
        for backend in BACKENDS:
            out, st = results[backend]
            assert out.verified is True, (
                f"{name}: {backend} failed verification")
            assert st.equals(ref), (
                f"{name}: {backend} final store differs from sequential")
            # QUIT reconciliation: same last-valid-iteration everywhere
            assert out.result.n_iters == sim_out.result.n_iters, (
                f"{name}: {backend} n_iters {out.result.n_iters} "
                f"!= sim {sim_out.result.n_iters}")
            assert (out.result.exited_in_body
                    == sim_out.result.exited_in_body)

    def test_same_fallback_decision(self, name):
        zl = ZOO[name]
        results = _run_all_backends(zl)
        sim_out, _ = results["sim"]
        for backend in ("threads", "procs"):
            out, _ = results[backend]
            assert (out.result.fallback_sequential
                    == sim_out.result.fallback_sequential), (
                f"{name}: {backend} fallback decision differs from sim")


@pytest.mark.parametrize("name", PD_FAIL)
def test_seeded_speculative_failure_falls_back_identically(name):
    """The PD test must fail on all backends and recover sequentially.

    The sim backend always does the full Section-5 restart
    (``->sequential``); the real backends may salvage a validated
    iteration prefix and continue from there (``->partial``) — either
    way the fallback decision and the final store must match.
    """
    zl = ZOO[name]
    for backend in BACKENDS:
        st = zl.make_store()
        out = parallelize(zl.loop, st, Machine(2), zl.funcs,
                          backend=backend, workers=2, min_speedup=0.0,
                          kernels="off")
        assert out.result.scheme.startswith("speculative[pd-failed]->"), (
            f"{name}: {backend} scheme {out.result.scheme!r}")
        assert out.result.fallback_sequential is True
        assert out.verified is True


def test_real_backends_report_wall_time_sim_reports_cycles():
    zl = ZOO["mono-induction/RI"]
    for backend in BACKENDS:
        st = zl.make_store()
        out = parallelize(zl.loop, st, Machine(2), zl.funcs,
                          backend=backend, workers=2, min_speedup=0.0,
                          kernels="off")
        if backend == "sim":
            assert out.result.wall_s is None
        else:
            assert out.result.wall_s is not None
            assert out.result.wall_s >= 0.0
            assert out.result.stats["backend"] == backend


def test_kernel_tier_engages_by_default_on_vectorizable_loop():
    """kernels="auto" (the default) must take the DOALL-friendly zoo
    loop through the vectorized tier on real backends — and produce the
    same verified store the interpreted path does."""
    zl = ZOO["mono-induction/RI"]
    ref = zl.make_store()
    SequentialInterp(zl.loop, zl.funcs, FREE).run(ref)
    for backend in ("threads", "procs"):
        st = zl.make_store()
        out = parallelize(zl.loop, st, Machine(2), zl.funcs,
                          backend=backend, workers=2, min_speedup=0.0)
        assert out.result.stats["backend"] == "kernel"
        assert out.result.scheme.startswith("kernel[")
        assert out.verified is True
        assert st.equals(ref)


def test_procs_leaves_no_shared_memory_leak():
    """Every run must unlink its segments (checked via /dev/shm count)."""
    import glob
    before = set(glob.glob("/dev/shm/psm_*"))
    zl = ZOO["general/RI"]
    st = zl.make_store()
    parallelize(zl.loop, st, Machine(2), zl.funcs,
                backend="procs", workers=2, min_speedup=0.0)
    after = set(glob.glob("/dev/shm/psm_*"))
    assert after <= before, f"leaked segments: {sorted(after - before)}"


def test_four_workers_agree_with_two():
    """Worker count must not affect semantics (chunking independence)."""
    zl = ZOO["nonmono-induction/RI"]
    stores = []
    for workers in (1, 2, 4):
        st = zl.make_store()
        out = parallelize(zl.loop, st, Machine(max(2, workers)), zl.funcs,
                          backend="procs", workers=workers,
                          min_speedup=0.0, kernels="off")
        assert out.verified is True
        stores.append(st)
    assert stores[0].equals(stores[1])
    assert stores[1].equals(stores[2])
