"""Tests for the Python-source frontend."""

import numpy as np
import pytest

from repro.analysis import RecKind, TermClass, Verdict, analyze_loop
from repro.errors import FrontendError
from repro.frontend import lift_function, lift_source
from repro.ir import (
    ArrayAssign,
    Assign,
    Exit,
    FunctionTable,
    If,
    Next,
    SequentialInterp,
    Store,
    Var,
)


class TestBasicLifting:
    def test_counter_loop(self):
        l = lift_source("""
i = 1
while i <= n:
    A[i] = A[i] * 2
    i = i + 1
""")
        assert l.arrays == ("A",)
        assert "i" in l.scalars and "n" in l.scalars
        info = analyze_loop(l.loop)
        assert info.dispatcher.kind is RecKind.INDUCTION

    def test_augmented_assign(self):
        l = lift_source("""
i = 0
while i < n:
    A[i] += 5
    i += 1
""")
        body = l.loop.body
        assert isinstance(body[0], ArrayAssign)
        info = analyze_loop(l.loop)
        assert info.dispatcher.step == 1

    def test_break_becomes_exit(self):
        l = lift_source("""
i = 1
while i <= n:
    if A[i] > 100:
        break
    A[i] = i
    i = i + 1
""")
        assert isinstance(l.loop.body[0], If)
        assert isinstance(l.loop.body[0].then[0], Exit)
        info = analyze_loop(l.loop)
        assert info.terminator.klass is TermClass.RV

    def test_list_traversal_sugar(self):
        l = lift_source("""
tmp = lst.head
while tmp != -1:
    out[tmp] = work(tmp)
    tmp = lst.successor(tmp)
""")
        assert l.lists == ("lst",)
        assert l.intrinsics == ("work",)
        assert isinstance(l.loop.body[-1].expr, Next)
        info = analyze_loop(l.loop)
        assert info.dispatcher.kind is RecKind.LIST

    def test_function_lifting_uses_name(self):
        # defined in a real file so inspect can read it
        import tests.frontend.sample_loops as sl
        l = lift_function(sl.double_all)
        assert l.loop.name == "double_all"

    def test_inner_for_range(self):
        l = lift_source("""
i = 0
while i < n:
    for j in range(3):
        B[j] = B[j] + i
    i += 1
""")
        from repro.ir import For
        assert isinstance(l.loop.body[0], For)

    def test_boolop_comparison_chain(self):
        l = lift_source("""
i = 0
while i < n and not done:
    i += 1
""")
        assert l.loop.cond.op == "and"

    def test_chained_comparison_desugars_to_and(self):
        l = lift_source("""
i = 1
while 0 < i < n:
    i += 1
""")
        cond = l.loop.cond
        assert cond.op == "and"
        assert cond.left.op == "<" and cond.right.op == "<"
        st = Store({"n": 6, "i": 0})
        SequentialInterp(l.loop, FunctionTable()).run(st)
        assert st["i"] == 6

    def test_min_max_abs_builtins(self):
        l = lift_source("""
i = 0
while i < n:
    A[i] = max(abs(A[i]), min(i, 7))
    i += 1
""")
        assert l.intrinsics == ()  # folded to IR primitives

    def test_docstring_and_return_skipped(self):
        l = lift_source('''
def f(A, n):
    """docstring"""
    i = 0
    while i < n:
        i += 1
    return i
''')
        assert l.loop.name == "f"


class TestLiftedSemantics:
    def test_lifted_loop_runs(self):
        l = lift_source("""
i = 1
while i <= n:
    A[i] = A[i] * 2
    i = i + 1
""")
        st = Store({"A": np.arange(12, dtype=np.int64), "n": 10, "i": 0})
        SequentialInterp(l.loop, FunctionTable()).run(st)
        assert st["A"][10] == 20

    def test_lifted_loop_parallelizes(self, machine8):
        from repro import parallelize
        l = lift_source("""
i = 1
while i <= n:
    A[i] = A[i] + 100
    i = i + 1
""")
        st = Store({"A": np.arange(60, dtype=np.int64), "n": 58, "i": 0})
        out = parallelize(l.loop, st, machine8)
        assert out.verified
        assert out.plan.scheme == "induction-2"


class TestRejections:
    def rejects(self, src):
        with pytest.raises(FrontendError):
            lift_source(src)

    def test_no_while(self):
        self.rejects("x = 1\n")

    def test_two_whiles(self):
        self.rejects("""
while a < 1:
    a += 1
while b < 1:
    b += 1
""")

    def test_statement_after_loop(self):
        self.rejects("""
while a < 1:
    a += 1
b = 2
""")

    def test_unsupported_statement(self):
        self.rejects("""
while i < n:
    with open('x'):
        pass
""")

    def test_unsupported_call_style(self):
        self.rejects("""
while i < n:
    obj.method(i)
    i += 1
""")

    def test_while_else(self):
        self.rejects("""
while i < n:
    i += 1
else:
    pass
""")

    def test_error_mentions_line(self):
        try:
            lift_source("""
while i < n:
    import os
""", filename="snippet.py")
        except FrontendError as e:
            assert "snippet.py" in str(e)
        else:
            pytest.fail("expected FrontendError")
