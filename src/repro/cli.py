"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``analyze FILE``
    Lift the (single) Python ``while`` loop in FILE and print the full
    static analysis: dispatcher classification, RI/RV terminator, the
    Table-1 taxonomy cell, dependence verdict, privatization statuses,
    and the scheme the planner would choose.

``lift FILE [--scheme S] [--backend B] [--json]``
    Lift FILE through the Python-source frontend (the ``@parallelize``
    path) and print the IR, the discovered symbol roles (arrays,
    lists, scalars, ``len()`` bounds, the returned result), the
    Table-1 taxonomy cell, and the scheme the planner would choose —
    optionally pinned with ``--scheme`` as the decorator would.

``run FILE [--backend sim|threads|procs] [--workers N]``
    Actually execute the file's ``while`` loop: statements before the
    loop build the initial store, then the loop is planned and run on
    the chosen backend (virtual machine by default; ``procs`` for real
    GIL-free parallelism) and verified against a sequential reference.
    ``--resilience`` runs real backends under the fault-tolerant
    supervisor; ``--inject-fault SPEC`` scripts a fault (syntax:
    ``kind:worker=1,iter=9`` — see :mod:`repro.runtime.faults`) and
    implies supervision.  ``--strict-exceptions`` audits exception
    equivalence (a contained iteration fault must reproduce under
    sequential replay); ``--no-partial-restart`` disables salvaging
    the committed prefix on genuine faults.

``chaos [--workers N] [--mode procs|threads] [--out FILE]``
    Run the seeded fault-injection recovery matrix over the Table-1
    zoo: every (scheme, fault kind) cell must end in a final store
    identical to the sequential reference, whatever rung of the
    degradation ladder it recovered on.  Non-zero exit when any cell
    fails — the CI chaos job gates on this.

``bench [--compare-backends] [--workers N] [--n N] [--work W]``
    Wall-clock the real backends against a sequential run on the
    DOALL benchmark loop and print the measured-vs-predicted speedup
    table (``--out FILE`` also writes it to a file for CI artifacts).

``taxonomy``
    Print the paper's Table 1 with the zoo confirmation per cell.

``workload NAME [--procs P]``
    Run one of the Section-9 workload analogs and print its
    paper-vs-measured speedups (names: spice, track,
    mcsparse:<input>, ma28:<input>:<270|320>).

``report``
    Regenerate the full EXPERIMENTS.md content on stdout (slow), or
    with ``--calibration`` print the cost-model predicted-vs-measured
    error table for a set of workloads.

``trace WORKLOAD``
    Run a workload with the tracer attached and write the observability
    artifacts: a JSON-lines event/span/metrics file and a
    Chrome/Perfetto ``trace_event`` file loadable in
    ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_loop
    from repro.frontend import lift_source
    from repro.ir import FunctionTable, format_loop
    from repro.planner import plan_loop
    from repro.runtime import Machine

    with open(args.file, "r", encoding="utf-8") as fh:
        source = fh.read()
    lifted = lift_source(source, filename=args.file)
    info = analyze_loop(lifted.loop)
    plan = plan_loop(info, Machine(args.procs), FunctionTable())

    disp = info.dispatcher
    payload = {
        "loop": lifted.loop.name,
        "arrays": list(lifted.arrays),
        "lists": list(lifted.lists),
        "intrinsics": list(lifted.intrinsics),
        "dispatcher": None if disp is None else {
            "var": disp.var,
            "kind": disp.kind.value,
            "step": disp.step,
            "monotonic": disp.monotonic,
        },
        "terminator": {
            "class": info.terminator.klass.value,
            "exit_sites": info.terminator.n_exit_sites,
            "clean_exit": info.terminator.clean_exit,
            "rv_reasons": list(info.terminator.rv_reasons),
        },
        "taxonomy": {
            "dispatcher": info.taxonomy.dispatcher.value,
            "overshoot": info.taxonomy.overshoot,
            "parallel": info.taxonomy.parallel.value,
        },
        "dependence": info.dependence.verdict.value,
        "privatization": {
            name: status.value
            for name, status in info.privatization.arrays.items()
        },
        "plan": plan.scheme,
        "rationale": plan.rationale,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(format_loop(info.loop))
    print()
    d = payload["dispatcher"]
    disp_text = "none" if d is None else f"{d['var']} ({d['kind']})"
    print(f"dispatcher:   {disp_text}")
    print(f"terminator:   {payload['terminator']['class']} "
          f"({payload['terminator']['exit_sites']} exit sites, "
          f"clean_exit={payload['terminator']['clean_exit']})")
    print(f"taxonomy:     {payload['taxonomy']['dispatcher']} -> "
          f"overshoot={payload['taxonomy']['overshoot']}, "
          f"dispatcher-parallel={payload['taxonomy']['parallel']}")
    print(f"dependence:   {payload['dependence']}")
    if payload["privatization"]:
        print(f"privatization: {payload['privatization']}")
    print(f"plan:         {payload['plan']}")
    print(f"rationale:    {payload['rationale']}")
    return 0


def _cmd_lift(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_loop
    from repro.errors import FrontendError
    from repro.frontend import lift_source
    from repro.ir import FunctionTable, format_loop
    from repro.planner import plan_loop
    from repro.runtime import Machine

    with open(args.file, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        lifted = lift_source(source, filename=args.file)
    except FrontendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    info = analyze_loop(lifted.loop)
    plan = plan_loop(info, Machine(args.procs), FunctionTable(),
                     force_scheme=args.scheme, backend=args.backend)

    payload = {
        "loop": lifted.loop.name,
        "arrays": list(lifted.arrays),
        "lists": list(lifted.lists),
        "scalars": list(lifted.scalars),
        "intrinsics": list(lifted.intrinsics),
        "lengths": list(lifted.lengths),
        "result": lifted.result,
        "ir": format_loop(lifted.loop),
        "taxonomy": {
            "dispatcher": info.taxonomy.dispatcher.value,
            "terminator": info.terminator.klass.value,
            "overshoot": info.taxonomy.overshoot,
            "parallel": info.taxonomy.parallel.value,
        },
        "scheme": plan.scheme,
        "rationale": plan.rationale,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(format_loop(lifted.loop))
    print()
    print(f"arrays:       {', '.join(lifted.arrays) or '(none)'}")
    if lifted.lists:
        print(f"lists:        {', '.join(lifted.lists)}")
    print(f"scalars:      {', '.join(lifted.scalars) or '(none)'}")
    if lifted.intrinsics:
        print(f"intrinsics:   {', '.join(lifted.intrinsics)}")
    if lifted.lengths:
        print(f"len() bounds: {', '.join(lifted.lengths)}")
    if lifted.result:
        print(f"result:       {lifted.result}")
    print(f"taxonomy:     {payload['taxonomy']['dispatcher']} / "
          f"{payload['taxonomy']['terminator']} -> "
          f"dispatcher-parallel={payload['taxonomy']['parallel']}")
    print(f"scheme:       {plan.scheme}")
    print(f"rationale:    {plan.rationale}")
    return 0


def _build_store_from_source(source: str, filename: str, lifted):
    """Execute the statements *before* the while loop to build a Store.

    ``repro run`` convention: the file is plain Python — setup
    assignments (NumPy available as ``np``/``numpy``), then one
    top-level ``while`` loop.  Everything before the loop runs
    normally; names the loop references become the initial store, and
    plain functions named like called intrinsics are registered
    (pure, unit cost) in the function table.
    """
    import ast

    import numpy as np

    from repro.errors import FrontendError
    from repro.ir import FunctionTable
    from repro.ir.store import Store
    from repro.structures import LinkedList

    tree = ast.parse(source, filename=filename)
    split = next((idx for idx, node in enumerate(tree.body)
                  if isinstance(node, ast.While)), None)
    if split is None:
        raise FrontendError(f"{filename}: no top-level while loop found")
    ns = {"np": np, "numpy": np}
    prologue = ast.Module(body=tree.body[:split], type_ignores=[])
    exec(compile(prologue, filename, "exec"), ns)  # noqa: S102

    store = Store()
    missing = []
    for name in (*lifted.arrays, *lifted.lists, *lifted.scalars):
        if name in ns:
            store[name] = ns[name]
        elif name.endswith("__len") and name[:-len("__len")] in ns:
            # frontend convention for `len(A)` bounds
            store[name] = int(len(ns[name[:-len("__len")]]))
        elif name.endswith("__head") and name[:-len("__head")] in ns:
            # frontend convention for `lst.head`
            store[name] = int(ns[name[:-len("__head")]].head)
        elif name in lifted.scalars:
            store[name] = 0  # loop-created scalar (e.g. the dispatcher)
        else:
            missing.append(name)
    if missing:
        raise FrontendError(
            f"loop references {missing} but the statements before the "
            f"while loop never defined them")
    funcs = FunctionTable()
    for name in lifted.intrinsics:
        impl = ns.get(name)
        if not callable(impl):
            raise FrontendError(
                f"loop calls {name}() but no function of that name is "
                f"defined before the loop")
        funcs.register(name, lambda ctx, *a, _f=impl: _f(*a),
                       cost=1, pure=True)
    _ = LinkedList  # stores may hold lists built by the prologue
    return store, funcs


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import parallelize
    from repro.frontend import lift_source
    from repro.runtime import Machine

    import ast

    with open(args.file, "r", encoding="utf-8") as fh:
        source = fh.read()
    # Lift only the while statement itself; everything before it is
    # ordinary Python that builds the initial state.
    tree = ast.parse(source, filename=args.file)
    loop_node = next((n for n in tree.body
                      if isinstance(n, ast.While)), None)
    if loop_node is None:
        print(f"error: {args.file}: no top-level while loop found",
              file=sys.stderr)
        return 2
    lines = source.splitlines()
    loop_src = "\n".join(lines[loop_node.lineno - 1:
                               loop_node.end_lineno])
    lifted = lift_source(loop_src, filename=args.file)
    store, funcs = _build_store_from_source(source, args.file, lifted)

    fault_plan = None
    if args.inject_fault:
        from repro.errors import PlanError
        from repro.runtime.faults import FaultPlan, parse_fault_spec
        if args.backend == "sim":
            print("error: --inject-fault needs a real backend "
                  "(--backend threads|procs)", file=sys.stderr)
            return 2
        try:
            fault_plan = FaultPlan(specs=tuple(
                parse_fault_spec(s) for s in args.inject_fault))
        except PlanError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    from repro.errors import ExceptionDivergence
    try:
        outcome = parallelize(
            lifted.loop, store, Machine(args.procs), funcs,
            backend=args.backend, workers=args.workers,
            min_speedup=args.min_speedup,
            resilience=args.resilience or None, fault_plan=fault_plan,
            strict_exceptions=args.strict_exceptions,
            partial_restart=not args.no_partial_restart,
            kernels=args.kernels)
    except ExceptionDivergence as exc:
        # The strict audit's verdict, not a program exception: report
        # it as a diagnostic (program exceptions still raise as-is —
        # the honest surface for them).
        print(f"error: exception divergence: {exc}", file=sys.stderr)
        return 2
    res = outcome.result
    unit = "cycles" if args.backend == "sim" else "ns (wall)"
    payload = {
        "loop": lifted.loop.name,
        "backend": args.backend,
        "plan": outcome.plan.scheme,
        "scheme": res.scheme,
        "n_iters": res.n_iters,
        "t_seq": outcome.t_seq,
        "t_par": res.t_par,
        "unit": unit,
        "speedup": outcome.speedup,
        "verified": outcome.verified,
        "wall_s": res.wall_s,
        "final_scalars": {k: store[k] if isinstance(store[k], (int, bool))
                          else float(store[k])
                          for k in store.scalars()},
    }
    resilience = res.stats.get("resilience")
    if resilience is not None:
        payload["resilience"] = resilience
    spec = res.stats.get("spec")
    if spec and (spec.get("spurious_exceptions")
                 or spec.get("salvaged_iters")
                 or spec.get("partial_restarts")):
        payload["spec"] = {k: spec[k] for k in
                           ("spurious_exceptions", "salvaged_iters",
                            "partial_restarts") if k in spec}
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"loop:     {payload['loop']}")
    print(f"backend:  {args.backend}")
    print(f"plan:     {payload['plan']}  ->  ran {payload['scheme']}")
    print(f"iters:    {payload['n_iters']}")
    print(f"time:     t_seq={payload['t_seq']} t_par={payload['t_par']} "
          f"[{unit}]")
    print(f"speedup:  {payload['speedup']:.2f}x   "
          f"verified: {payload['verified']}")
    if resilience is not None:
        kinds = [f["kind"] for f in resilience["faults"]]
        print(f"resilience: rung={resilience['rung']} "
              f"mode={resilience['mode']} "
              f"attempts={resilience['attempts']} "
              f"faults={kinds or 'none'}")
    if "spec" in payload:
        sp = payload["spec"]
        print(f"speculation: spurious_exceptions="
              f"{sp.get('spurious_exceptions', 0)} "
              f"salvaged_iters={sp.get('salvaged_iters', 0)} "
              f"partial_restarts={sp.get('partial_restarts', 0)}")
    if payload["final_scalars"]:
        print(f"scalars:  {payload['final_scalars']}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.kill_pool:
        from repro.service.chaos import kill_pool_chaos
        report = kill_pool_chaos(workers=args.workers)
    elif args.pool:
        from repro.service.chaos import (POOL_CHAOS_FAULTS,
                                         pool_chaos_matrix)
        kinds = tuple(args.kinds) if args.kinds else POOL_CHAOS_FAULTS
        report = pool_chaos_matrix(workers=args.workers, kinds=kinds,
                                   deadline_s=args.deadline)
    else:
        from repro.runtime.supervisor import CHAOS_FAULTS, chaos_matrix
        kinds = tuple(args.kinds) if args.kinds else CHAOS_FAULTS
        report = chaos_matrix(mode=args.mode, workers=args.workers,
                              kinds=kinds, deadline_s=args.deadline)
    text = report.render()
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\nwrote report to {args.out}")
    return 0 if report.all_recovered else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent worker-pool service in the foreground.

    Starts the pool, optionally drives a self-test stream of zoo jobs
    through it (the default — a serve invocation should prove the
    service works), and exits with the health report.  ``--forever``
    parks the pool after the stream and serves until SIGTERM/SIGINT,
    which triggers a graceful drain.
    """
    import time as _time

    from repro.analysis.loopinfo import analyze_loop
    from repro.ir.interp import SequentialInterp
    from repro.runtime.costs import FREE
    from repro.service.admission import AdmissionConfig
    from repro.service.pool import PoolConfig, WorkerPool
    from repro.workloads.zoo import make_zoo

    journal = None
    if args.journal:
        from repro.service.journal import JobJournal
        journal = JobJournal(args.journal)
    elif args.resume:
        print("--resume needs --journal DIR", file=sys.stderr)
        return 2

    config = PoolConfig(
        workers=args.workers,
        liveness_deadline_s=args.liveness,
        job_deadline_s=args.deadline,
        admission=AdmissionConfig(capacity=args.capacity))
    pool = WorkerPool(config, journal=journal).start()
    pool.install_signal_handlers()
    print(f"pool serving: {args.workers} workers, "
          f"admission capacity {args.capacity}, "
          f"liveness deadline {args.liveness:.1f}s"
          + (f", journal at {journal.path}" if journal else ""))

    rc = 0
    try:
        if args.resume:
            from repro.obs.phases import get_profiler
            from repro.service.journal import resume_jobs

            with get_profiler().phase("pool.recovered_jobs"):
                outcomes = resume_jobs(journal, pool)
            for o in outcomes:
                print(f"recovered: {o.key} [{o.scheme}] "
                      f"mode={o.mode} resumed_from={o.resumed_from} "
                      f"wall={o.wall_s:.2f}s")
            print(f"resume: {len(outcomes)} incomplete jobs replayed "
                  f"from {journal.path}")
        if args.jobs:
            zoo = {z.name: z for z in make_zoo(48)}
            cells = [("mono-induction/RI", "doall"),
                     ("general/RI", "general-3"),
                     ("general/RI", "general-2")]
            failures = 0
            t0 = _time.perf_counter()
            for i in range(args.jobs):
                name, scheme = cells[i % len(cells)]
                zl = zoo[name]
                info = analyze_loop(zl.loop, zl.funcs)
                ref = zl.make_store()
                SequentialInterp(zl.loop, zl.funcs, FREE).run(ref)
                st = zl.make_store()
                pool.submit(info, st, zl.funcs, scheme=scheme, u=96,
                            job_key=(f"selftest-{i}" if journal
                                     else None))
                if not st.equals(ref):
                    failures += 1
            wall = _time.perf_counter() - t0
            print(f"self-test: {args.jobs} jobs in {wall:.2f}s "
                  f"({wall / args.jobs * 1e3:.1f} ms/job), "
                  f"{failures} store mismatches")
            rc = 1 if failures else 0
        if args.forever:
            print("serving until SIGTERM/SIGINT ...")
            while True:
                _time.sleep(1.0)
    except SystemExit as exc:
        # install_signal_handlers: the pool already drained + closed.
        print("\nreceived shutdown signal, pool drained")
        rc = rc or (0 if exc.code in (0, 130, 143) else 1)
    finally:
        pool.close()
        if journal is not None:
            journal.close()
    health = pool.health()
    print(json.dumps(health, indent=2))
    w = health["workers"]
    if w["alive"] not in (0, w["configured"]):
        rc = rc or 1
    return rc


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import (FuzzConfig, load_corpus, load_source_corpus,
                            replay_entry, replay_source_entry,
                            run_campaign, run_frontend_campaign)

    if args.replay is not None:
        if args.frontend:
            entries = load_source_corpus(args.replay)
            replay = replay_source_entry
        else:
            entries = load_corpus(args.replay)
            replay = replay_entry
        if not entries:
            print(f"no corpus entries under {args.replay!r}",
                  file=sys.stderr)
            return 2
        bad = 0
        for entry in entries:
            verdict = replay(entry)
            status = "ok" if verdict.ok else "FAIL"
            print(f"{status}  {entry.name}  [{entry.cell}]  "
                  f"{entry.note or '(no note)'}")
            for d in verdict.discrepancies:
                print(f"      {d.kind} [{d.backend}/{d.scheme}]: "
                      f"{d.detail}")
            bad += 0 if verdict.ok else 1
        print(f"replayed {len(entries)} entries, {bad} failing")
        return 1 if bad else 0

    config = FuzzConfig(
        budget=args.budget,
        seed=args.seed,
        backends=tuple(args.backends),
        workers=args.workers,
        faults=args.faults,
        resilience=not args.no_resilience,
        shrink=not args.no_shrink,
        max_real=args.max_real,
        corpus_dir=args.corpus,
        artifacts_dir=args.artifacts,
        kernels=not args.no_kernels,
    )
    campaign = run_frontend_campaign if args.frontend else run_campaign
    report = campaign(config, log=print)
    print(report.summary())
    return 0 if report.ok else 1


def _emit_bench(args: argparse.Namespace, text: str, payload) -> None:
    """Print a bench report and honor ``--out`` / ``--format json``."""
    import json as _json

    body = (_json.dumps(payload, indent=2, sort_keys=True)
            if args.format == "json" else text)
    print(text if args.format == "text" else body)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(body + "\n")
        print(f"\nwrote {args.format} report to {args.out}")


def _bench_step_summary(comp, extra_lines=()) -> None:
    """Append the --against verdict table to ``$GITHUB_STEP_SUMMARY``.

    CI treats machine-relative bench comparisons as advisory (runner
    wall time is too noisy to gate a merge on), so the exit code is
    swallowed there — this makes the verdict visible in the job
    summary instead of buried in the log.  A no-op outside Actions.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        f"### bench vs BENCH_{comp.baseline_pr} "
        f"({'ok' if comp.ok else 'REGRESSED'}, "
        f"tolerance {comp.tolerance:.0%})",
        "",
        "| loop | scheme | backend | old | new | ratio | verdict |",
        "| --- | --- | --- | ---: | ---: | ---: | --- |",
    ]
    for r in comp.rows:
        old = f"{r.old_speedup:.3f}" if r.old_speedup else "-"
        new = f"{r.new_speedup:.3f}" if r.new_speedup else "-"
        ratio = f"{r.ratio:.3f}" if r.ratio else "-"
        mark = {"regression": "❌ regression", "missing": "❌ missing",
                "improvement": "✅ improvement"}.get(r.verdict, r.verdict)
        lines.append(f"| {r.loop} | {r.scheme} | {r.backend} | "
                     f"{old} | {new} | {ratio} | {mark} |")
    for extra in extra_lines:
        lines.extend(["", extra])
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n\n")
    except OSError:
        pass


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import compare_backends
    from repro.obs.bench import (
        BenchSnapshot,
        compare_snapshots,
        measure_bench,
        pool_amortization,
        record_bench,
        render_pool_amortization,
        render_snapshot,
    )

    if args.trace:
        from repro.obs import PerfettoSink, tracing
        perfetto = PerfettoSink(args.trace)
        with tracing(perfetto):
            args.trace = None
            rc = _cmd_bench(args)
        perfetto.write(nprocs=args.workers)
        print(f"wrote {len(perfetto.trace_events)} trace events to "
              f"{perfetto.path} (chrome://tracing / ui.perfetto.dev)")
        return rc

    if args.record:
        snap, path = record_bench(
            pr=args.pr, n=args.n or 64, work=args.work or 20_000,
            workers=args.workers, backends=tuple(args.backends),
            schemes=args.schemes, repeats=args.repeats,
            kernels=not args.no_kernels, pool=not args.no_pool)
        _emit_bench(args, render_snapshot(snap), snap.to_payload())
        verdict = pool_amortization(snap.runs)
        if verdict is not None:
            print(render_pool_amortization(verdict))
        print(f"\nwrote snapshot to {path}")
        return 1 if any(not r.correct for r in snap.runs) else 0

    if args.against:
        baseline = BenchSnapshot.load(args.against)
        ref = baseline.runs[0]
        runs = measure_bench(
            n=args.n or ref.n or 64,
            work=args.work or ref.work or 20_000,
            workers=args.workers, backends=tuple(args.backends),
            schemes=args.schemes, repeats=args.repeats,
            kernels=not args.no_kernels, pool=not args.no_pool)
        comp = compare_snapshots(baseline, runs,
                                 tolerance=args.tolerance)
        payload = {
            "baseline_pr": comp.baseline_pr,
            "tolerance": comp.tolerance,
            "ok": comp.ok,
            "rows": [vars(r) for r in comp.rows],
        }
        verdict = pool_amortization(runs)
        extra = ()
        if verdict is not None:
            payload["pool_amortization"] = verdict
            extra = (render_pool_amortization(verdict),)
        _emit_bench(args, comp.render(), payload)
        if extra:
            print(extra[0])
        _bench_step_summary(comp, extra_lines=extra)
        return 0 if comp.ok else 1

    report = compare_backends(
        workers=args.workers, backends=tuple(args.backends),
        n=args.n or 256, work=args.work or 100_000)
    _emit_bench(args, report.render(), report.to_payload())
    bad = [r for r in report.rows if not r.store_ok]
    return 1 if bad else 0


def _cmd_taxonomy(args: argparse.Namespace) -> int:
    from repro.experiments import table_1
    print(f"{'cell':42s} {'overshoot':9s} {'parallel':8s} "
          f"{'zoo loop':24s} ok")
    for r in table_1():
        print(f"{r.cell:42s} {'YES' if r.overshoot else 'NO':9s} "
              f"{r.parallel:8s} {r.zoo_loop:24s} "
              f"{r.classified_correctly}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.runtime import Machine
    from repro.workloads import measure_speedup, workload_from_spec

    try:
        w = workload_from_spec(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    machine = Machine(args.procs)
    print(f"{w.name}: {w.description}\n")
    for method in w.methods:
        sp, res, ok = measure_speedup(w, method, machine)
        paper = w.paper_speedups.get(method.label)
        note = f" (paper@8p: {paper})" if paper else ""
        print(f"  {method.label:30s} speedup={sp:5.2f}x{note} "
              f"store_ok={ok}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.calibration:
        from repro.obs import run_calibration
        try:
            report = run_calibration(args.workloads or None,
                                     procs=args.procs)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(report.render())
        return 0
    from repro.experiments import render_report
    print(render_report())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from repro.obs import JsonlSink, MultiSink, PerfettoSink, tracing
    from repro.runtime import Machine
    from repro.workloads import measure_speedup, workload_from_spec

    try:
        w = workload_from_spec(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.method is not None:
        try:
            methods = [w.method(args.method)]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    elif args.all_methods:
        methods = list(w.methods)
    else:
        methods = [w.methods[0]]

    os.makedirs(args.out, exist_ok=True)
    base = os.path.join(args.out, w.name)
    jsonl_path = base + ".trace.jsonl"
    perfetto_path = base + ".perfetto.json"

    machine = Machine(args.procs)
    jsonl = JsonlSink(jsonl_path)
    perfetto = PerfettoSink(perfetto_path)
    print(f"{w.name}: {w.description}")
    print(f"tracing {len(methods)} method(s) on {args.procs} "
          f"processors\n")
    with tracing(MultiSink(jsonl, perfetto)) as trc:
        for m in methods:
            sp, res, ok = measure_speedup(w, m, machine)
            print(f"  {m.label:30s} speedup={sp:5.2f}x "
                  f"t_par={res.t_par} store_ok={ok}")
    jsonl.write_record({"kind": "metrics",
                        "metrics": trc.metrics.snapshot()})
    jsonl.close()
    perfetto.write(nprocs=args.procs)

    print(f"\nwrote {jsonl.n_records} records to {jsonl_path}")
    print(f"wrote {len(perfetto.trace_events)} trace events to "
          f"{perfetto_path}")
    print("open the .perfetto.json file in chrome://tracing or "
          "https://ui.perfetto.dev")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallelizing WHILE Loops — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_an = sub.add_parser("analyze", help="analyze a Python while loop")
    p_an.add_argument("file")
    p_an.add_argument("--procs", type=int, default=8)
    p_an.add_argument("--json", action="store_true")
    p_an.set_defaults(fn=_cmd_analyze)

    p_lf = sub.add_parser(
        "lift", help="lift a Python while loop and print the IR, "
        "symbol roles, taxonomy cell, and chosen scheme")
    p_lf.add_argument("file")
    p_lf.add_argument("--procs", type=int, default=8,
                      help="virtual processors for the planner's "
                      "cost model")
    p_lf.add_argument("--scheme", default=None,
                      help="pin the scheme instead of letting the "
                      "planner choose (as @parallelize(scheme=...))")
    p_lf.add_argument("--backend",
                      choices=("sim", "threads", "procs", "pool"),
                      default="sim",
                      help="backend the plan would execute on "
                      "(affects DOACROSS demotion)")
    p_lf.add_argument("--json", action="store_true")
    p_lf.set_defaults(fn=_cmd_lift)

    p_rn = sub.add_parser(
        "run", help="plan and execute a Python while loop on a backend")
    p_rn.add_argument("file")
    p_rn.add_argument("--backend",
                      choices=("sim", "threads", "procs", "pool"),
                      default="sim",
                      help="execution backend (default: sim, the "
                      "virtual-time machine)")
    p_rn.add_argument("--workers", type=int, default=None,
                      help="real-backend worker count "
                      "(default: --procs)")
    p_rn.add_argument("--procs", type=int, default=8,
                      help="virtual processors for the planner's "
                      "cost model")
    p_rn.add_argument("--min-speedup", type=float, default=1.2)
    p_rn.add_argument("--resilience", action="store_true",
                      help="real backends: run under the fault-"
                      "tolerant supervisor (degradation ladder)")
    p_rn.add_argument("--inject-fault", action="append", metavar="SPEC",
                      default=None,
                      help="inject a scripted fault (repeatable); "
                      "syntax kind[:key=value,...], e.g. "
                      "crash:worker=1,iter=9 or "
                      "raise-at-iter:worker=-1,iter=7 — implies "
                      "--resilience")
    p_rn.add_argument("--strict-exceptions", action="store_true",
                      help="real backends: raise ExceptionDivergence "
                      "when a contained iteration fault does not "
                      "reproduce under sequential replay")
    p_rn.add_argument("--no-partial-restart", action="store_true",
                      help="real backends: disable committed-prefix "
                      "salvage; genuine faults re-execute the whole "
                      "loop sequentially (the classic full restart)")
    p_rn.add_argument("--kernels", choices=("auto", "off", "force"),
                      default="auto",
                      help="vectorized kernel tier on real backends: "
                      "auto (default) tries the NumPy batch kernel "
                      "and falls back to the interpreted executors, "
                      "off disables it, force errors on any fallback")
    p_rn.add_argument("--json", action="store_true")
    p_rn.set_defaults(fn=_cmd_run)

    p_bn = sub.add_parser(
        "bench", help="wall-clock the real backends vs sequential")
    p_bn.add_argument("--compare-backends", action="store_true",
                      help="compare sim-predicted vs measured speedup "
                      "across backends (the default and only mode)")
    p_bn.add_argument("--workers", type=int, default=2)
    p_bn.add_argument("--backends", nargs="*",
                      default=["threads", "procs"],
                      choices=("threads", "procs"))
    p_bn.add_argument("--n", type=int, default=None,
                      help="benchmark loop iteration count "
                      "(default: 256; 64 with --record/--against)")
    p_bn.add_argument("--work", type=int, default=None,
                      help="floating-point ops per iteration "
                      "(default: 100000; 20000 with "
                      "--record/--against)")
    p_bn.add_argument("--out", default=None,
                      help="also write the report to this file")
    p_bn.add_argument("--format", choices=("text", "json"),
                      default="text",
                      help="report format for stdout/--out")
    p_bn.add_argument("--record", action="store_true",
                      help="measure every scheme x backend cell and "
                      "write a versioned BENCH_<pr>.json snapshot")
    p_bn.add_argument("--pr", type=int, default=None,
                      help="PR number for the snapshot filename "
                      "(default: derived from CHANGES.md)")
    p_bn.add_argument("--against", default=None, metavar="SNAPSHOT",
                      help="re-measure and report regressions vs a "
                      "committed BENCH_<pr>.json")
    p_bn.add_argument("--tolerance", type=float, default=0.25,
                      help="relative speedup-ratio tolerance for "
                      "--against (default: 0.25)")
    p_bn.add_argument("--trace", default=None, metavar="PATH",
                      help="also write a Chrome/Perfetto trace of the "
                      "bench runs (parent + worker phase spans)")
    p_bn.add_argument("--repeats", type=int, default=3,
                      help="repeats per cell, best-of kept "
                      "(--record/--against; default: 3)")
    p_bn.add_argument("--schemes", nargs="*", default=None,
                      choices=("doall", "general-2", "general-3",
                               "speculative"),
                      help="schemes to measure with "
                      "--record/--against (default: all four)")
    p_bn.add_argument("--no-kernels", action="store_true",
                      help="skip the vectorized kernel-tier rows in "
                      "--record/--against measurements")
    p_bn.add_argument("--no-pool", action="store_true",
                      help="skip the warm-pool amortization row in "
                      "--record/--against measurements")
    p_bn.set_defaults(fn=_cmd_bench)

    p_ch = sub.add_parser(
        "chaos", help="run the seeded fault-injection recovery matrix")
    p_ch.add_argument("--workers", type=int, default=2)
    p_ch.add_argument("--mode", choices=("procs", "threads"),
                      default="procs")
    p_ch.add_argument("--kinds", nargs="*", metavar="KIND",
                      help="fault kinds to inject (default: all)")
    p_ch.add_argument("--deadline", type=float, default=5.0,
                      help="per-attempt hang-detection deadline, "
                      "seconds (default: 5.0)")
    p_ch.add_argument("--out", default=None,
                      help="also write the report to this file")
    p_ch.add_argument("--pool", action="store_true",
                      help="run the matrix against the persistent "
                      "worker pool (kinds: crash, hang, lease-expiry) "
                      "instead of the per-call backend")
    p_ch.add_argument("--kill-pool", action="store_true",
                      help="SIGKILL an entire journaled pool mid-strip "
                      "with >=4 in-flight jobs, then prove --resume "
                      "recovers every one bit-identically (implies "
                      "--pool)")
    p_ch.set_defaults(fn=_cmd_chaos)

    p_sv = sub.add_parser(
        "serve", help="run the persistent worker-pool service "
        "(self-test job stream, then optional foreground serving)")
    p_sv.add_argument("--workers", type=int, default=2,
                      help="pre-forked pool workers (default: 2)")
    p_sv.add_argument("--capacity", type=int, default=8,
                      help="admission queue capacity (default: 8)")
    p_sv.add_argument("--liveness", type=float, default=5.0,
                      help="worker heartbeat liveness deadline, "
                      "seconds (default: 5.0)")
    p_sv.add_argument("--deadline", type=float, default=60.0,
                      help="per-job wall deadline, seconds "
                      "(default: 60)")
    p_sv.add_argument("--jobs", type=int, default=12,
                      help="self-test jobs to stream through the pool "
                      "before serving (default: 12; 0 skips)")
    p_sv.add_argument("--forever", action="store_true",
                      help="keep serving after the self-test until "
                      "SIGTERM/SIGINT (graceful drain)")
    p_sv.add_argument("--journal", default=None, metavar="DIR",
                      help="write-ahead job journal directory "
                      "(durability: admitted/checkpoint/terminal "
                      "records per job)")
    p_sv.add_argument("--resume", action="store_true",
                      help="replay incomplete journaled jobs from "
                      "their last committed checkpoint before "
                      "serving (requires --journal)")
    p_sv.set_defaults(fn=_cmd_serve)

    p_fz = sub.add_parser(
        "fuzz", help="run a differential fuzz campaign (random "
        "WHILE-loop programs vs. the scheme × backend matrix)")
    p_fz.add_argument("--budget", type=int, default=200,
                      help="programs to generate (default: 200)")
    p_fz.add_argument("--seed", type=int, default=0,
                      help="campaign master seed (default: 0)")
    p_fz.add_argument("--backends", nargs="+", default=["sim"],
                      choices=("sim", "threads", "procs", "pool"),
                      help="backends to check (default: sim)")
    p_fz.add_argument("--workers", type=int, default=2,
                      help="real-backend worker count (default: 2)")
    p_fz.add_argument("--faults", action="store_true",
                      help="inject scripted system faults on "
                      "real-backend draws")
    p_fz.add_argument("--no-resilience", action="store_true",
                      help="run real backends unsupervised (with "
                      "--faults this manufactures fault-escape "
                      "discrepancies on purpose)")
    p_fz.add_argument("--no-shrink", action="store_true",
                      help="skip minimizing failing programs")
    p_fz.add_argument("--max-real", type=int, default=48,
                      help="max draws that run real backends "
                      "(default: 48; the rest are sim-only)")
    p_fz.add_argument("--corpus", default=None, metavar="DIR",
                      help="persist shrunk findings to this corpus "
                      "directory")
    p_fz.add_argument("--artifacts", default=None, metavar="DIR",
                      help="write standalone repro scripts here")
    p_fz.add_argument("--replay", default=None, metavar="DIR",
                      help="replay a corpus directory instead of "
                      "generating (exit 1 on any failure)")
    p_fz.add_argument("--no-kernels", action="store_true",
                      help="skip the vectorized kernel-tier "
                      "differential cell")
    p_fz.add_argument("--frontend", action="store_true",
                      help="fuzz the Python-source frontend instead: "
                      "random source in the @parallelize subset, "
                      "differentially checked against exec of the "
                      "same source (--replay then replays a pysource "
                      "corpus directory)")
    p_fz.set_defaults(fn=_cmd_fuzz)

    p_tx = sub.add_parser("taxonomy", help="print Table 1")
    p_tx.set_defaults(fn=_cmd_taxonomy)

    p_wl = sub.add_parser("workload", help="run a Section-9 workload")
    p_wl.add_argument("name")
    p_wl.add_argument("--procs", type=int, default=8)
    p_wl.set_defaults(fn=_cmd_workload)

    p_rp = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md, or print the "
        "cost-model calibration table")
    p_rp.add_argument("--calibration", action="store_true",
                      help="print predicted-vs-measured cost-model "
                      "error instead of the full report")
    p_rp.add_argument("--workloads", nargs="*", metavar="SPEC",
                      help="workload specs to calibrate "
                      "(default: spice track)")
    p_rp.add_argument("--procs", type=int, default=8)
    p_rp.set_defaults(fn=_cmd_report)

    p_tr = sub.add_parser(
        "trace", help="run a workload under the tracer and write "
        "JSON-lines + Perfetto artifacts")
    p_tr.add_argument("name", help="workload spec (spice, track, "
                      "mcsparse:<input>, ma28:<input>:<loop>)")
    p_tr.add_argument("--procs", type=int, default=8)
    p_tr.add_argument("--method", default=None,
                      help="trace one method by label "
                      "(default: the workload's first method)")
    p_tr.add_argument("--all", dest="all_methods", action="store_true",
                      help="trace every method of the workload")
    p_tr.add_argument("--out", default=".",
                      help="directory for the artifacts (default: .)")
    p_tr.set_defaults(fn=_cmd_trace)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
