"""Multi-sweep MCSPARSE-style factorization driver.

MCSPARSE runs Loop 500's pivot search once per elimination step.  This
driver models a (simplified) right-looking analyse phase: each sweep
searches the remaining candidates with WHILE-DOANY, eliminates the
chosen pivot, applies a Markowitz fill-in estimate to the remaining
row/column counts, and repeats.  The aggregate speedup over all sweeps
is what an adopter of the WHILE-DOANY construct would actually see.

Every sweep's loop is a fresh canonical WHILE loop, so this also
exercises the framework on a *sequence* of loop instances with
evolving data — closer to real compiler-runtime usage than a single
loop in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.executors.doany import run_while_doany
from repro.executors.sequential import run_sequential
from repro.ir.functions import FunctionTable
from repro.ir.nodes import (
    Assign,
    Call,
    Const,
    Exit,
    If,
    Var,
    WhileLoop,
    gt_,
    le_,
)
from repro.ir.store import Store
from repro.runtime.machine import Machine
from repro.structures.sparse import HB_PROFILES, generate_hb_like

__all__ = ["FactorizationResult", "run_factorization"]


@dataclass
class FactorizationResult:
    """Aggregate outcome of the multi-sweep pivot-search phase."""

    pivots: List[int] = field(default_factory=list)
    t_seq: int = 0
    t_par: int = 0
    candidates_searched: int = 0

    @property
    def speedup(self) -> float:
        """Aggregate speedup across all sweeps."""
        return self.t_seq / self.t_par if self.t_par else 0.0


def _sweep_loop(sweep_no: int) -> WhileLoop:
    return WhileLoop(
        init=[Assign("k", Const(1)), Assign("pivot", Const(-1))],
        cond=le_(Var("k"), Var("nleft")),
        body=[
            Assign("cand", Call("cand_at", [Var("k")])),
            If(gt_(Call("acceptable", [Var("cand")]), 0),
               [Assign("pivot", Var("cand")), Exit()]),
            Assign("k", Var("k") + 1),
        ],
        name=f"mcsparse-sweep-{sweep_no}",
    )


def run_factorization(
    input_name: str = "orsreg1",
    *,
    n_sweeps: int = 12,
    machine: Optional[Machine] = None,
    scale: float = 0.06,
    probe_cost: int = 45,
    seed: int = 77,
) -> FactorizationResult:
    """Run ``n_sweeps`` elimination steps of the analyse phase.

    Each sweep: WHILE-DOANY search over the live candidates (both
    timed parallel and timed sequential for the aggregate speedup),
    pivot elimination, and a Markowitz fill-in update of the counts.
    """
    machine = machine or Machine(8)
    rng = np.random.default_rng(seed)
    matrix = generate_hb_like(HB_PROFILES[input_name], scale=scale,
                              rng=rng)
    n = matrix.n
    rownnz = matrix.row_nnz.astype(np.int64).copy()
    colnnz = matrix.col_nnz.astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)

    result = FactorizationResult()
    for sweep in range(n_sweeps):
        live = np.flatnonzero(alive)
        if live.size == 0:
            break
        order = rng.permutation(live).astype(np.int64)
        costs_live = ((rownnz[live] - 1).clip(min=0)
                      * (colnnz[live] - 1).clip(min=0))
        # Demand a near-optimal pivot: only ~2% of candidates qualify,
        # so each sweep searches a meaningful fraction of the matrix
        # (the paper's "available parallelism").
        mk_limit = max(0, int(np.quantile(costs_live, 0.02)))

        funcs = FunctionTable()
        funcs.register(
            "cand_at",
            lambda ctx, k: ctx.read("order", k - 1),
            cost=2, reads=("order",))

        def acceptable(ctx, cand: int, _lim=mk_limit):
            r = ctx.read("rownnz", cand)
            c = ctx.read("colnnz", cand)
            return 1 if max(0, (r - 1)) * max(0, (c - 1)) <= _lim else 0
        funcs.register("acceptable", acceptable, cost=probe_cost,
                       reads=("rownnz", "colnnz"))

        def mk_store() -> Store:
            return Store({
                "order": order.copy(),
                "rownnz": rownnz.copy(),
                "colnnz": colnnz.copy(),
                "nleft": int(order.size),
                "k": 0, "pivot": -1, "cand": 0,
            })

        loop = _sweep_loop(sweep)
        seq_store = mk_store()
        seq = run_sequential(loop, seq_store, machine, funcs)
        par_store = mk_store()
        par = run_while_doany(loop, par_store, machine, funcs)

        result.t_seq += seq.t_par
        result.t_par += par.t_par
        result.candidates_searched += par.n_iters

        pivot = int(par_store["pivot"])
        if pivot < 0:
            pivot = int(order[0])  # no acceptable candidate: take first
        result.pivots.append(pivot)

        # Eliminate: retire the pivot, estimate fill-in on the
        # remaining counts (Markowitz: each remaining row/col touched
        # by the pivot gains up to one entry).
        alive[pivot] = False
        touched = rng.choice(np.flatnonzero(alive),
                             size=min(int(rownnz[pivot]),
                                      int(alive.sum())),
                             replace=False) if alive.any() else []
        rownnz[touched] += 1
        colnnz[touched] += 1
    return result
