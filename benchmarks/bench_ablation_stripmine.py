"""Ablation: strip-mining and statistics-enhanced stamping (Section 8.1).

Two trade-offs the paper describes:

* strip size: smaller strips bound time-stamp memory but pay a barrier
  per strip (and lose parallelism when the strip is narrower than the
  machine);
* the statistics-enhanced threshold ``n'_i``: stamping only iterations
  above x%·n̂ᵢ cuts the during-loop (``T_d``) overhead while keeping
  the undo exact whenever the estimate was not an overestimate.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.executors import run_induction2, run_sequential
from repro.ir import (
    ArrayAssign,
    ArrayRef,
    Assign,
    Const,
    Exit,
    FunctionTable,
    If,
    Store,
    Var,
    WhileLoop,
    eq_,
    le_,
)
from repro.planner import BranchStats, stamp_threshold
from repro.runtime import Machine

FT = FunctionTable()


def rv_loop():
    return WhileLoop(
        [Assign("i", Const(1))], le_(Var("i"), Var("n")),
        [If(eq_(ArrayRef("A", Var("i")), Const(-1)), [Exit()]),
         ArrayAssign("A", Var("i"), Var("i") * 3),
         Assign("i", Var("i") + 1)],
        name="strip-rv")


def rv_store(n=600, exit_at=450):
    A = np.zeros(n + 2, dtype=np.int64)
    A[exit_at] = -1
    return Store({"A": A, "n": n, "i": 0})


def test_strip_size_tradeoff(benchmark):
    m = Machine(8)

    def sweep():
        seq_t = run_sequential(rv_loop(), rv_store(), m, FT).t_par
        rows = []
        for strip in (4, 16, 64, 256, None):
            st = rv_store()
            res = run_induction2(rv_loop(), st, m, FT, strip=strip)
            rows.append((strip, res.speedup(seq_t), res.t_par))
        return rows

    rows = run_once(benchmark, sweep)
    print("\nStrip-size sweep (RV loop, exit at 450/600):")
    for strip, sp, t in rows:
        print(f"  strip={str(strip):>5s}: speedup={sp:.2f} t_par={t}")
    by = {strip: sp for strip, sp, _ in rows}
    benchmark.extra_info["speedups"] = {str(k): round(v, 2)
                                        for k, v in by.items()}
    # Tiny strips pay barriers; big strips approach the no-strip run.
    assert by[4] < by[256]
    assert by[256] <= by[None] * 1.05


def test_statistics_enhanced_stamping(benchmark):
    """Stamping only past n'_i cuts stamped words; the undo remains
    exact when the exit lands at/after the estimate."""
    m = Machine(8)

    def run_case():
        # Branch statistics from prior executions: ~450 iterations.
        bs = BranchStats("strip-rv")
        for sample in (440, 455, 448, 452):
            bs.record(sample)
        thr = stamp_threshold(bs.estimate())

        ref = rv_store()
        from repro.ir import SequentialInterp
        SequentialInterp(rv_loop(), FT).run(ref)

        st_full = rv_store()
        full = run_induction2(rv_loop(), st_full, m, FT)
        st_stat = rv_store()
        stat = run_induction2(rv_loop(), st_stat, m, FT,
                              stamp_from=thr)
        return thr, full, stat, st_full.equals(ref), st_stat.equals(ref)

    thr, full, stat, ok_full, ok_stat = run_once(benchmark, run_case)
    print(f"\nStatistics-enhanced stamping: n'_i = {thr}")
    print(f"  full stamping: stamped_writes={full.stats['stamped_writes']}"
          f" t_par={full.t_par} correct={ok_full}")
    print(f"  stat stamping: stamped_writes={stat.stats['stamped_writes']}"
          f" t_par={stat.t_par} correct={ok_stat}")
    benchmark.extra_info["threshold"] = thr
    assert ok_full and ok_stat
    assert thr > 300  # high-confidence estimate
    assert stat.stats["stamped_writes"] < full.stats["stamped_writes"]
    assert stat.t_par <= full.t_par  # fewer stamps, less T_d
