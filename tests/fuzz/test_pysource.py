"""The frontend fuzzer: generator, exec oracle, and source shrinker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend.pyfront import lift_source
from repro.fuzz.pysource import (
    SHAPES,
    FrontendFuzzReport,
    PySourceProgram,
    StepBudgetExceeded,
    bounded_exec,
    check_source_program,
    generate_source_program,
    run_frontend_campaign,
    shrink_source,
)


class TestGenerator:
    def test_deterministic(self):
        for seed in (0, 7, 91, 1234):
            a = generate_source_program(seed)
            b = generate_source_program(seed)
            assert a.source == b.source
            assert a.store_obj == b.store_obj
            assert a.cell == b.cell
            assert a.u == b.u

    def test_all_shapes_reachable_and_liftable(self):
        seen = {}
        for seed in range(300):
            prog = generate_source_program(seed)
            seen.setdefault(prog.shape, prog)
            if len(seen) == len(SHAPES):
                break
        assert set(seen) == set(SHAPES), (
            f"shapes never drawn in 300 seeds: {set(SHAPES) - set(seen)}")
        for shape, prog in sorted(seen.items()):
            lifted = lift_source(prog.source)
            assert lifted.loop is not None, shape

    def test_generated_programs_terminate_under_exec(self):
        for seed in range(20):
            prog = generate_source_program(seed)
            ns = prog.make_namespace()
            bounded_exec(prog.source, ns)   # must not trip the budget

    def test_cell_labels_name_the_shape(self):
        prog = generate_source_program(3)
        assert prog.cell == f"pysource/{prog.shape}"


class TestBoundedExec:
    def test_budget_trips_on_nontermination(self):
        with pytest.raises(StepBudgetExceeded):
            bounded_exec("i = 0\nwhile True:\n    i = i + 1\n", {},
                         max_steps=500)

    def test_restricted_builtins(self):
        ns = {}
        bounded_exec("x = max(3, min(9, 7))\n", ns)
        assert ns["x"] == 7
        with pytest.raises(NameError):
            bounded_exec("x = open('/etc/hostname')\n", {})

    def test_namespace_is_the_result_channel(self):
        ns = {"A": np.arange(4, dtype=np.int64), "i": 0}
        bounded_exec(
            "while i < 4:\n    A[i] = A[i] * 2\n    i = i + 1\n", ns)
        assert ns["i"] == 4
        assert np.array_equal(ns["A"], np.array([0, 2, 4, 6]))


class TestOracle:
    @pytest.mark.parametrize("seed", range(30))
    def test_sim_matrix_clean(self, seed):
        prog = generate_source_program(seed)
        verdict = check_source_program(prog, backends=("sim",),
                                       workers=2, kernels=True)
        assert not verdict.discrepancies, (
            prog.shape, [(d.kind, d.backend, d.scheme, d.detail)
                         for d in verdict.discrepancies])
        assert verdict.checks >= 3   # lift + lifted-seq + >=1 scheme

    @pytest.mark.parametrize("seed", (2, 11, 23))
    def test_real_backend_cell_clean(self, seed):
        prog = generate_source_program(seed)
        verdict = check_source_program(
            prog, backends=("sim", "threads"), workers=2, kernels=False)
        assert not verdict.discrepancies, (
            prog.shape, [(d.kind, d.backend, d.scheme, d.detail)
                         for d in verdict.discrepancies])

    def test_unliftable_source_is_a_lift_finding(self):
        # A ternary is execable Python but outside the liftable subset:
        # the oracle must report a structured lift discrepancy, never
        # crash.
        prog = PySourceProgram(
            source=("i = 0\n"
                    "while i < 4:\n"
                    "    i = i + 1 if i < 9 else i\n"),
            store_obj={"i": {"k": "scalar", "value": 0}},
            cell="pysource/manufactured", shape="manufactured",
            u=8, seed=-1)
        verdict = check_source_program(prog, backends=("sim",))
        assert len(verdict.discrepancies) == 1
        d = verdict.discrepancies[0]
        assert d.backend == "frontend"
        assert d.scheme == "lift"


class TestShrink:
    def test_shrinker_deletes_unrelated_statements(self):
        # Manufactured finding: the ternary makes the lift fail; the
        # surrounding junk statements are all deletable without
        # changing the (kind, backend) signature.
        prog = PySourceProgram(
            source=("junk1 = 100\n"
                    "junk2 = junk1 + 200\n"
                    "i = 0\n"
                    "s = 0\n"
                    "while i < 6:\n"
                    "    s = s + 2\n"
                    "    i = i + 1 if i < 9 else i\n"),
            store_obj={"i": {"k": "scalar", "value": 0},
                       "s": {"k": "scalar", "value": 0}},
            cell="pysource/manufactured", shape="manufactured",
            u=12, seed=-1)
        verdict = check_source_program(prog, backends=("sim",))
        assert verdict.discrepancies
        res = shrink_source(prog, verdict, check_source_program)
        assert res.steps > 0
        assert len(res.program.source) < len(prog.source)
        assert "junk1" not in res.program.source
        assert "while" in res.program.source       # loop survives
        assert res.verdict.discrepancies           # still reproduces

    def test_shrinker_never_breaks_termination(self):
        # Every kept candidate re-validates under bounded_exec, so the
        # shrunk program still terminates.
        prog = PySourceProgram(
            source=("i = 0\n"
                    "while i < 20:\n"
                    "    i = i + 1 if i < 99 else i\n"),
            store_obj={"i": {"k": "scalar", "value": 0}},
            cell="pysource/manufactured", shape="manufactured",
            u=24, seed=-1)
        verdict = check_source_program(prog, backends=("sim",))
        assert verdict.discrepancies
        res = shrink_source(prog, verdict, check_source_program)
        bounded_exec(res.program.source, res.program.make_namespace())


class TestCampaign:
    def test_small_campaign_runs_clean(self, tmp_path):
        from repro.fuzz.campaign import FuzzConfig
        cfg = FuzzConfig(budget=12, seed=5, backends=("sim",),
                         workers=2, max_real=4,
                         corpus_dir=tmp_path / "corpus",
                         artifacts_dir=tmp_path / "repros")
        log = []
        report = run_frontend_campaign(cfg, log=log.append)
        assert isinstance(report, FrontendFuzzReport)
        assert report.programs == 12
        assert not report.findings
        assert report.checks > 12
        corpus = tmp_path / "corpus"
        assert not corpus.exists() or not list(corpus.glob("*.json"))

    def test_campaign_ignores_fault_config_with_a_note(self, tmp_path):
        from repro.fuzz.campaign import FuzzConfig
        cfg = FuzzConfig(budget=3, seed=1, backends=("sim",),
                         workers=2, max_real=2, faults=True,
                         corpus_dir=tmp_path / "corpus",
                         artifacts_dir=tmp_path / "repros")
        log = []
        run_frontend_campaign(cfg, log=log.append)
        assert any("fault" in line for line in log)
