"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures without
accidentally swallowing genuine Python bugs.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass, field


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class IRError(ReproError):
    """Malformed IR: unknown node kind, bad operand arity, type misuse."""


class FrontendError(ReproError):
    """The Python-source frontend could not lift a loop into the IR."""


class AnalysisError(ReproError):
    """A compiler analysis was asked something it cannot answer."""


class PlanError(ReproError):
    """No legal parallelization plan exists for the requested loop/strategy."""


class ExecutionError(ReproError):
    """A runtime executor detected an internal inconsistency."""


class KernelFallback(ReproError):
    """The vectorized kernel tier declined a loop (or a batch).

    Raised by :mod:`repro.kernels` either at *lowering* time (the loop
    contains a construct the tier cannot vectorize: an ``Exit`` site, a
    remainder-variant terminator, a loop-carried scalar, an opaque
    intrinsic without a ``vector_impl``) or at *execution* time when a
    dynamic pre-commit check fails (an out-of-bounds subscript, a zero
    divisor, duplicate write indices, an int64 magnitude that could
    diverge from Python's arbitrary-precision arithmetic, a failed
    vectorized PD verdict).

    The contract is that the store is **untouched** when this raises:
    every dynamic check runs before the batched writes are applied, so
    the backend dispatcher can fall through to the interpreted path and
    reproduce exact sequential semantics — including the iteration at
    which an exception would have fired.  ``reason`` is a stable,
    human-readable classification used in stats and tests.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class SpeculationFailed(ReproError):
    """Raised internally when a speculative parallel execution must be
    abandoned (PD-test failure or a runtime exception inside an iteration).

    The speculative driver catches this, restores the checkpoint and
    re-executes the loop sequentially, exactly as Section 5 of the paper
    prescribes.  User code normally never sees this exception.
    """


class RealBackendError(ExecutionError):
    """A real-parallel backend run failed at the system level.

    Raised by :mod:`repro.runtime.procs` when worker coordination
    breaks (a barrier stall, a gather timeout, a worker traceback).
    Carries structured context so the supervisor's degradation ladder
    (:mod:`repro.runtime.supervisor`) can decide how to recover:

    ``phase``
        Where the parent was blocked: ``"barrier"``, ``"gather"``,
        ``"shadow"``, or ``"run"``.
    ``worker``
        The offending worker id, or ``None`` when unattributable.
    ``elapsed_s``
        Wall seconds since the run started when the failure surfaced.
    """

    def __init__(self, message: str, *, phase: str = "run",
                 worker: "int | None" = None,
                 elapsed_s: float = 0.0) -> None:
        super().__init__(message)
        self.phase = phase
        self.worker = worker
        self.elapsed_s = elapsed_s


class WorkerFault(RealBackendError):
    """Base of the structured worker-fault taxonomy.

    A *fault* is a system-level failure (the machine misbehaved), as
    opposed to a semantic failure (the PD test failed): a worker
    process crashed, stopped making progress, stalled a barrier, lost
    a result message, or returned corrupted speculation metadata.  The
    supervisor converts every fault into a degradation-ladder step;
    without a supervisor the fault propagates to the caller.

    ``kind`` is the stable taxonomy string (``crash``, ``hang``,
    ``barrier``, ``lost-result``, ``corrupt-shadow``) used in obs
    events (``fault.detected``) and in ``stats["resilience"]``.

    ``salvage`` (set by the procs backend when it propagates a fault
    out of a non-speculative run) carries the contiguous committed
    iteration prefix gathered before the fault — a
    :class:`repro.runtime.procs.ResumeState` the supervisor's
    partial-restart rung feeds back so the retry resumes from the last
    committed iteration instead of iteration 1.
    """

    kind = "fault"
    salvage = None

    def __init__(self, message: str, *, phase: str = "run",
                 worker: "int | None" = None, elapsed_s: float = 0.0,
                 exitcode: "int | None" = None) -> None:
        super().__init__(message, phase=phase, worker=worker,
                         elapsed_s=elapsed_s)
        self.exitcode = exitcode


class WorkerCrashed(WorkerFault):
    """A worker process died (segfault, OOM kill, ``os._exit``)."""

    kind = "crash"


class WorkerHung(WorkerFault):
    """A worker stopped making progress before the run deadline."""

    kind = "hang"


class BarrierStalled(WorkerFault):
    """A strip barrier did not assemble before its deadline."""

    kind = "barrier"


class ResultLost(WorkerFault):
    """A worker's result message never reached the parent's queue."""

    kind = "lost-result"


class ShadowCorrupt(WorkerFault):
    """A worker returned PD-test shadow stamps that fail validation."""

    kind = "corrupt-shadow"


class LeaseExpired(WorkerFault):
    """A shared-memory arena lease expired (or was revoked) mid-job.

    Raised by the pool engine (:mod:`repro.service`) when the arena
    sweeper reclaimed the job's segments before the job finished —
    either because the pool failed to renew the lease (a stalled
    parent) or because injection forced a zero TTL
    (``lease-expiry`` fault specs).  Classified as a
    :class:`WorkerFault` so the per-job ladder retries the job with a
    fresh lease like any other system fault.
    """

    kind = "lease-expired"


class JobCancelled(WorkerFault):
    """The pool cancelled an in-flight job (drain or shutdown).

    Carries any salvaged committed prefix (``salvage``) so the drain
    path can finish the job degraded — threads or sequential — from
    the last committed iteration instead of discarding the work.
    """

    kind = "cancelled"


class PoolError(ExecutionError):
    """Base class for persistent worker-pool service failures."""


class PoolOverloaded(PoolError):
    """The pool's admission controller rejected (shed) a job.

    Raised *before* any execution: the bounded admission queue is
    full, the pool is draining, or the job's predicted attainable
    speedup (Section 7 ``Spat``) is below the shedding threshold while
    the pool is under load.  The store is untouched; the caller may
    run the loop sequentially or resubmit later.

    ``reason``
        Stable classification: ``"queue-full"``, ``"deadline"``,
        ``"not-worthwhile"``, ``"draining"``, or ``"closed"``.
    ``depth`` / ``capacity``
        Admission-queue occupancy when the job was rejected.
    ``sp_at``
        The predicted attainable speedup that informed the verdict
        (``None`` when no prediction was available).
    """

    def __init__(self, message: str, *, reason: str = "queue-full",
                 depth: int = 0, capacity: int = 0,
                 sp_at: "float | None" = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.depth = depth
        self.capacity = capacity
        self.sp_at = sp_at


class JobDeadlineExceeded(PoolOverloaded):
    """A job's per-job deadline expired while it waited for admission.

    A subclass of :class:`PoolOverloaded` (the job was *shed*, not
    executed) so callers can treat every admission failure uniformly.
    """

    def __init__(self, message: str, *, deadline_s: float = 0.0,
                 **kwargs) -> None:
        kwargs.setdefault("reason", "deadline")
        super().__init__(message, **kwargs)
        self.deadline_s = deadline_s


class PoolClosed(PoolError):
    """A job was submitted to a pool that has been shut down."""


class LadderExhausted(RealBackendError):
    """Every rung of the degradation ladder failed.

    Carries the fault history so callers can see what was tried;
    raised only when the resilience policy forbids the sequential rung
    (the sequential interpreter cannot *fault* — it can only raise the
    loop's own error, which is re-raised as itself).
    """


class NullPointerError(ExecutionError):
    """A linked-list hop was attempted through a NULL (-1) pointer."""


class OutOfBoundsWrite(ExecutionError):
    """A write to a shared-memory store segment was out of range.

    Raised by the bounds guards on :mod:`repro.runtime.shm` attached
    arrays.  NumPy silently wraps negative indices, so a speculative
    iteration computing a garbage index could otherwise corrupt a
    *different* element of the shared segment — this error makes the
    write a containable per-iteration fault instead.
    """


class ExceptionDivergence(ExecutionError):
    """Strict-exceptions mode: the sequential replay of a genuinely
    faulting iteration raised a different exception type than the one
    the parallel worker contained.

    Only raised under ``strict_exceptions=True``; by default the
    sequential replay is the ground truth and a divergent contained
    fault is counted as a spurious artifact.
    """


@dataclass
class IterationFault:
    """Structured, picklable record of one contained iteration fault.

    Workers on the real backends wrap each iteration attempt in an
    exception guard; instead of aborting the run, an ordinary
    ``Exception`` becomes an :data:`IterOutcome.FAULTED
    <repro.ir.interp.IterOutcome>` result carrying one of these.  The
    parent reconciler then *quarantines* it: a fault past the last
    valid iteration is spurious overshoot (discard and count), a fault
    inside the committed range is the program's own exception
    (re-raised at the exact sequential iteration).

    Attributes
    ----------
    iteration:
        1-based iteration index at which the fault fired.
    worker:
        Worker id that executed the iteration (``-1`` if unknown).
    kind:
        Stable classification string: ``"null-pointer"`` (linked-list
        dispatcher overshoot), ``"oob-write"`` (shared-store bounds
        guard), ``"injected"`` (deterministic fault injection), or
        ``"exception"`` (anything else the body raised).
    exc_type:
        Qualified name of the exception class (e.g.
        ``"ZeroDivisionError"``).
    message:
        ``str(exc)`` of the original exception.
    traceback:
        Formatted traceback text captured in the worker.
    """

    iteration: int
    worker: int = -1
    kind: str = "exception"
    exc_type: str = "Exception"
    message: str = ""
    traceback: str = field(default="", repr=False)

    @classmethod
    def from_exception(cls, exc: BaseException, *, iteration: int,
                       worker: int = -1,
                       kind: "str | None" = None) -> "IterationFault":
        """Classify a caught exception into a fault record."""
        if kind is None:
            if isinstance(exc, NullPointerError):
                kind = "null-pointer"
            elif isinstance(exc, OutOfBoundsWrite):
                kind = "oob-write"
            else:
                kind = "exception"
        return cls(iteration=iteration, worker=worker, kind=kind,
                   exc_type=type(exc).__name__, message=str(exc),
                   traceback="".join(_traceback.format_exception(exc)))

    def summary(self) -> dict:
        """Compact dict for ``ParallelResult.stats`` / obs payloads."""
        return {"iteration": self.iteration, "worker": self.worker,
                "kind": self.kind, "exc_type": self.exc_type,
                "message": self.message}


class OvershootLimit(ExecutionError):
    """A parallel execution exceeded its iteration upper bound ``u``.

    The paper requires an upper bound on the number of iterations (either
    inferred from the loop body or imposed by strip-mining); exceeding it
    indicates either a diverging loop or a bound chosen too small.
    """
