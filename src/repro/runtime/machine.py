"""The virtual-time multiprocessor.

This is the substitute for the paper's Alliant FX/80 (see DESIGN.md):
a deterministic discrete-event machine where each processor owns a
virtual cycle clock.  Executors run real Python work (IR iteration
bodies) under a :class:`ProcCtx` that accumulates cycles; the machine
orders work by virtual time, models lock contention and
dynamic/static/in-order iteration issue, and reports the *makespan*
(the parallel execution time ``T_par``) from which speedups are
computed.

Why simulate?  CPython's GIL prevents real compute speedup from
threads, and the paper's claims are about *relative* timing: who wins,
by what factor, and where the crossovers fall.  A deterministic
virtual-time machine reproduces exactly that, is perfectly repeatable,
and scales to the MPP processor counts the paper extrapolates to.

Key semantics implemented here:

* **Dynamic self-scheduling with in-order issue** — iterations are
  handed out in index order to the least-loaded processor, each fetch
  charging ``sched_dynamic`` cycles (the Alliant's concurrency
  hardware).
* **QUIT** (paper Section 3.1) — once an executing iteration issues a
  QUIT, iterations with larger indices that have not yet *begun* are
  never started; iterations already in flight complete.  With multiple
  QUITs the smallest quitting index governs.
* **Static mod-p scheduling** (General-2) — processor ``k`` executes
  indices ``k, k+p, k+2p, ...`` privately; a processor may stop its own
  stream early (``STOP_PROC``).
* **Locks** — a lock is granted at ``max(requester clock, lock free
  time)``; acquisition and release charge cycles, so a critical
  section serializes exactly as on real hardware.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.obs import names as _ev
from repro.obs.tracer import get_tracer
from repro.runtime.costs import ALLIANT_FX80, CostModel

__all__ = [
    "QUIT",
    "STOP_PROC",
    "SimLock",
    "ProcCtx",
    "ItemRec",
    "DoallRun",
    "Machine",
]

#: Outcome constant: the iteration issued a QUIT (Induction-2 style).
QUIT = "quit"
#: Outcome constant: this processor stops taking further items
#: (General-2's ``goto 2`` when the private walk hits NULL).
STOP_PROC = "stop_proc"


class SimLock:
    """A virtual-time mutex.

    ``free_at`` is the earliest virtual time at which the lock can next
    be granted.  Contention statistics are kept for the ablation
    benches (General-1's lock serialization).
    """

    __slots__ = ("free_at", "acquisitions", "contended", "busy_cycles")

    def __init__(self) -> None:
        self.free_at = 0
        self.acquisitions = 0
        self.contended = 0
        self.busy_cycles = 0


@dataclass
class ProcCtx:
    """A processor's execution context during one work item.

    Executors charge cycles on it (directly or through an IR
    :class:`~repro.ir.interp.EvalContext` whose cycles they add) and
    may acquire/release :class:`SimLock` objects.
    """

    pid: int
    clock: int
    cost: CostModel

    def charge(self, cycles: int) -> None:
        """Advance this processor's clock by ``cycles``."""
        self.clock += int(cycles)

    def acquire(self, lock: SimLock) -> None:
        """Block until the lock is free, then take it."""
        lock.acquisitions += 1
        waited = 0
        if lock.free_at > self.clock:
            lock.contended += 1
            waited = lock.free_at - self.clock
            self.clock = lock.free_at
        self.clock += self.cost.lock_acquire
        # Lock is held until release(); mark it unavailable far in the
        # future so a missing release is caught loudly.
        lock.free_at = 1 << 62
        trc = get_tracer()
        if trc.enabled:
            trc.event(_ev.EV_LOCK_ACQUIRE, self.clock, pid=self.pid,
                      waited=waited, contended=waited > 0)
            trc.count(_ev.M_LOCK_ACQUISITIONS)
            if waited:
                trc.count(_ev.M_LOCK_CONTENDED)
                trc.observe(_ev.M_LOCK_WAIT, waited)

    def release(self, lock: SimLock) -> None:
        """Release the lock at the current virtual time."""
        self.clock += self.cost.lock_release
        lock.free_at = self.clock
        trc = get_tracer()
        if trc.enabled:
            trc.event(_ev.EV_LOCK_RELEASE, self.clock, pid=self.pid)


@dataclass
class ItemRec:
    """Execution record of one work item (= one iteration attempt)."""

    index: int
    pid: int
    start: int
    end: int
    outcome: Optional[str] = None


@dataclass
class DoallRun:
    """Result of one DOALL execution on the machine.

    Attributes
    ----------
    makespan:
        Virtual time when the last processor finishes (excludes any
        pre/post overhead the executor accounts separately).
    items:
        Per-item execution records in issue order.
    quit_index:
        Smallest index that issued QUIT, if any.
    skipped:
        Indices never begun because of a QUIT.
    proc_finish:
        Final clock per processor.
    """

    makespan: int
    items: List[ItemRec]
    quit_index: Optional[int]
    skipped: List[int]
    proc_finish: List[int]

    @property
    def executed_indices(self) -> List[int]:
        """Indices whose bodies actually began."""
        return [r.index for r in self.items]

    def span_profile(self) -> int:
        """Maximum spread between concurrently in-flight indices.

        The paper (Section 3.3) observes that static assignment keeps a
        larger iteration *span* in flight than dynamic assignment, so
        an RV terminator forces more undone iterations.  This measures
        that spread on the recorded schedule.
        """
        if not self.items:
            return 0
        events: List[Tuple[int, int, int]] = []  # (time, +1/-1, index)
        for r in self.items:
            events.append((r.start, 1, r.index))
            events.append((r.end, -1, r.index))
        # Starts sort before ends at equal times so zero-duration
        # items (e.g. an iteration that only tested the terminator)
        # balance their own counters.
        events.sort(key=lambda t: (t[0], -t[1]))
        active: Dict[int, int] = {}
        best = 0
        for _, kind, idx in events:
            if kind == 1:
                active[idx] = active.get(idx, 0) + 1
            else:
                active[idx] -= 1
                if active[idx] == 0:
                    del active[idx]
            if len(active) >= 2:
                best = max(best, max(active) - min(active))
        return best


#: Work-item callback: ``body(proc, index) -> None | QUIT | STOP_PROC``.
ItemBody = Callable[[ProcCtx, int], Optional[str]]


class Machine:
    """A ``p``-processor virtual-time multiprocessor.

    Parameters
    ----------
    nprocs:
        Number of processors (the paper's machine has 8; MPP
        extrapolations go far higher).
    cost:
        Cycle cost model; defaults to the Alliant-flavoured model.
    """

    def __init__(self, nprocs: int, cost: CostModel = ALLIANT_FX80) -> None:
        if nprocs < 1:
            raise ExecutionError("machine needs at least one processor")
        self.nprocs = int(nprocs)
        self.cost = cost

    # -- collective time formulas -----------------------------------------
    def parallel_work_time(self, total_cycles: int) -> int:
        """Time for perfectly divisible work: ``ceil(total/p)``."""
        p = self.nprocs
        return -(-int(total_cycles) // p)

    def reduction_time(self, n_elems: int) -> int:
        """Time of a parallel reduction: ``O(n/p + log p)`` (paper §5.1)."""
        p = self.nprocs
        per = self.cost.reduction_elem
        logp = max(1, (p - 1).bit_length())
        return self.parallel_work_time(n_elems * per) + logp * self.cost.alu \
            + self.cost.barrier(p)

    def prefix_time(self, n_elems: int, op_cost: int) -> int:
        """Time of a parallel prefix: ``O(n/p + log p)`` (paper §3.2).

        Uses the two-sweep block algorithm: each processor scans its
        block twice (up-sweep + fixup) plus a ``log p`` combine tree.
        """
        p = self.nprocs
        logp = max(1, (p - 1).bit_length())
        block = -(-int(n_elems) // p)
        return 2 * block * op_cost + logp * op_cost + self.cost.barrier(p)

    # -- DOALL engines ------------------------------------------------------
    def run_doall_dynamic(
        self,
        n_items: int,
        body: ItemBody,
        *,
        first_index: int = 1,
        quit_aware: bool = True,
    ) -> DoallRun:
        """Run items ``first_index .. first_index+n_items-1`` self-scheduled.

        Items are issued in index order to the processor with the
        smallest clock, charging ``sched_dynamic`` per fetch, plus a
        one-time ``fork`` cost.  ``body`` may return :data:`QUIT` to
        stop later items from beginning (paper's Induction-2 /
        General-1/3 QUIT).
        """
        p, cost = self.nprocs, self.cost
        trc = get_tracer()
        heap: List[Tuple[int, int]] = [(cost.fork, pid) for pid in range(p)]
        heapq.heapify(heap)
        items: List[ItemRec] = []
        skipped: List[int] = []
        quit_index: Optional[int] = None
        quit_time: Optional[int] = None
        last = first_index + n_items - 1
        index = first_index
        proc_finish = [cost.fork] * p
        while index <= last:
            clock, pid = heapq.heappop(heap)
            start = clock + cost.sched_dynamic
            if quit_time is not None and start >= quit_time \
                    and index > quit_index:
                # The QUIT is visible by this item's start time and
                # governs it: this and all later items are never begun
                # (starts are non-decreasing under min-clock issue).
                skipped.extend(range(index, last + 1))
                heapq.heappush(heap, (clock, pid))
                break
            ctx = ProcCtx(pid, start, cost)
            outcome = body(ctx, index)
            items.append(ItemRec(index, pid, start, ctx.clock, outcome))
            if trc.enabled:
                trc.span(_ev.EV_ITER, start, ctx.clock, pid=pid,
                         index=index, outcome=outcome or "done",
                         schedule="dynamic")
                trc.count(_ev.M_ITEMS)
                trc.observe(_ev.M_QUEUE_WAIT, start - clock)
                if quit_aware and outcome == QUIT:
                    trc.event(_ev.EV_QUIT, ctx.clock, pid=pid, index=index)
            if quit_aware and outcome == QUIT:
                if quit_index is None or index < quit_index:
                    quit_index, quit_time = index, ctx.clock
            proc_finish[pid] = ctx.clock
            heapq.heappush(heap, (ctx.clock, pid))
            index += 1
        makespan = max(proc_finish)
        if trc.enabled and skipped:
            trc.event(_ev.EV_SKIP, makespan, count=len(skipped),
                      first=skipped[0], last=skipped[-1])
            trc.count(_ev.M_SKIPPED, len(skipped))
        return DoallRun(makespan, items, quit_index, skipped, proc_finish)

    def run_doall_static(
        self,
        n_items: int,
        body: ItemBody,
        *,
        first_index: int = 1,
        quit_aware: bool = True,
    ) -> DoallRun:
        """Run items with static mod-p assignment (General-2 style).

        Processor ``k`` executes indices ``first_index+k,
        first_index+k+p, ...`` in order on its own clock.  A body
        returning :data:`STOP_PROC` ends that processor's stream; a
        :data:`QUIT` prevents *later-begun* items on any processor from
        starting (checked against the quit's virtual time, mirroring
        the dynamic engine).

        Bodies are *executed* (their Python side effects applied) in
        global index order, exactly like the dynamic engine, while the
        clocks model the static per-processor streams.  The two orders
        are interchangeable for timing — an item's start depends only
        on its own processor's stream, and every QUIT from a smaller
        index is known before any item it could govern is reached —
        but index order keeps the machine's store semantics sequential
        even when a remainder carries a cross-iteration flow
        dependence, the same hard store contract the dynamic engine's
        in-order issue provides.
        """
        p, cost = self.nprocs, self.cost
        trc = get_tracer()
        clocks = [cost.fork] * p
        stopped = [False] * p
        pending: List[ItemRec] = []
        last = first_index + n_items - 1
        quit_index: Optional[int] = None
        quit_time: Optional[int] = None
        skipped: List[int] = []
        for index in range(first_index, last + 1):
            pid = (index - first_index) % p
            if stopped[pid]:
                continue
            start = clocks[pid] + cost.sched_static
            if quit_time is not None and start >= quit_time \
                    and index > quit_index:
                skipped.append(index)
                clocks[pid] = start
                continue
            ctx = ProcCtx(pid, start, cost)
            outcome = body(ctx, index)
            pending.append(ItemRec(index, pid, start, ctx.clock, outcome))
            clocks[pid] = ctx.clock
            if trc.enabled:
                trc.span(_ev.EV_ITER, start, ctx.clock, pid=pid,
                         index=index, outcome=outcome or "done",
                         schedule="static")
                trc.count(_ev.M_ITEMS)
                if quit_aware and outcome == QUIT:
                    trc.event(_ev.EV_QUIT, ctx.clock, pid=pid, index=index)
                if outcome == STOP_PROC:
                    trc.event(_ev.EV_STOP_PROC, ctx.clock, pid=pid,
                              index=index)
            if quit_aware and outcome == QUIT:
                if quit_index is None or index < quit_index:
                    quit_index, quit_time = index, ctx.clock
            if outcome == STOP_PROC:
                stopped[pid] = True
        pending.sort(key=lambda r: (r.start, r.index))
        makespan = max(clocks)
        if trc.enabled and skipped:
            trc.event(_ev.EV_SKIP, makespan, count=len(skipped),
                      first=min(skipped), last=max(skipped))
            trc.count(_ev.M_SKIPPED, len(skipped))
        return DoallRun(makespan, pending, quit_index, skipped, clocks)

    def run_sequential(self, total_cycles: int) -> int:
        """Trivial helper: sequential work takes its own time."""
        return int(total_cycles)

    def __repr__(self) -> str:
        return f"Machine(nprocs={self.nprocs})"
