"""Ablation: PD-test overheads (Section 5.1).

* the marking overhead (``T_d``) per access and the post-execution
  analysis (``T_a``) scaling ``O(a/p + log p)``;
* the cost of a passed test vs an untested run;
* dense vs hash-table shadow memory across array sizes.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.executors import run_induction2, run_sequential
from repro.executors.speculative import run_speculative
from repro.ir import (
    ArrayAssign,
    ArrayRef,
    Assign,
    Const,
    FunctionTable,
    Store,
    Var,
    WhileLoop,
    le_,
)
from repro.runtime import Machine
from repro.speculation import ShadowArrays, analyze_pd

FT = FunctionTable()


def spec_loop():
    return WhileLoop(
        [Assign("i", Const(1))], le_(Var("i"), Var("n")),
        [ArrayAssign("A", ArrayRef("idx", Var("i") - 1), Var("i") * 1.0),
         Assign("i", Var("i") + 1)],
        name="pd-cost")


def spec_store(n, asize=None, seed=1):
    asize = asize or n
    idx = np.random.default_rng(seed).permutation(asize)[:n] \
        .astype(np.int64)
    return Store({"A": np.zeros(asize), "idx": idx, "n": n, "i": 0})


def test_pd_overhead_vs_untested(benchmark):
    m = Machine(8)

    def run_pair():
        rows = []
        for n in (200, 800):
            seq_t = run_sequential(spec_loop(), spec_store(n), m,
                                   FT).t_par
            st = spec_store(n)
            tested = run_speculative(spec_loop(), st, m, FT)
            st2 = spec_store(n)
            untested = run_induction2(spec_loop(), st2, m, FT,
                                      force_checkpoint=False,
                                      force_stamps=False)
            rows.append((n, tested.speedup(seq_t),
                         untested.speedup(seq_t)))
        return rows

    rows = run_once(benchmark, run_pair)
    print("\nPD test cost (passed test vs no test):")
    for n, sp_pd, sp_free in rows:
        print(f"  n={n:5d}: with-PD={sp_pd:.2f} without={sp_free:.2f} "
              f"overhead={1 - sp_pd / sp_free:.0%}")
        assert sp_pd > 0.5 * sp_free  # well above the 1/5 floor
    benchmark.extra_info["rows"] = [(n, round(a, 2), round(b, 2))
                                    for n, a, b in rows]


def test_pd_analysis_time_scaling(benchmark):
    """T_a = O(a/p + log p): grows ~linearly in the access count and
    shrinks with p."""
    def sweep():
        rows = []
        for n in (1_000, 4_000):
            for p in (2, 8):
                store = Store({"A": np.zeros(n)})
                sh = ShadowArrays(store, ["A"])
                sh.accesses = n  # as if n marks happened
                res = analyze_pd(sh, Machine(p))
                rows.append((n, p, res.analysis_time))
        return rows

    rows = run_once(benchmark, sweep)
    t = {(n, p): v for n, p, v in rows}
    print("\nPD post-analysis virtual time:")
    for n, p, v in rows:
        print(f"  a={n:5d} p={p:2d}: t={v}")
    benchmark.extra_info["times"] = {f"{n}x{p}": v for n, p, v in rows}
    assert t[(1_000, 8)] < t[(1_000, 2)]
    assert t[(4_000, 8)] > t[(1_000, 8)] * 2

def test_hash_vs_dense_shadow_memory(benchmark):
    """Sparse access patterns: hash shadows use O(touched) memory."""
    m = Machine(8)

    def run_pair():
        rows = []
        for asize in (2_000, 20_000):
            n = 150  # touched elements
            st = spec_store(n, asize=asize)
            dense = run_speculative(spec_loop(), st, m, FT,
                                    sparse_shadow=False)
            st2 = spec_store(n, asize=asize)
            sparse = run_speculative(spec_loop(), st2, m, FT,
                                     sparse_shadow=True)
            rows.append((asize, dense.stats["shadow_words"],
                         sparse.stats["shadow_words"]))
        return rows

    rows = run_once(benchmark, run_pair)
    print("\nShadow memory, dense vs hash (150 touched elements):")
    for asize, d, s in rows:
        print(f"  |A|={asize:6d}: dense={d:7d} words  hash={s:5d} words")
        assert s < d
        assert s == 4 * 150
    benchmark.extra_info["rows"] = rows
