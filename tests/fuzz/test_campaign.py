"""Campaign driver: determinism, reporting, and the finding pipeline."""

import json
from pathlib import Path

from repro.fuzz.campaign import FuzzConfig, run_campaign
from repro.fuzz.oracle import Discrepancy, OracleVerdict


class TestSmoke:
    def test_small_sim_campaign_clean(self):
        report = run_campaign(FuzzConfig(budget=12, seed=3))
        assert report.ok, [f.detail for f in report.findings]
        assert report.programs == 12
        assert report.checks > 0
        assert sum(report.cells.values()) == 12
        assert len(report.cells) >= 2

    def test_campaign_deterministic(self):
        a = run_campaign(FuzzConfig(budget=10, seed=5))
        b = run_campaign(FuzzConfig(budget=10, seed=5))
        assert (a.programs, a.checks, a.raising, a.cells) \
            == (b.programs, b.checks, b.raising, b.cells)

    def test_summary_mentions_cells(self):
        report = run_campaign(FuzzConfig(budget=6, seed=1))
        text = report.summary()
        assert "cells covered" in text
        assert "no discrepancies" in text


class TestFindingPipeline:
    def test_finding_is_shrunk_persisted_and_rendered(
            self, tmp_path, monkeypatch):
        """A diverging draw must flow through shrink → corpus → script."""
        import repro.fuzz.campaign as campaign_mod

        real_check = campaign_mod.check_program
        target_cell = {}

        def rigged_check(prog, **kwargs):
            # report a synthetic mismatch whenever the draw still has
            # at least one statement writing its primary array; the
            # shrinker then has real work to do
            v = OracleVerdict(program=prog, checks=1)
            if prog.seed % 7 == 3:
                target_cell.setdefault("cell", prog.cell)
                v.discrepancies.append(Discrepancy(
                    "store-mismatch", "sim", "general-1",
                    "synthetic divergence", prog.seed, prog.cell))
            return v

        monkeypatch.setattr(campaign_mod, "check_program", rigged_check)
        corpus = tmp_path / "corpus"
        artifacts = tmp_path / "artifacts"
        report = run_campaign(FuzzConfig(
            budget=8, seed=1, corpus_dir=str(corpus),
            artifacts_dir=str(artifacts), shrink_tries=20))
        monkeypatch.setattr(campaign_mod, "check_program", real_check)

        assert not report.ok
        assert report.findings
        f = report.findings[0]
        assert f.kinds == ("store-mismatch",)
        assert f.corpus_path and Path(f.corpus_path).exists()
        assert f.artifact_path and Path(f.artifact_path).exists()

        entry = json.loads(Path(f.corpus_path).read_text())
        assert entry["found_with"]["kinds"] == ["store-mismatch"]
        # persisted entries always replay under the supervised config
        assert entry["resilience"] is True

        script = Path(f.artifact_path).read_text()
        compile(script, "<artifact>", "exec")

    def test_real_backend_sampling_is_logged(self):
        """Bounded real-backend coverage must be announced, not silent."""
        lines = []
        config = FuzzConfig(budget=6, seed=2, backends=("sim", "threads"),
                            max_real=2)
        report = run_campaign(config, log=lines.append)
        assert report.real_draws <= 2
        assert any("sampling real backends" in ln for ln in lines)
