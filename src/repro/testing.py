"""Verification helpers for downstream users of the framework.

Anyone bringing their own loop to this library should be able to ask,
in one call, "which schemes apply to my loop, and do they all agree
with sequential execution?".  :func:`check_equivalence` does exactly
that: it analyzes the loop, runs every scheme whose preconditions
hold, compares each final store with the sequential reference, and
returns a structured report (also used by this repository's own test
suite as a convenience harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.analysis.loopinfo import analyze_loop
from repro.errors import PlanError, ReproError
from repro.executors.associative import run_associative_prefix
from repro.executors.distribution import run_loop_distribution
from repro.executors.general import run_general1, run_general2, run_general3
from repro.executors.induction import run_induction1, run_induction2
from repro.executors.runtwice import run_twice
from repro.executors.sequential import run_sequential
from repro.executors.speculative import run_speculative
from repro.ir.functions import FunctionTable
from repro.ir.nodes import Loop
from repro.ir.store import Store
from repro.runtime.machine import Machine

__all__ = ["SchemeCheck", "EquivalenceReport", "check_equivalence"]


@dataclass(frozen=True)
class SchemeCheck:
    """Outcome of one scheme on the user's loop."""

    scheme: str
    applicable: bool
    store_matches: Optional[bool]  #: None when not applicable / errored
    n_iters: Optional[int]
    speedup: Optional[float]
    error: Optional[str] = None


@dataclass
class EquivalenceReport:
    """Everything :func:`check_equivalence` established."""

    loop_name: str
    t_seq: int
    checks: List[SchemeCheck] = field(default_factory=list)

    @property
    def all_consistent(self) -> bool:
        """Every applicable scheme matched the sequential store."""
        return all(c.store_matches for c in self.checks if c.applicable)

    @property
    def applicable_schemes(self) -> Tuple[str, ...]:
        """Names of the schemes that ran."""
        return tuple(c.scheme for c in self.checks if c.applicable)

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"loop {self.loop_name!r}: T_seq={self.t_seq}"]
        for c in self.checks:
            if not c.applicable:
                lines.append(f"  {c.scheme:22s} n/a ({c.error})")
            elif c.error is not None:
                # applicable but errored mid-run: no store/speedup
                lines.append(f"  {c.scheme:22s} ERROR ({c.error})")
            else:
                lines.append(
                    f"  {c.scheme:22s} match={c.store_matches} "
                    f"iters={c.n_iters} speedup={c.speedup:.2f}x")
        return "\n".join(lines)


def _candidate_schemes(info) -> List[Tuple[str, Callable]]:
    """Every scheme, in a fixed order.

    All schemes are attempted: the ones whose preconditions fail raise
    :class:`~repro.errors.PlanError` and are reported inapplicable —
    that report is itself useful to the user ("why can't my loop use
    Induction-2?").
    """
    out: List[Tuple[str, Callable]] = [
        ("induction-1", run_induction1),
        ("induction-2", run_induction2),
        ("associative-prefix", run_associative_prefix),
        ("general-1", run_general1),
        ("general-2", run_general2),
        ("general-3", run_general3),
        ("wu-lewis-distribution", run_loop_distribution),
        ("run-twice", run_twice),
    ]
    if info.needs_runtime_test:
        out.append(("speculative", run_speculative))
    return out


def check_equivalence(
    loop: Loop,
    make_store: Callable[[], Store],
    *,
    funcs: Optional[FunctionTable] = None,
    machine: Optional[Machine] = None,
    u: Optional[int] = None,
    strip: Optional[int] = None,
) -> EquivalenceReport:
    """Run every applicable scheme and compare against sequential.

    Parameters
    ----------
    loop:
        The loop under test.
    make_store:
        Factory producing identical fresh stores (one per scheme).
    funcs / machine:
        Intrinsics and the machine (default: empty table, 8 procs).
    u / strip:
        Iteration bound / strip length forwarded to each scheme.

    Notes
    -----
    Schemes whose preconditions fail (wrong dispatcher kind, no
    inferable bound without ``strip``) are reported as not applicable
    rather than as failures — the point is to tell the user which
    schemes their loop *can* use.
    """
    funcs = funcs or FunctionTable()
    machine = machine or Machine(8)
    info = analyze_loop(loop, funcs)

    ref = make_store()
    seq = run_sequential(info, ref, machine, funcs)
    report = EquivalenceReport(loop_name=loop.name, t_seq=seq.t_par)

    kwargs = {}
    if u is not None:
        kwargs["u"] = u
    if strip is not None:
        kwargs["strip"] = strip

    for name, runner in _candidate_schemes(info):
        st = make_store()
        try:
            res = runner(info, st, machine, funcs, **kwargs)
        except (PlanError,) as exc:
            report.checks.append(SchemeCheck(name, False, None, None,
                                             None, str(exc)))
            continue
        except ReproError as exc:
            report.checks.append(SchemeCheck(name, True, False, None,
                                             None, str(exc)))
            continue
        report.checks.append(SchemeCheck(
            name, True, st.equals(ref), res.n_iters,
            res.speedup(seq.t_par)))
    return report
