"""Job transport across the pre-fork boundary.

Per-call workers are forked *after* the task is built, so closures,
lambdas and locally defined functions travel for free by address-space
inheritance.  Pool workers are forked once, at pool start — every job
reaches them over a queue, which means ``pickle``.  Standard pickle
serializes functions *by reference* (module + qualname) and therefore
refuses exactly the functions real workloads are full of: the zoo's
``lambda ctx, i: ...`` intrinsics, bench kernels defined inside maker
functions, closures over loop parameters.

:func:`dumps`/:func:`loads` keep pickle's behaviour for everything
else but override function reduction:

* a function whose qualname resolves back to itself in its module is
  shipped **by reference** (cheap, and the worker gets the same object
  its module defines);
* anything else — lambdas, nested defs, decorated wrappers — is
  shipped **by value**: the code object via :mod:`marshal`, plus
  module name, defaults and closure cell contents (recursively
  courier-pickled), rebuilt with :func:`types.FunctionType` against
  the live module globals on the worker.  Fork inheritance guarantees
  the defining module is importable (it is already in
  ``sys.modules``), so by-value functions keep working even for
  ``__main__``/test-local definitions.

Marshal ties the payload to the interpreter version — fine here, the
pool parent forks its own workers — and cannot carry a code object's
*globals*, which is why the module's live dict is reattached on
rebuild rather than serialized.
"""

from __future__ import annotations

import io
import marshal
import pickle
import sys
import types
from typing import Any

__all__ = ["dumps", "loads"]

#: Payload tag for by-value functions (must survive pickle memoization).
_TAG = "repro-courier-function"


class _EmptyCell:
    """Sentinel for a closure cell that is still unbound."""

    __slots__ = ()


def _make_cell(value: Any) -> types.CellType:
    if isinstance(value, _EmptyCell):
        return types.CellType()
    return types.CellType(value)


def _rebuild_function(code_bytes: bytes, module: str, qualname: str,
                      defaults, kwdefaults, cell_values) -> types.FunctionType:
    """Worker-side reconstruction of a by-value function."""
    code = marshal.loads(code_bytes)
    mod = sys.modules.get(module)
    globalns = mod.__dict__ if mod is not None else {"__builtins__": __builtins__}
    fn = types.FunctionType(
        code, globalns, code.co_name, defaults,
        tuple(_make_cell(v) for v in cell_values) or None)
    fn.__qualname__ = qualname
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    return fn


def _resolves_by_reference(fn: types.FunctionType) -> bool:
    """Whether plain pickle-by-reference would find ``fn`` again."""
    mod = sys.modules.get(getattr(fn, "__module__", None) or "")
    if mod is None:
        return False
    obj = mod
    for part in fn.__qualname__.split("."):
        if part == "<locals>":
            return False
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is fn


class _Pickler(pickle.Pickler):
    """Pickler that ships unresolvable functions by value."""

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType) \
                and not _resolves_by_reference(obj):
            cells = []
            for cell in obj.__closure__ or ():
                try:
                    cells.append(cell.cell_contents)
                except ValueError:
                    cells.append(_EmptyCell())
            return (_rebuild_function,
                    (marshal.dumps(obj.__code__), obj.__module__ or "",
                     obj.__qualname__, obj.__defaults__,
                     obj.__kwdefaults__, tuple(cells)))
        return NotImplemented


def dumps(obj: Any) -> bytes:
    """Serialize ``obj`` for the pool job queue (see module docstring)."""
    buf = io.BytesIO()
    _Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


def loads(blob: bytes) -> Any:
    """Inverse of :func:`dumps` (plain unpickle; the reducer embeds
    :func:`_rebuild_function` calls by reference)."""
    return pickle.loads(blob)
