"""The machine cost model: virtual cycles per abstract operation.

The paper's measurements come from an 8-processor Alliant FX/80.  Our
substitute is a *virtual-time* multiprocessor (see
:mod:`repro.runtime.machine`); this module defines the exchange rate
between IR operations and virtual cycles.  The default
:data:`ALLIANT_FX80` model is tuned so the relative costs match the
qualitative story the paper tells — locks are expensive relative to a
pointer hop (which is why General-1 loses to General-3 in Figure 6),
dynamic self-scheduling costs a little per dispatch, and memory traffic
dominates scalar arithmetic.

All costs are plain integers so simulations are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

__all__ = ["CostModel", "ALLIANT_FX80", "FREE", "UNIT",
           "OverheadBreakdown", "breakdown_from_phases"]


@dataclass(frozen=True)
class CostModel:
    """Virtual-cycle cost of each abstract operation.

    Attributes are grouped by which subsystem charges them.
    """

    # -- IR evaluation ------------------------------------------------------
    alu: int = 1              #: add/sub/compare/boolean op
    mul: int = 2              #: multiply
    div: int = 8              #: divide / modulo
    powc: int = 12            #: exponentiation
    scalar_ref: int = 0       #: scalar register read/write
    array_read: int = 2       #: shared-array element load
    array_write: int = 2      #: shared-array element store
    hop: int = 4              #: linked-list ``next()`` dereference
    call_base: int = 2        #: intrinsic call overhead
    branch: int = 1           #: If / loop back-edge

    # -- scheduling / synchronization ----------------------------------------
    iter_overhead: int = 2    #: per-iteration loop bookkeeping
    sched_static: int = 1     #: static (mod-p) iteration issue
    sched_dynamic: int = 10   #: dynamic self-scheduling queue fetch
    lock_acquire: int = 12    #: uncontended lock acquisition
    lock_release: int = 4     #: lock release
    barrier_base: int = 40    #: barrier fixed cost
    barrier_per_proc: int = 6  #: barrier per-processor linear term
    fork: int = 60            #: DOALL spawn fixed cost

    # -- speculation overheads (Sections 4-5) -------------------------------
    checkpoint_word: int = 1   #: copy one word at checkpoint (T_b)
    restore_word: int = 1      #: restore one word at undo (part of T_a)
    timestamp_write: int = 2   #: record iteration stamp on a write (T_d)
    shadow_mark: int = 2       #: PD-test shadow array touch (T_d)
    analysis_word: int = 1     #: PD-test post-analysis per word (T_a)
    reduction_elem: int = 1    #: per-element cost of parallel reductions

    def binop_cost(self, op: str) -> int:
        """Cycles for one binary operator evaluation."""
        if op in ("*",):
            return self.mul
        if op in ("/", "//", "%"):
            return self.div
        if op == "**":
            return self.powc
        return self.alu

    def barrier(self, nprocs: int) -> int:
        """Cycles for a full barrier across ``nprocs`` processors."""
        return self.barrier_base + self.barrier_per_proc * nprocs

    def scaled(self, **overrides: int) -> "CostModel":
        """Return a copy with some costs overridden (ablation knob)."""
        return replace(self, **overrides)


#: Default model, loosely calibrated to the Alliant FX/80's behaviour.
ALLIANT_FX80 = CostModel()

#: A zero-cost model: useful in tests that check pure semantics.
FREE = CostModel(
    alu=0, mul=0, div=0, powc=0, scalar_ref=0, array_read=0, array_write=0,
    hop=0, call_base=0, branch=0, iter_overhead=0, sched_static=0,
    sched_dynamic=0, lock_acquire=0, lock_release=0, barrier_base=0,
    barrier_per_proc=0, fork=0, checkpoint_word=0, restore_word=0,
    timestamp_write=0, shadow_mark=0, analysis_word=0, reduction_elem=0,
)

@dataclass(frozen=True)
class OverheadBreakdown:
    """Wall-clock analog of the paper's ``T_b``/``T_d``/``T_a`` split.

    Section 7 partitions method overhead into pre-loop (``T_b``,
    checkpointing), during-loop (``T_d``, stamps and shadow marks) and
    post-loop (``T_a``, undo and PD analysis) terms.  On the real
    backends the same partition falls out of the
    :class:`~repro.obs.phases.PhaseProfiler` totals:

    * ``t_b_s`` — worker spawn plus the shared-memory export;
    * ``t_d_s`` — during-loop overhead.  Shadow marking runs *inside*
      the iteration bodies on real workers, so it is not separable
      from ``body_s`` by wall clock alone; this term stays 0.0 and the
      virtual-time model supplies the predicted ``T_d`` instead;
    * ``t_a_s`` — everything after the strip loop: shadow merge + PD
      analysis, quarantine replay, ordered reconciliation, and the
      Section-5 sequential fallback when one ran;
    * ``body_s`` — the strip loop itself (``T_ipar`` territory).
    """

    t_b_s: float
    t_d_s: float
    t_a_s: float
    body_s: float

    @property
    def overhead_s(self) -> float:
        """Total method overhead (everything that is not the body)."""
        return self.t_b_s + self.t_d_s + self.t_a_s


#: Which canonical profiler phases feed each overhead term.
_T_B_PHASES = ("spawn", "shm-setup")
_T_A_PHASES = ("pd-merge", "quarantine", "reconcile", "fallback")


def breakdown_from_phases(phases: Mapping[str, float]
                          ) -> OverheadBreakdown:
    """Fold a ``stats["phases"]`` dict into the Tb/Td/Ta partition.

    Only canonical top-level phase names are summed — nested children
    (``shm-export`` inside ``shm-setup``) are already inside their
    parent's seconds and must not double-count.
    """
    return OverheadBreakdown(
        t_b_s=sum(phases.get(p, 0.0) for p in _T_B_PHASES),
        t_d_s=0.0,
        t_a_s=sum(phases.get(p, 0.0) for p in _T_A_PHASES),
        body_s=phases.get("body", 0.0),
    )


#: Every operation costs one cycle: handy for counting operations.
UNIT = CostModel(
    alu=1, mul=1, div=1, powc=1, scalar_ref=1, array_read=1, array_write=1,
    hop=1, call_base=1, branch=1, iter_overhead=1, sched_static=1,
    sched_dynamic=1, lock_acquire=1, lock_release=1, barrier_base=1,
    barrier_per_proc=1, fork=1, checkpoint_word=1, restore_word=1,
    timestamp_write=1, shadow_mark=1, analysis_word=1, reduction_elem=1,
)
