"""Remaining coverage gaps: error paths and less-traveled options."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.executors.doany import run_while_doany
from repro.executors.runtwice import run_twice
from repro.ir import (
    ArrayAssign,
    Assign,
    Const,
    FunctionTable,
    SequentialInterp,
    Store,
    Var,
    WhileLoop,
    le_,
    lt_,
    ne_,
)
from repro.runtime import Machine

from tests.conftest import (
    affine_loop,
    affine_store,
    list_loop,
    list_store,
    rv_exit_loop,
    rv_exit_store,
)

FT = FunctionTable()


class TestDoanyEdges:
    def test_requires_dispatcher(self, machine8):
        loop = WhileLoop([], lt_(Var("x"), Const(1)),
                         [ArrayAssign("A", Const(0), Const(1))])
        with pytest.raises(PlanError):
            run_while_doany(loop, Store({"A": np.zeros(2), "x": 0}),
                            machine8, FT)

    def test_list_dispatcher_uses_private_walk(self, machine8):
        ref = list_store(25)
        SequentialInterp(list_loop(), FT).run(ref)
        st = list_store(25)
        res = run_while_doany(list_loop(), st, machine8, FT)
        assert st.equals(ref)
        assert res.stats["doany"]


class TestRunTwiceEdges:
    def test_affine_loop_uses_general_supply(self, machine8):
        ref = affine_store()
        SequentialInterp(affine_loop(), FT).run(ref)
        st = affine_store()
        res = run_twice(affine_loop(), st, machine8, FT, u=40)
        assert st.equals(ref)
        assert res.scheme == "run-twice"

    def test_zero_iteration_loop(self, machine8):
        loop = WhileLoop([Assign("i", Const(5))],
                         le_(Var("i"), Const(1)),
                         [ArrayAssign("A", Var("i"), Const(1)),
                          Assign("i", Var("i") + 1)])
        def mk():
            return Store({"A": np.zeros(8, dtype=np.int64), "i": 0})
        ref = mk()
        SequentialInterp(loop, FT).run(ref)
        st = mk()
        res = run_twice(loop, st, machine8, FT)
        assert st.equals(ref)
        assert res.n_iters == 0


class TestSchedulerEdgeCases:
    def test_static_with_one_processor(self):
        from repro.executors import run_general2
        ref = list_store(12)
        SequentialInterp(list_loop(), FT).run(ref)
        st = list_store(12)
        run_general2(list_loop(), st, Machine(1), FT)
        assert st.equals(ref)

    def test_windowed_more_procs_than_iters(self):
        from repro.executors.window import run_windowed
        ref = rv_exit_store(6, 4)
        SequentialInterp(rv_exit_loop(), FT).run(ref)
        st = rv_exit_store(6, 4)
        run_windowed(rv_exit_loop(), st, Machine(16), FT)
        assert st.equals(ref)

    def test_doacross_zero_iterations(self, machine8):
        from repro.executors.doacross import run_doacross
        loop = WhileLoop([Assign("i", Const(9))],
                         le_(Var("i"), Const(1)),
                         [Assign("i", Var("i") + 1)])
        st = Store({"i": 0})
        res = run_doacross(loop, st, machine8, FT)
        assert res.n_iters == 0
        assert st["i"] == 9


class TestStoreEdgeCases:
    def test_lists_excluded_from_arrays(self):
        from repro.structures import build_chain
        st = Store({"L": build_chain(4), "A": np.zeros(2)})
        assert st.lists() == ("L",)
        assert st.arrays() == ("A",)

    def test_checkpoint_skips_lists_in_partial_mode(self):
        from repro.speculation import Checkpoint
        from repro.structures import build_chain
        st = Store({"L": build_chain(4), "A": np.zeros(3)})
        ck = Checkpoint(st, arrays=["A"])
        assert ck.words == 3  # list pool not counted as array words
