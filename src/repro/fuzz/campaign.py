"""Budgeted fuzz campaigns: generate → check → shrink → persist.

One campaign draws ``budget`` programs from the generator (seeded, so
a campaign is reproducible from its ``(budget, seed)`` pair alone),
runs each through the differential oracle on the configured backends,
and — when a draw diverges — shrinks it and freezes the minimized
reproducer into the regression corpus plus a standalone repro script.

Real backends spawn process/thread pools per program, so they are
*sampled* rather than run on every draw (``max_real`` bounds the
total; the sampling stride is logged — no silent coverage caps).
Fault injection attaches a deterministic scripted fault to each
real-backend draw; combined with ``resilience=False`` this is the
standard way to manufacture a genuine discrepancy end-to-end
(fault → escape → shrink → corpus), which CI exercises as a smoke
test of the whole find-to-repro pipeline.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import names as _ev
from repro.obs.tracer import get_tracer
from repro.runtime.faults import FaultPlan, FaultSpec

from repro.fuzz.corpus import entry_from_program, entry_to_obj, save_entry
from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import OracleVerdict, check_program
from repro.fuzz.shrink import ShrinkResult, render_repro_script, shrink_program

__all__ = ["FuzzConfig", "FuzzReport", "run_campaign"]

#: Multiplier giving each draw a well-separated, reproducible seed.
_SEED_STRIDE = 1_000_003

#: Fault kinds injected under supervision.  ``crash`` at worker
#: startup always fires and is recovered by the heartbeat monitor;
#: ``raise-at-iter`` exercises exception containment; ``drop-result``
#: exercises the lost-result retry.  ``hang`` / ``barrier`` cost
#: wall-clock timeouts, so they stay in the chaos suite instead.
_FAULT_KINDS_SUPERVISED = ("crash", "raise-at-iter", "drop-result")

#: Without the supervisor only ``drop-result`` is safe to inject: the
#: parent detects the missing result and raises ``ResultLost`` (the
#: fault-escape discrepancy the campaign wants to manufacture),
#: whereas an unsupervised ``crash`` deadlocks the worker barrier —
#: there is nothing left to time it out — and ``raise-at-iter`` is
#: already contained by the exception-containment layer, supervisor
#: or not.
_FAULT_KINDS_UNSUPERVISED = ("drop-result",)


@dataclass
class FuzzConfig:
    """Everything one campaign run is parameterized by."""

    budget: int = 200                #: programs to draw
    seed: int = 0                    #: campaign master seed
    backends: Tuple[str, ...] = ("sim",)
    workers: int = 2                 #: real-backend worker count
    faults: bool = False             #: inject scripted faults (real only)
    resilience: bool = True          #: supervise real backends
    strict_exceptions: bool = False
    max_real: int = 48               #: draws that get real backends
    shrink: bool = True              #: minimize findings
    shrink_tries: int = 120          #: oracle runs per shrink
    corpus_dir: Optional[str] = None     #: persist shrunk finds here
    artifacts_dir: Optional[str] = None  #: write repro scripts here
    kernels: bool = True             #: also run the kernel-tier cell


@dataclass
class Finding:
    """One flagged program, possibly shrunk and persisted."""

    seed: int
    cell: str
    shape: str
    kinds: Tuple[str, ...]           #: discrepancy kinds observed
    detail: str                      #: first discrepancy's detail
    shrink_steps: int = 0
    corpus_path: Optional[str] = None
    artifact_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Aggregate outcome of one campaign."""

    config: FuzzConfig
    programs: int = 0
    checks: int = 0
    raising: int = 0                 #: draws whose sequential run raises
    real_draws: int = 0              #: draws that ran real backends
    cells: Dict[str, int] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no draw diverged."""
        return not self.findings

    def summary(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            f"fuzz: {self.programs} programs "
            f"(seed={self.config.seed}, budget={self.config.budget}), "
            f"{self.checks} scheme×backend checks on "
            f"{'/'.join(self.config.backends)}, "
            f"{self.real_draws} real-backend draws, "
            f"{self.raising} raising programs",
            f"cells covered ({len(self.cells)}/8):",
        ]
        for cell, n in sorted(self.cells.items()):
            lines.append(f"  {n:5d}  {cell}")
        if self.findings:
            lines.append(f"{len(self.findings)} DISCREPANCIES:")
            for f in self.findings:
                lines.append(
                    f"  seed={f.seed} [{f.cell}] {','.join(f.kinds)}"
                    f" ({f.shrink_steps} shrink steps)"
                    + (f" -> {f.corpus_path}" if f.corpus_path else ""))
                lines.append(f"    {f.detail}")
        else:
            lines.append("no discrepancies")
        return "\n".join(lines)


def _draw_fault_plan(rng: random.Random, workers: int,
                     resilience: bool) -> FaultPlan:
    kinds = (_FAULT_KINDS_SUPERVISED if resilience
             else _FAULT_KINDS_UNSUPERVISED)
    kind = rng.choice(kinds)
    if kind == "crash":
        spec = FaultSpec(kind="crash", worker=rng.randrange(workers),
                         at_iter=0)
    elif kind == "raise-at-iter":
        spec = FaultSpec(kind="raise-at-iter", worker=-1,
                         at_iter=rng.randint(1, 4))
    else:
        spec = FaultSpec(kind="drop-result", worker=-1, at_iter=1)
    return FaultPlan(specs=(spec,))


def run_campaign(config: FuzzConfig,
                 log: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """Run one differential fuzz campaign; see the module docstring.

    ``log`` receives progress lines (the CLI passes ``print``; tests
    pass ``None`` for silence).
    """
    say = log or (lambda _msg: None)
    trc = get_tracer()
    report = FuzzReport(config=config)
    cells: Counter = Counter()

    real_backends = tuple(b for b in config.backends if b != "sim")
    sim_on = "sim" in config.backends
    stride = 1
    if real_backends and config.budget > config.max_real:
        stride = -(-config.budget // config.max_real)   # ceil
        say(f"fuzz: sampling real backends every {stride} draws "
            f"(max_real={config.max_real} of budget={config.budget}); "
            f"the sim matrix still checks every draw")

    for i in range(config.budget):
        seed = config.seed * _SEED_STRIDE + i
        prog = generate_program(seed)
        report.programs += 1
        cells[prog.cell] += 1
        if prog.raises:
            report.raising += 1

        run_real = bool(real_backends) and i % stride == 0
        backends: Tuple[str, ...] = ()
        if sim_on:
            backends += ("sim",)
        if run_real:
            backends += real_backends
            report.real_draws += 1
        if not backends and not config.kernels:
            continue

        fault_plan = None
        if config.faults and run_real:
            fault_plan = _draw_fault_plan(random.Random(seed ^ 0xFA017),
                                          config.workers,
                                          config.resilience)

        def run_oracle(p, _fp=fault_plan, _bk=backends) -> OracleVerdict:
            return check_program(
                p, backends=_bk, workers=config.workers,
                fault_plan=_fp, resilience=config.resilience,
                strict_exceptions=config.strict_exceptions,
                kernels=config.kernels)

        verdict = run_oracle(prog)
        report.checks += verdict.checks
        trc.count(_ev.M_FUZZ_PROGRAMS)
        trc.count(_ev.M_FUZZ_CHECKS, verdict.checks)
        if verdict.ok:
            continue

        report.findings.append(
            _handle_finding(prog, verdict, run_oracle, config, say,
                            fault_plan=fault_plan))
        trc.count(_ev.M_FUZZ_DISCREPANCIES, len(verdict.discrepancies))
        for d in verdict.discrepancies:
            trc.event(_ev.EV_FUZZ_DISCREPANCY, 0, kind=d.kind,
                      backend=d.backend, scheme=d.scheme, seed=d.seed,
                      cell=d.cell)

    report.cells = dict(cells)
    trc.gauge(_ev.M_FUZZ_CELLS, len(cells))
    return report


def _handle_finding(prog, verdict: OracleVerdict,
                    run_oracle, config: FuzzConfig,
                    say, *, fault_plan: Optional[FaultPlan]) -> Finding:
    """Shrink, persist, and render one flagged program.

    The persisted corpus entry keeps the fault plan but always stores
    ``resilience=True``: a *fault-escape* find (manufactured by fuzzing
    unsupervised) then replays clean against the fixed, supervised code
    path immediately, while a genuine semantic divergence keeps failing
    until the underlying bug is fixed — both are exactly what a
    regression corpus wants.  The configuration that originally exposed
    the finding is preserved in ``found_with``.
    """
    kinds = tuple(sorted({d.kind for d in verdict.discrepancies}))
    first = verdict.discrepancies[0]
    say(f"fuzz: seed={prog.seed} [{prog.cell}] diverged: "
        f"{first.kind} on {first.backend}/{first.scheme}")

    shrunk: Optional[ShrinkResult] = None
    if config.shrink:
        shrunk = shrink_program(prog, verdict, run_oracle,
                                max_tries=config.shrink_tries)
        prog, verdict = shrunk.program, shrunk.verdict
        if shrunk.steps:
            say(f"fuzz: seed={prog.seed} shrunk in {shrunk.steps} steps "
                f"({shrunk.tried} oracle runs)")
        get_tracer().count(_ev.M_FUZZ_SHRINK_STEPS, shrunk.steps)

    finding = Finding(seed=prog.seed, cell=prog.cell, shape=prog.shape,
                      kinds=kinds, detail=first.detail,
                      shrink_steps=shrunk.steps if shrunk else 0)

    if config.corpus_dir or config.artifacts_dir:
        entry = entry_from_program(
            prog, f"fuzz-{prog.seed}-{first.kind}",
            backends=tuple(dict.fromkeys(d.backend
                                         for d in verdict.discrepancies)),
            workers=config.workers,
            fault_plan=fault_plan,
            resilience=True,
            strict_exceptions=config.strict_exceptions,
            note=f"auto-found: {first.kind} ({first.detail})",
            found_with={"kinds": list(kinds),
                        "resilience": config.resilience,
                        "faults": config.faults})
        if config.corpus_dir:
            path = save_entry(entry, config.corpus_dir)
            finding.corpus_path = str(path)
            get_tracer().count(_ev.M_FUZZ_CORPUS_ENTRIES)
        if config.artifacts_dir:
            adir = Path(config.artifacts_dir)
            adir.mkdir(parents=True, exist_ok=True)
            apath = adir / f"{entry.name}.py"
            apath.write_text(render_repro_script(entry_to_obj(entry)))
            finding.artifact_path = str(apath)
    return finding
