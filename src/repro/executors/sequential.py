"""Sequential executor: the baseline every speedup is measured against.

The paper's speedups (Section 9, Table 2) are all relative to a
sequential execution on one processor of the same machine; this module
is that denominator.  :func:`run_sequential` runs the loop through the
reference interpreter under the machine's cost model and reports it in
the same :class:`~repro.executors.base.ParallelResult` currency as the
parallel schemes (``scheme="sequential"``, ``t_par`` = ``T_seq``), so
planners and reports can treat "leave it sequential" as just another
plan.  :func:`ensure_info` is the shared coercion helper that lets
every executor accept either a raw loop or a prebuilt analysis.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.loopinfo import LoopInfo, analyze_loop
from repro.ir.functions import FunctionTable
from repro.ir.interp import SequentialInterp
from repro.ir.nodes import Loop
from repro.ir.store import Store
from repro.runtime.machine import Machine

from repro.executors.base import ParallelResult

__all__ = ["run_sequential", "ensure_info"]


def ensure_info(loop_or_info, funcs: Optional[FunctionTable] = None) -> LoopInfo:
    """Accept either a raw :class:`Loop` or a prebuilt :class:`LoopInfo`."""
    if isinstance(loop_or_info, LoopInfo):
        return loop_or_info
    if isinstance(loop_or_info, Loop):
        return analyze_loop(loop_or_info, funcs)
    raise TypeError(f"expected Loop or LoopInfo, got "
                    f"{type(loop_or_info).__name__}")


def run_sequential(
    loop_or_info,
    store: Store,
    machine: Machine,
    funcs: FunctionTable,
    *,
    max_iters: int = 10_000_000,
) -> ParallelResult:
    """Run the loop with the reference interpreter, on one processor.

    Returned as a :class:`ParallelResult` so harnesses can treat the
    baseline uniformly (``t_par`` is simply ``T_seq``).
    """
    info = ensure_info(loop_or_info, funcs)
    interp = SequentialInterp(info.loop, funcs, machine.cost)
    res = interp.run(store, max_iters=max_iters)
    return ParallelResult(
        scheme="sequential",
        n_iters=res.n_iters,
        exited_in_body=res.exited_in_body,
        t_par=res.cycles,
        makespan=res.cycles,
        executed=res.n_iters,
        stats={"cond_cycles": res.cond_cycles},
    )
