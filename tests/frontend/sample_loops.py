"""Sample Python loops used by the frontend tests (inspect-readable)."""


def double_all(A, n):
    i = 1
    while i <= n:
        A[i] = A[i] * 2
        i = i + 1


def device_walk(lst, out):
    tmp = lst.head
    while tmp != -1:
        out[tmp] = work(tmp)   # noqa: F821  (intrinsic by convention)
        tmp = lst.successor(tmp)
