"""MA28 ``MA30AD`` Loops 270 & 320 analogs (paper Section 9, Figs 12-14).

MA28's analyse-factorize routine searches for a Markowitz pivot.
Loop 270 scans candidate *rows*, Loop 320 candidate *columns*; both
terminate early once a candidate's cost proves no better one can
exist (the Markowitz bound for the current sweep) — an RV terminator,
because the bound tightens with values the loop itself computes.

"Since MA28 is a sequential program, any parallelization must
guarantee sequential consistency.  In order to accomplish this we
time-stamped the pivots found during the parallel execution.  Then,
after loop termination, we found the pivot with minimum cost by
performing a time-stamp ordered reduction operation (minimum) on the
(privatized) pivots selected by each processor."

That is exactly the structure here: each iteration writes its
candidate's cost into a private slot (``costs[k]``), exits when the
cost reaches the sweep's lower bound, and the workload's
:func:`select_pivot` performs the time-stamp-ordered min-reduction
over the valid iterations afterwards.  The paper notes the speedups
"are not as big as for the other programs ... largely due to the fact
that there was less available parallelism in these loops" — the scan
depths here are correspondingly shallow.

Paper speedups at 8 processors (Induction-1 + General-3, no locks):

=========  ========  ========
input      Loop 270  Loop 320
=========  ========  ========
gematt11   3.5       4.8
gematt12   3.4       4.5
orsreg1    5.3       2.8
=========  ========  ========
"""

from __future__ import annotations

from typing import Optional, Tuple

import zlib

import numpy as np

from repro.executors.induction import run_induction1
from repro.ir.functions import FunctionTable
from repro.ir.nodes import (
    ArrayAssign,
    ArrayRef,
    Assign,
    Call,
    Const,
    Exit,
    If,
    Var,
    WhileLoop,
    le_,
)
from repro.ir.store import Store
from repro.runtime.machine import Machine
from repro.runtime.reduction import parallel_argmin_stamped
from repro.structures.sparse import HB_PROFILES, generate_hb_like
from repro.workloads.base import Method, Workload

__all__ = ["make_ma28_loop", "select_pivot", "MA28_INPUTS"]

#: Input -> {loop number -> (scale, probe cost, scan depth)}.
#: Depths model each input's available parallelism: orsreg1's regular
#: structure makes the *row* scan long (5.3x) but the column scan very
#: short (2.8x); the gematt matrices are the other way around.
MA28_INPUTS = {
    "gematt11": {270: (0.10, 55, 36), 320: (0.10, 60, 128)},
    "gematt12": {270: (0.10, 55, 30), 320: (0.10, 60, 104)},
    "orsreg1": {270: (0.13, 55, 230), 320: (0.09, 60, 16)},
}

PAPER_SPEEDUPS = {
    270: {"gematt11": 3.5, "gematt12": 3.4, "orsreg1": 5.3},
    320: {"gematt11": 4.8, "gematt12": 4.5, "orsreg1": 2.8},
}


def _eval_candidate(ctx, cand: int):
    """Markowitz cost of one candidate row/column.

    Touches the count arrays (the real scan's reads) and returns the
    candidate's cost from the precomputed cost table.
    """
    ctx.read("rownnz", cand)
    ctx.read("colnnz", cand)
    return ctx.read("mkcost", cand)


def make_ma28_loop(input_name: str, loop_no: int = 270, *,
                   seed: int = 28) -> Workload:
    """Build the Loop 270 (rows) or Loop 320 (columns) analog."""
    if loop_no not in (270, 320):
        raise ValueError("loop_no must be 270 or 320")
    try:
        scale, probe_cost, depth = MA28_INPUTS[input_name][loop_no]
    except KeyError:
        raise KeyError(f"unknown MA28 input {input_name!r}; choose from "
                       f"{sorted(MA28_INPUTS)}") from None
    profile = HB_PROFILES[input_name]
    rng = np.random.default_rng(
        seed + loop_no + zlib.crc32(input_name.encode()) % 1000)
    matrix = generate_hb_like(profile, scale=scale, rng=rng)
    n = matrix.n
    order = rng.permutation(n).astype(np.int64)

    rownnz = matrix.row_nnz.copy().astype(np.int64)
    colnnz = matrix.col_nnz.copy().astype(np.int64)
    if loop_no == 320:
        rownnz, colnnz = colnnz, rownnz  # scanning columns instead

    # The sweep's optimality bound: once a candidate's cost hits it,
    # the scan may stop (no better pivot can exist this sweep).
    # Precompute every candidate's Markowitz cost and calibrate the
    # bound so the sequential scan exits at `depth` candidates.
    mkcost = ((rownnz - 1) * (np.maximum(colnnz, 1) - 1)).clip(min=0) \
        .astype(np.int64)
    target = min(depth, n)
    bound = max(1, int(mkcost[order[target - 1]]))
    mkcost[order[target - 1]] = bound
    early = mkcost[order[:target - 1]] <= bound
    mkcost[order[:target - 1][early]] = bound + 1 \
        + mkcost[order[:target - 1][early]]

    # MA30 searches a bounded number of candidates per sweep (MA28's
    # ``nsrch`` control): the DOALL's upper bound is the scan window,
    # not the whole matrix.
    ncand = int(min(n, target + max(8, target // 6)))

    funcs = FunctionTable()
    funcs.register("eval_candidate", _eval_candidate, cost=probe_cost,
                   reads=("rownnz", "colnnz", "mkcost"))
    funcs.register("cand_at", lambda ctx, k: ctx.read("cand_order", k - 1),
                   cost=2, reads=("cand_order",))

    loop = WhileLoop(
        init=[Assign("k", Const(1))],
        cond=le_(Var("k"), Var("ncand")),
        body=[
            Assign("cand", Call("cand_at", [Var("k")])),
            Assign("mc", Call("eval_candidate", [Var("cand")])),
            ArrayAssign("costs", Var("k"), Var("mc")),
            # RV early exit: the sweep bound is met — and the
            # terminator reads `costs`, a value computed in the loop.
            If(le_(ArrayRef("costs", Var("k")), Var("bound")), [Exit()]),
            Assign("k", Var("k") + 1),
        ],
        name=f"ma28-ma30ad-loop{loop_no}[{input_name}]",
    )

    def make_store() -> Store:
        return Store({
            "cand_order": order.copy(),
            "rownnz": rownnz.copy(),
            "colnnz": colnnz.copy(),
            "mkcost": mkcost.copy(),
            "costs": np.full(n + 2, -1, dtype=np.int64),
            "bound": bound,
            "ncand": ncand,
            "k": 0, "cand": 0, "mc": 0,
        })

    return Workload(
        name=f"ma28-loop{loop_no}[{input_name}]",
        description=(f"MA28 MA30AD loop {loop_no}: cooperative "
                     f"Markowitz pivot scan over "
                     f"{'rows' if loop_no == 270 else 'columns'}; RV "
                     f"terminator; backups and time-stamps; sequential "
                     f"consistency via time-stamp-ordered min-reduction"),
        loop=loop,
        funcs=funcs,
        make_store=make_store,
        methods=(
            Method("Induction-1 + General-3 (no locks)", run_induction1),
        ),
        paper_speedups={
            "Induction-1 + General-3 (no locks)":
                PAPER_SPEEDUPS[loop_no][input_name],
        },
    )


def select_pivot(store: Store, n_valid: int,
                 machine: Machine) -> Tuple[Optional[int], int]:
    """The paper's time-stamp-ordered minimum-cost pivot reduction.

    Runs after the scan loop: among the candidates evaluated by valid
    iterations (``costs[1..n_valid]``), pick the minimum cost with the
    earliest iteration breaking ties — exactly what sequential MA28
    would have selected.  Returns ``(candidate_row, virtual_time)``.
    """
    costs = store["costs"]
    stamped = [(k, float(costs[k])) for k in range(1, n_valid + 1)
               if costs[k] >= 0]
    idx, t = parallel_argmin_stamped(stamped, machine, last_valid=n_valid)
    if idx is None:
        return None, t
    k = stamped[idx][0]
    return int(store["cand_order"][k - 1]), t
